//! Offline shim for the `rand` 0.8 API subset used by this workspace.
//!
//! Provides [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), the
//! [`SeedableRng::seed_from_u64`] constructor, and the [`Rng`] extension
//! methods `gen`, `gen_range` and `gen_bool`. Deterministic per seed, which
//! is all the workload generators and tests in this repository rely on.

#![warn(missing_docs)]

pub mod rngs;

pub use rngs::StdRng;

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of reproducible generators from integer seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling of a value of `Self` from the full "standard" distribution.
///
/// Stands in for rand's `Standard: Distribution<T>` bound on `Rng::gen`.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Uniform sampling of a value out of a range expression.
///
/// Stands in for rand's `SampleRange<T>`; implemented for `Range` and
/// `RangeInclusive` over the primitive integer types.
pub trait SampleRange<T> {
    /// Draws one value of `T` uniformly from `self`.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns a value sampled uniformly over the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns a value sampled uniformly from `range` (which must be
    /// non-empty).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_range(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Maps a uniform `u64` onto `0..span` without modulo bias (Lemire's
/// multiply-shift; the bias of the plain variant is negligible for the
/// test-sized spans used here and vanishes for power-of-two spans).
fn widening_mod(word: u64, span: u64) -> u64 {
    ((word as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                let off = widening_mod(rng.next_u64(), span);
                (self.start as $u).wrapping_add(off as $u) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $u).wrapping_sub(start as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = widening_mod(rng.next_u64(), span + 1);
                (start as $u).wrapping_add(off as $u) as $t
            }
        }
    )*};
}

impl_sample_range!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(0..17);
            assert!(v < 17);
            let w: i64 = rng.gen_range(-100..100);
            assert!((-100..100).contains(&w));
            let x: u32 = rng.gen_range(3..=3);
            assert_eq!(x, 3);
        }
    }

    #[test]
    fn range_sampling_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 16];
        for _ in 0..2_000 {
            seen[rng.gen_range(0usize..16)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits: {hits}");
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
