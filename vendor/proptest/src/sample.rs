//! Sampling helpers: the [`Index`] type.

use crate::arbitrary::Arbitrary;
use crate::TestRng;

/// A position into a collection whose length is only known at use time.
///
/// Generated via `any::<Index>()`; resolve with [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Maps this sample onto `0..len`. Panics if `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        (self.0 % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index(rng.next_u64())
    }
}
