//! Collection strategies: `vec`, `btree_set`, `btree_map`.

use crate::strategy::Strategy;
use crate::TestRng;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::{Range, RangeInclusive};

/// Inclusive bounds on the size of a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + (rng.next_u64() % (self.max - self.min + 1) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `Vec`s whose length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy producing `BTreeSet`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        // Duplicates don't grow the set; cap the attempts so narrow element
        // domains terminate (possibly under target, as in real proptest).
        let mut attempts = 0usize;
        let max_attempts = target * 10 + 100;
        while out.len() < target && attempts < max_attempts {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

/// Generates `BTreeSet`s whose size falls in `size` (best-effort for narrow
/// element domains).
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy producing `BTreeMap`s from key and value strategies.
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut out = BTreeMap::new();
        let mut attempts = 0usize;
        let max_attempts = target * 10 + 100;
        while out.len() < target && attempts < max_attempts {
            out.insert(self.key.generate(rng), self.value.generate(rng));
            attempts += 1;
        }
        out
    }
}

/// Generates `BTreeMap`s whose size falls in `size` (best-effort for narrow
/// key domains).
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}
