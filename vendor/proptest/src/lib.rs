//! Offline shim for the `proptest` 1.x API subset used by this workspace.
//!
//! Implements randomized property testing without shrinking: the
//! [`proptest!`] macro runs each property over `ProptestConfig::cases`
//! deterministic random cases (seeded per test name), and failures panic
//! with the standard assertion message. The strategy combinators cover what
//! this repository's tests use: [`arbitrary::any`], integer ranges, tuples,
//! [`collection`] strategies, weighted [`prop_oneof!`](crate::prop_oneof) unions, `prop_map`,
//! and [`sample::Index`].

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;

pub use arbitrary::{any, Arbitrary};
pub use strategy::{BoxedStrategy, Just, Strategy, Union};

use rand::{RngCore, SeedableRng};

/// Runtime configuration of a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is executed for.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic generator driving test-case generation.
///
/// Seeded from the property's name so every test function owns an
/// independent, reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng(rand::StdRng);

impl TestRng {
    /// Creates the generator for the named property.
    pub fn for_test(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(rand::StdRng::seed_from_u64(seed))
    }

    /// Returns the next random 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Everything a test module conventionally imports.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{ProptestConfig, TestRng};

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// item expands to a `#[test]` running the body over randomly generated
/// inputs. An optional leading `#![proptest_config(expr)]` sets the case
/// count for the whole block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block)*
    ) => {
        $($crate::proptest!(@one ($config); $(#[$meta])*; $name; ($($args)*); $body);)*
    };

    ($($(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block)*) => {
        $($crate::proptest!(
            @one (<$crate::ProptestConfig as ::core::default::Default>::default());
            $(#[$meta])*; $name; ($($args)*); $body);)*
    };

    (@one ($config:expr); $(#[$meta:meta])*; $name:ident;
     ($($pat:pat in $strategy:expr),+ $(,)?); $body:block) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                $body
            }
        }
    };
}

/// `assert!` under the name property tests conventionally use.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// `assert_eq!` under the name property tests conventionally use.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// `assert_ne!` under the name property tests conventionally use.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Builds a strategy choosing between alternatives, optionally weighted
/// (`weight => strategy`). All alternatives must produce the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}
