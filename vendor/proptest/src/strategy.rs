//! The [`Strategy`] trait and its combinators.

use crate::TestRng;

/// A recipe for generating random values of an output type.
///
/// Unlike real proptest there is no shrinking: a strategy is simply a
/// deterministic function of the test RNG stream.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice between boxed alternatives (the [`prop_oneof!`](crate::prop_oneof) macro).
#[derive(Debug)]
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! needs positive total weight");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut roll = rng.next_u64() % self.total_weight;
        for (weight, strategy) in &self.arms {
            if roll < *weight as u64 {
                return strategy.generate(rng);
            }
            roll -= *weight as u64;
        }
        unreachable!("roll exceeded total weight")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty : $u:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                let off = rng.next_u64() % span;
                (self.start as $u).wrapping_add(off as $u) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
