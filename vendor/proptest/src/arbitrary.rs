//! The [`Arbitrary`] trait and the [`any`] entry point.

use crate::strategy::Strategy;
use crate::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated text debuggable.
        (0x20u8 + (rng.next_u64() % 95) as u8) as char
    }
}
