//! Offline shim for the `criterion` 0.5 API subset used by this workspace.
//!
//! Benchmarks register through [`criterion_group!`]/[`criterion_main!`] and
//! run as plain wall-clock measurements: a warm-up phase followed by
//! `sample_size` timed samples, reporting the median time per iteration to
//! stdout. No statistical analysis, plotting or baseline storage — just
//! enough to keep `cargo bench` targets building and producing numbers.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point configuring and running benchmark groups.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(500),
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Reads a benchmark-name substring filter from the command line
    /// (`cargo bench -- <filter>`), ignoring criterion flags.
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a displayed parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            warm_up_time: self.criterion.warm_up_time,
            measurement_time: self.criterion.measurement_time,
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
            median_ns: 0.0,
        };
        f(&mut bencher);
        println!("{full:<60} time: [{}]", format_ns(bencher.median_ns));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (reporting is per-benchmark, so this is cosmetic).
    pub fn finish(self) {}
}

/// Conversion of the types accepted as benchmark identifiers.
pub trait IntoBenchmarkId {
    /// Converts into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.into() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    median_ns: f64,
}

impl Bencher {
    /// Measures `routine`, recording the median wall-clock time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, and calibration of iterations-per-sample.
        let warm_up_start = Instant::now();
        let mut warm_up_iters = 0u64;
        while warm_up_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_up_iters += 1;
        }
        let per_iter = warm_up_start.elapsed().as_secs_f64() / warm_up_iters as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut samples: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters_per_sample {
                    black_box(routine());
                }
                start.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        self.median_ns = samples[samples.len() / 2];
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.4} ns")
    }
}

/// Declares a benchmark group: either `criterion_group!(name, target, ...)`
/// or the long form with `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+);
    };
}

/// Declares the benchmark binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
