//! Deserialization half of the data model.

use std::marker::PhantomData;

/// Errors produced by deserializers.
pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
    /// Builds an error carrying a custom message.
    fn custom<T: std::fmt::Display>(msg: T) -> Self;
}

/// A type constructible from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` out of `deserializer`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A format driver feeding values into [`Visitor`]s.
pub trait Deserializer<'de>: Sized {
    /// Error type of this format.
    type Error: Error;

    /// Drives `visitor` with whatever value comes next in the input.
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    /// Drives `visitor` with the sequence that comes next in the input.
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    /// Drives `visitor` with the map that comes next in the input.
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
}

/// Receiver of values produced by a [`Deserializer`].
pub trait Visitor<'de>: Sized {
    /// The value built by this visitor.
    type Value;

    /// Writes a description of what the visitor expects, for errors.
    fn expecting(&self, formatter: &mut std::fmt::Formatter<'_>) -> std::fmt::Result;

    /// Visits a `bool`.
    fn visit_bool<E: Error>(self, _v: bool) -> Result<Self::Value, E> {
        Err(E::custom(ExpectedBy(self)))
    }

    /// Visits an unsigned integer.
    fn visit_u64<E: Error>(self, _v: u64) -> Result<Self::Value, E> {
        Err(E::custom(ExpectedBy(self)))
    }

    /// Visits a signed integer.
    fn visit_i64<E: Error>(self, _v: i64) -> Result<Self::Value, E> {
        Err(E::custom(ExpectedBy(self)))
    }

    /// Visits a floating-point number.
    fn visit_f64<E: Error>(self, _v: f64) -> Result<Self::Value, E> {
        Err(E::custom(ExpectedBy(self)))
    }

    /// Visits a string.
    fn visit_str<E: Error>(self, _v: &str) -> Result<Self::Value, E> {
        Err(E::custom(ExpectedBy(self)))
    }

    /// Visits the unit value.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom(ExpectedBy(self)))
    }

    /// Visits a sequence.
    fn visit_seq<A: SeqAccess<'de>>(self, _seq: A) -> Result<Self::Value, A::Error> {
        Err(A::Error::custom(ExpectedBy(self)))
    }

    /// Visits a map.
    fn visit_map<A: MapAccess<'de>>(self, _map: A) -> Result<Self::Value, A::Error> {
        Err(A::Error::custom(ExpectedBy(self)))
    }
}

/// Renders a visitor's `expecting` message ("invalid type: expected ...").
struct ExpectedBy<V>(V);

impl<'de, V: Visitor<'de>> std::fmt::Display for ExpectedBy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("invalid type: expected ")?;
        self.0.expecting(f)
    }
}

/// Streaming access to the elements of a sequence being deserialized.
pub trait SeqAccess<'de> {
    /// Error type of this format.
    type Error: Error;

    /// Deserializes the next element, or `None` at the end of the sequence.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error>;
}

/// Streaming access to the entries of a map being deserialized.
pub trait MapAccess<'de> {
    /// Error type of this format.
    type Error: Error;

    /// Deserializes the next `(key, value)` entry, or `None` at the end of
    /// the map.
    fn next_entry<K, V>(&mut self) -> Result<Option<(K, V)>, Self::Error>
    where
        K: Deserialize<'de>,
        V: Deserialize<'de>;
}

macro_rules! impl_deserialize_uint {
    ($($t:ty => $name:literal),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> Visitor<'de> for V {
                    type Value = $t;
                    fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                        f.write_str($name)
                    }
                    fn visit_u64<E: Error>(self, v: u64) -> Result<$t, E> {
                        <$t>::try_from(v).map_err(|_| E::custom("integer out of range"))
                    }
                    fn visit_i64<E: Error>(self, v: i64) -> Result<$t, E> {
                        <$t>::try_from(v).map_err(|_| E::custom("integer out of range"))
                    }
                    fn visit_f64<E: Error>(self, v: f64) -> Result<$t, E> {
                        let truncated = v as u64;
                        if truncated as f64 == v {
                            <$t>::try_from(truncated)
                                .map_err(|_| E::custom("integer out of range"))
                        } else {
                            Err(E::custom("expected an integer"))
                        }
                    }
                }
                deserializer.deserialize_any(V)
            }
        }
    )*};
}

impl_deserialize_uint!(u8 => "u8", u16 => "u16", u32 => "u32", u64 => "u64", usize => "usize");

macro_rules! impl_deserialize_int {
    ($($t:ty => $name:literal),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> Visitor<'de> for V {
                    type Value = $t;
                    fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                        f.write_str($name)
                    }
                    fn visit_i64<E: Error>(self, v: i64) -> Result<$t, E> {
                        <$t>::try_from(v).map_err(|_| E::custom("integer out of range"))
                    }
                    fn visit_u64<E: Error>(self, v: u64) -> Result<$t, E> {
                        i64::try_from(v)
                            .ok()
                            .and_then(|v| <$t>::try_from(v).ok())
                            .ok_or_else(|| E::custom("integer out of range"))
                    }
                    fn visit_f64<E: Error>(self, v: f64) -> Result<$t, E> {
                        let truncated = v as i64;
                        if truncated as f64 == v {
                            <$t>::try_from(truncated)
                                .map_err(|_| E::custom("integer out of range"))
                        } else {
                            Err(E::custom("expected an integer"))
                        }
                    }
                }
                deserializer.deserialize_any(V)
            }
        }
    )*};
}

impl_deserialize_int!(i8 => "i8", i16 => "i16", i32 => "i32", i64 => "i64", isize => "isize");

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = bool;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("bool")
            }
            fn visit_bool<E: Error>(self, v: bool) -> Result<bool, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_any(V)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = f64;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("f64")
            }
            fn visit_f64<E: Error>(self, v: f64) -> Result<f64, E> {
                Ok(v)
            }
            fn visit_u64<E: Error>(self, v: u64) -> Result<f64, E> {
                Ok(v as f64)
            }
            fn visit_i64<E: Error>(self, v: i64) -> Result<f64, E> {
                Ok(v as f64)
            }
        }
        deserializer.deserialize_any(V)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = String;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
        }
        deserializer.deserialize_any(V)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut out = Vec::new();
                while let Some(v) = seq.next_element()? {
                    out.push(v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(V(PhantomData))
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<K, V>(PhantomData<(K, V)>);
        impl<'de, K, V> Visitor<'de> for Vis<K, V>
        where
            K: Deserialize<'de> + Ord,
            V: Deserialize<'de>,
        {
            type Value = std::collections::BTreeMap<K, V>;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::BTreeMap::new();
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(PhantomData))
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::HashMap<K, V>
where
    K: Deserialize<'de> + Eq + std::hash::Hash,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<K, V>(PhantomData<(K, V)>);
        impl<'de, K, V> Visitor<'de> for Vis<K, V>
        where
            K: Deserialize<'de> + Eq + std::hash::Hash,
            V: Deserialize<'de>,
        {
            type Value = std::collections::HashMap<K, V>;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::HashMap::new();
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(PhantomData))
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($len:literal; $($name:ident),+))*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V<$($name),+>(PhantomData<($($name,)+)>);
                impl<'de, $($name: Deserialize<'de>),+> Visitor<'de> for V<$($name),+> {
                    type Value = ($($name,)+);
                    fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                        write!(f, "a tuple of length {}", $len)
                    }
                    #[allow(non_snake_case)]
                    fn visit_seq<Acc: SeqAccess<'de>>(
                        self,
                        mut seq: Acc,
                    ) -> Result<Self::Value, Acc::Error> {
                        $(let $name = seq
                            .next_element()?
                            .ok_or_else(|| Acc::Error::custom("tuple too short"))?;)+
                        Ok(($($name,)+))
                    }
                }
                deserializer.deserialize_seq(V(PhantomData))
            }
        }
    )*};
}

impl_deserialize_tuple! {
    (1; T0)
    (2; T0, T1)
    (3; T0, T1, T2)
    (4; T0, T1, T2, T3)
}
