//! Offline shim for the `serde` 1.x data-model subset used by this
//! workspace.
//!
//! The collections in this workspace serialize as flat sequences (and the
//! report tooling as maps), so this shim models just that slice of serde:
//! primitives, strings, tuples, sequences and maps, with the familiar trait
//! split ([`Serialize`] / [`Serializer`] / [`ser::SerializeSeq`] /
//! [`ser::SerializeMap`] on one side, [`Deserialize`] / [`Deserializer`] /
//! [`de::Visitor`] / [`de::SeqAccess`] / [`de::MapAccess`] on the other).
//! Formats (the in-tree `serde_json` shim, the `trie_common::snapshot`
//! binary codec) implement the same traits, so the collection impls are
//! source-compatible with real serde.

#![warn(missing_docs)]

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
