//! Offline shim for the `serde` 1.x data-model subset used by this
//! workspace.
//!
//! The collections in `axiom` serialize exclusively as flat sequences, so
//! this shim models just that slice of serde: primitives, strings, tuples
//! and sequences, with the familiar trait split ([`Serialize`] /
//! [`Serializer`] / [`ser::SerializeSeq`] on one side, [`Deserialize`] /
//! [`Deserializer`] / [`de::Visitor`] / [`de::SeqAccess`] on the other).
//! Formats (such as the in-tree `serde_json` shim) implement the same
//! traits, so the `axiom` impls are source-compatible with real serde.

#![warn(missing_docs)]

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
