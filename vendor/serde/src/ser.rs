//! Serialization half of the data model.

/// Errors produced by serializers.
pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
    /// Builds an error carrying a custom message.
    fn custom<T: std::fmt::Display>(msg: T) -> Self;
}

/// A data structure that can hand itself to any [`Serializer`].
pub trait Serialize {
    /// Serializes `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A format driver receiving values from [`Serialize`] impls.
pub trait Serializer: Sized {
    /// Value returned on success.
    type Ok;
    /// Error type of this format.
    type Error: Error;
    /// Sub-serializer for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a floating-point number.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes the unit value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Begins a (possibly length-hinted) sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins a (possibly length-hinted) map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
}

/// Incremental serialization of a sequence's elements.
pub trait SerializeSeq {
    /// Value returned on success.
    type Ok;
    /// Error type of this format.
    type Error: Error;

    /// Serializes one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Incremental serialization of a map's entries.
pub trait SerializeMap {
    /// Value returned on success.
    type Ok;
    /// Error type of this format.
    type Error: Error;

    /// Serializes one `(key, value)` entry.
    fn serialize_entry<K, V>(&mut self, key: &K, value: &V) -> Result<(), Self::Error>
    where
        K: Serialize + ?Sized,
        V: Serialize + ?Sized;
    /// Finishes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(*self as i64)
            }
        }
    )*};
}

impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self as f64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => v.serialize(serializer),
            None => serializer.serialize_unit(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize, S2> Serialize for std::collections::HashMap<K, V, S2> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                // Tuples render as fixed-length sequences (JSON arrays).
                let mut seq = serializer.serialize_seq(Some(count!($($name)+)))?;
                $(seq.serialize_element(&self.$idx)?;)+
                seq.end()
            }
        }
    )*};
}

macro_rules! count {
    () => { 0usize };
    ($head:ident $($tail:ident)*) => { 1usize + count!($($tail)*) };
}

impl_serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}
