//! A small recursive-descent JSON parser producing [`Value`] trees.

use crate::{Error, Value};

pub fn parse(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, msg: &str) -> Error {
        use serde::de::Error as _;
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", expected as char)))
        }
    }

    fn eat_keyword(&mut self, keyword: &str) -> bool {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by the writer
                            // half of this shim; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.error("invalid number"))
    }
}
