//! The in-memory JSON tree and its deserializer impl.

use crate::Error;
use serde::de::{self, Deserializer, SeqAccess, Visitor};

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`, exact for |n| ≤ 2⁵³).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Returns the elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the boolean if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the number as `f64` if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the number as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Returns the string if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

struct ValueSeqAccess {
    iter: std::vec::IntoIter<Value>,
}

impl<'de> SeqAccess<'de> for ValueSeqAccess {
    type Error = Error;

    fn next_element<T: de::Deserialize<'de>>(&mut self) -> Result<Option<T>, Error> {
        match self.iter.next() {
            Some(value) => T::deserialize(value).map(Some),
            None => Ok(None),
        }
    }
}

impl<'de> Deserializer<'de> for Value {
    type Error = Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self {
            Value::Null => visitor.visit_unit(),
            Value::Bool(b) => visitor.visit_bool(b),
            Value::Number(n) => visitor.visit_f64(n),
            Value::String(s) => visitor.visit_str(&s),
            Value::Array(items) => visitor.visit_seq(ValueSeqAccess {
                iter: items.into_iter(),
            }),
            Value::Object(_) => Err(de::Error::custom(
                "objects are not supported by this serde_json shim",
            )),
        }
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self {
            Value::Array(items) => visitor.visit_seq(ValueSeqAccess {
                iter: items.into_iter(),
            }),
            other => Err(de::Error::custom(format!(
                "expected an array, found {other:?}"
            ))),
        }
    }
}
