//! The in-memory JSON tree and its deserializer impl.

use crate::Error;
use serde::de::{self, Deserializer, MapAccess, SeqAccess, Visitor};

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`, exact for |n| ≤ 2⁵³).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Returns the elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the boolean if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the number as `f64` if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the number as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Returns the string if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the entries if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Renders this value as compact JSON text (the writer half of the
    /// shim produces identical text for the same data).
    pub(crate) fn to_json_text(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => crate::write_escaped(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    crate::write_escaped(out, k);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

struct ValueSeqAccess {
    iter: std::vec::IntoIter<Value>,
}

impl<'de> SeqAccess<'de> for ValueSeqAccess {
    type Error = Error;

    fn next_element<T: de::Deserialize<'de>>(&mut self) -> Result<Option<T>, Error> {
        match self.iter.next() {
            Some(value) => T::deserialize(value).map(Some),
            None => Ok(None),
        }
    }
}

struct ValueMapAccess {
    iter: std::vec::IntoIter<(String, Value)>,
}

impl<'de> MapAccess<'de> for ValueMapAccess {
    type Error = Error;

    fn next_entry<K, V>(&mut self) -> Result<Option<(K, V)>, Error>
    where
        K: de::Deserialize<'de>,
        V: de::Deserialize<'de>,
    {
        match self.iter.next() {
            Some((key, value)) => {
                let key = K::deserialize(KeyDeserializer(key))?;
                let value = V::deserialize(value)?;
                Ok(Some((key, value)))
            }
            None => Ok(None),
        }
    }
}

/// Deserializer for one object key: the writer embeds non-string keys as
/// their compact JSON text, so key text that parses as a non-string JSON
/// value is replayed as that value, anything else as a plain string (see
/// the crate docs on map keys).
struct KeyDeserializer(String);

impl KeyDeserializer {
    fn reparse(&self) -> Option<Value> {
        match crate::parse::parse(&self.0) {
            Ok(Value::String(_)) | Err(_) => None,
            Ok(other) => Some(other),
        }
    }
}

impl<'de> Deserializer<'de> for KeyDeserializer {
    type Error = Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self.reparse() {
            Some(value) => value.deserialize_any(visitor),
            None => visitor.visit_str(&self.0),
        }
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self.reparse() {
            Some(value) => value.deserialize_seq(visitor),
            None => Err(de::Error::custom("map key is not a JSON array")),
        }
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self.reparse() {
            Some(value) => value.deserialize_map(visitor),
            None => Err(de::Error::custom("map key is not a JSON object")),
        }
    }
}

impl<'de> Deserializer<'de> for Value {
    type Error = Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self {
            Value::Null => visitor.visit_unit(),
            Value::Bool(b) => visitor.visit_bool(b),
            Value::Number(n) => visitor.visit_f64(n),
            Value::String(s) => visitor.visit_str(&s),
            Value::Array(items) => visitor.visit_seq(ValueSeqAccess {
                iter: items.into_iter(),
            }),
            Value::Object(entries) => visitor.visit_map(ValueMapAccess {
                iter: entries.into_iter(),
            }),
        }
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self {
            Value::Array(items) => visitor.visit_seq(ValueSeqAccess {
                iter: items.into_iter(),
            }),
            other => Err(de::Error::custom(format!(
                "expected an array, found {other:?}"
            ))),
        }
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self {
            Value::Object(entries) => visitor.visit_map(ValueMapAccess {
                iter: entries.into_iter(),
            }),
            other => Err(de::Error::custom(format!(
                "expected an object, found {other:?}"
            ))),
        }
    }
}
