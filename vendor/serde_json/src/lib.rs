//! Offline shim for the `serde_json` 1.x API subset used by this workspace:
//! [`to_string`], [`from_str`], [`to_value`] and an array/number/string
//! [`Value`]. Objects are parsed but (like the rest of the tree) never
//! produced by the collections under test, which serialize as flat
//! sequences.

#![warn(missing_docs)]

mod parse;
mod value;

pub use value::Value;

use serde::de::{self, Deserialize};
use serde::ser::{self, Serialize, SerializeSeq, Serializer};

/// Error type shared by serialization and deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl de::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize(JsonWriter { out: &mut out })?;
    Ok(out)
}

/// Serializes `value` into an in-memory [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    value.serialize(ValueBuilder)
}

/// Deserializes a `T` out of a JSON string.
pub fn from_str<T: for<'de> Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let value = parse::parse(s)?;
    T::deserialize(value)
}

// ---------------------------------------------------------------- writing

struct JsonWriter<'a> {
    out: &'a mut String,
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct JsonSeqWriter<'a> {
    out: &'a mut String,
    first: bool,
}

impl SerializeSeq for JsonSeqWriter<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        value.serialize(JsonWriter { out: self.out })
    }

    fn end(self) -> Result<(), Error> {
        self.out.push(']');
        Ok(())
    }
}

impl<'a> Serializer for JsonWriter<'a> {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = JsonSeqWriter<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), Error> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), Error> {
        if v.is_finite() {
            self.out.push_str(&v.to_string());
            Ok(())
        } else {
            Err(ser::Error::custom(
                "JSON cannot represent non-finite floats",
            ))
        }
    }

    fn serialize_str(self, v: &str) -> Result<(), Error> {
        write_escaped(self.out, v);
        Ok(())
    }

    fn serialize_unit(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<JsonSeqWriter<'a>, Error> {
        self.out.push('[');
        Ok(JsonSeqWriter {
            out: self.out,
            first: true,
        })
    }
}

// ----------------------------------------------------------- value building

struct ValueBuilder;

struct ValueSeqBuilder {
    items: Vec<Value>,
}

impl SerializeSeq for ValueSeqBuilder {
    type Ok = Value;
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.items.push(value.serialize(ValueBuilder)?);
        Ok(())
    }

    fn end(self) -> Result<Value, Error> {
        Ok(Value::Array(self.items))
    }
}

impl Serializer for ValueBuilder {
    type Ok = Value;
    type Error = Error;
    type SerializeSeq = ValueSeqBuilder;

    fn serialize_bool(self, v: bool) -> Result<Value, Error> {
        Ok(Value::Bool(v))
    }

    fn serialize_u64(self, v: u64) -> Result<Value, Error> {
        Ok(Value::Number(v as f64))
    }

    fn serialize_i64(self, v: i64) -> Result<Value, Error> {
        Ok(Value::Number(v as f64))
    }

    fn serialize_f64(self, v: f64) -> Result<Value, Error> {
        Ok(Value::Number(v))
    }

    fn serialize_str(self, v: &str) -> Result<Value, Error> {
        Ok(Value::String(v.to_owned()))
    }

    fn serialize_unit(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<ValueSeqBuilder, Error> {
        Ok(ValueSeqBuilder {
            items: Vec::with_capacity(len.unwrap_or(0)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_tuples() {
        let data: Vec<(String, u32)> = vec![("a\"b".into(), 1), ("c\\d".into(), 2)];
        let json = to_string(&data).unwrap();
        let back: Vec<(String, u32)> = from_str(&json).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn to_value_builds_arrays() {
        let v = to_value(&vec![(1u32, 2u32), (3, 4)]).unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert!(arr.iter().all(|t| t.as_array().is_some()));
    }

    #[test]
    fn parses_whitespace_and_negatives() {
        let back: Vec<i64> = from_str(" [ 1 , -2 ,\n 3 ] ").unwrap();
        assert_eq!(back, vec![1, -2, 3]);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<Vec<u32>>("nope").is_err());
        assert!(from_str::<u32>("[1]").is_err());
    }

    #[test]
    fn unicode_strings_roundtrip() {
        let data = vec!["héllo ☃".to_string(), "\tworld\n".to_string()];
        let back: Vec<String> = from_str(&to_string(&data).unwrap()).unwrap();
        assert_eq!(back, data);
    }
}
