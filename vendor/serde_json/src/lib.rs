//! Offline shim for the `serde_json` 1.x API subset used by this workspace:
//! [`to_string`], [`from_str`], [`to_value`] and a full JSON [`Value`]
//! (arrays, numbers, strings and objects).
//!
//! # Map keys
//!
//! JSON object keys are strings, so maps with non-string keys need a
//! convention. Real `serde_json` refuses them ("key must be a string");
//! this shim instead writes every non-string key as its **compact JSON
//! text** used verbatim as the object key (`{1: 2}` → `{"1":2}`), and on
//! deserialization re-parses each key string: key text that parses as a
//! non-string JSON value is fed to the visitor as that value, anything
//! else as a plain string. The residual ambiguity — a *string* key whose
//! text is itself valid JSON of another type (`"123"`, `"true"`) comes
//! back as that type, not as a string — is inherent to the JSON object
//! encoding and documented here; the binary snapshot codec in
//! `trie_common::snapshot` routes around it entirely by tagging key types
//! on the wire.

#![warn(missing_docs)]

pub(crate) mod parse;
mod value;

pub use value::Value;

use serde::de::{self, Deserialize};
use serde::ser::{self, Serialize, SerializeMap, SerializeSeq, Serializer};

/// Error type shared by serialization and deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl de::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize(JsonWriter { out: &mut out })?;
    Ok(out)
}

/// Serializes `value` into an in-memory [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    value.serialize(ValueBuilder)
}

/// Deserializes a `T` out of a JSON string.
pub fn from_str<T: for<'de> Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let value = parse::parse(s)?;
    T::deserialize(value)
}

// ---------------------------------------------------------------- writing

struct JsonWriter<'a> {
    out: &'a mut String,
}

pub(crate) fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct JsonSeqWriter<'a> {
    out: &'a mut String,
    first: bool,
}

impl SerializeSeq for JsonSeqWriter<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        value.serialize(JsonWriter { out: self.out })
    }

    fn end(self) -> Result<(), Error> {
        self.out.push(']');
        Ok(())
    }
}

struct JsonMapWriter<'a> {
    out: &'a mut String,
    first: bool,
}

impl SerializeMap for JsonMapWriter<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_entry<K, V>(&mut self, key: &K, value: &V) -> Result<(), Error>
    where
        K: Serialize + ?Sized,
        V: Serialize + ?Sized,
    {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        // Keys must land as JSON strings: a key that serializes to a JSON
        // string is used verbatim, anything else is embedded as its compact
        // JSON text (see the crate docs on map keys).
        let key_json = to_string(key)?;
        if key_json.starts_with('"') {
            self.out.push_str(&key_json);
        } else {
            write_escaped(self.out, &key_json);
        }
        self.out.push(':');
        value.serialize(JsonWriter { out: self.out })
    }

    fn end(self) -> Result<(), Error> {
        self.out.push('}');
        Ok(())
    }
}

impl<'a> Serializer for JsonWriter<'a> {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = JsonSeqWriter<'a>;
    type SerializeMap = JsonMapWriter<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), Error> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), Error> {
        if v.is_finite() {
            self.out.push_str(&v.to_string());
            Ok(())
        } else {
            Err(ser::Error::custom(
                "JSON cannot represent non-finite floats",
            ))
        }
    }

    fn serialize_str(self, v: &str) -> Result<(), Error> {
        write_escaped(self.out, v);
        Ok(())
    }

    fn serialize_unit(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<JsonSeqWriter<'a>, Error> {
        self.out.push('[');
        Ok(JsonSeqWriter {
            out: self.out,
            first: true,
        })
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<JsonMapWriter<'a>, Error> {
        self.out.push('{');
        Ok(JsonMapWriter {
            out: self.out,
            first: true,
        })
    }
}

// ----------------------------------------------------------- value building

struct ValueBuilder;

struct ValueSeqBuilder {
    items: Vec<Value>,
}

impl SerializeSeq for ValueSeqBuilder {
    type Ok = Value;
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.items.push(value.serialize(ValueBuilder)?);
        Ok(())
    }

    fn end(self) -> Result<Value, Error> {
        Ok(Value::Array(self.items))
    }
}

struct ValueMapBuilder {
    entries: Vec<(String, Value)>,
}

impl SerializeMap for ValueMapBuilder {
    type Ok = Value;
    type Error = Error;

    fn serialize_entry<K, V>(&mut self, key: &K, value: &V) -> Result<(), Error>
    where
        K: Serialize + ?Sized,
        V: Serialize + ?Sized,
    {
        // Same key convention as the JSON writer: string keys verbatim,
        // everything else as its compact JSON text.
        let key = match key.serialize(ValueBuilder)? {
            Value::String(s) => s,
            other => other.to_json_text(),
        };
        self.entries.push((key, value.serialize(ValueBuilder)?));
        Ok(())
    }

    fn end(self) -> Result<Value, Error> {
        Ok(Value::Object(self.entries))
    }
}

impl Serializer for ValueBuilder {
    type Ok = Value;
    type Error = Error;
    type SerializeSeq = ValueSeqBuilder;
    type SerializeMap = ValueMapBuilder;

    fn serialize_bool(self, v: bool) -> Result<Value, Error> {
        Ok(Value::Bool(v))
    }

    fn serialize_u64(self, v: u64) -> Result<Value, Error> {
        Ok(Value::Number(v as f64))
    }

    fn serialize_i64(self, v: i64) -> Result<Value, Error> {
        Ok(Value::Number(v as f64))
    }

    fn serialize_f64(self, v: f64) -> Result<Value, Error> {
        Ok(Value::Number(v))
    }

    fn serialize_str(self, v: &str) -> Result<Value, Error> {
        Ok(Value::String(v.to_owned()))
    }

    fn serialize_unit(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<ValueSeqBuilder, Error> {
        Ok(ValueSeqBuilder {
            items: Vec::with_capacity(len.unwrap_or(0)),
        })
    }

    fn serialize_map(self, len: Option<usize>) -> Result<ValueMapBuilder, Error> {
        Ok(ValueMapBuilder {
            entries: Vec::with_capacity(len.unwrap_or(0)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_tuples() {
        let data: Vec<(String, u32)> = vec![("a\"b".into(), 1), ("c\\d".into(), 2)];
        let json = to_string(&data).unwrap();
        let back: Vec<(String, u32)> = from_str(&json).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn to_value_builds_arrays() {
        let v = to_value(&vec![(1u32, 2u32), (3, 4)]).unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert!(arr.iter().all(|t| t.as_array().is_some()));
    }

    #[test]
    fn parses_whitespace_and_negatives() {
        let back: Vec<i64> = from_str(" [ 1 , -2 ,\n 3 ] ").unwrap();
        assert_eq!(back, vec![1, -2, 3]);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<Vec<u32>>("nope").is_err());
        assert!(from_str::<u32>("[1]").is_err());
    }

    #[test]
    fn unicode_strings_roundtrip() {
        let data = vec!["héllo ☃".to_string(), "\tworld\n".to_string()];
        let back: Vec<String> = from_str(&to_string(&data).unwrap()).unwrap();
        assert_eq!(back, data);
    }

    // --- regression tests: map (object) support, incl. non-string keys ---

    #[test]
    fn non_string_map_keys_roundtrip() {
        // Real serde_json refuses non-string keys; the shim embeds them as
        // their JSON text and re-parses on the way back.
        let mut data = std::collections::BTreeMap::new();
        data.insert(1u32, vec![10u32, 11]);
        data.insert(2, vec![20]);
        let json = to_string(&data).unwrap();
        assert_eq!(json, "{\"1\":[10,11],\"2\":[20]}");
        let back: std::collections::BTreeMap<u32, Vec<u32>> = from_str(&json).unwrap();
        assert_eq!(back, data);

        let mut signed = std::collections::BTreeMap::new();
        signed.insert(-3i64, true);
        signed.insert(7, false);
        let back: std::collections::BTreeMap<i64, bool> =
            from_str(&to_string(&signed).unwrap()).unwrap();
        assert_eq!(back, signed);
    }

    #[test]
    fn string_map_keys_roundtrip() {
        let mut data = std::collections::BTreeMap::new();
        data.insert("a\"b".to_string(), 1u32);
        data.insert("plain".to_string(), 2);
        let back: std::collections::BTreeMap<String, u32> =
            from_str(&to_string(&data).unwrap()).unwrap();
        assert_eq!(back, data);

        let mut hashed = std::collections::HashMap::new();
        hashed.insert("x".to_string(), 9u64);
        let back: std::collections::HashMap<String, u64> =
            from_str(&to_string(&hashed).unwrap()).unwrap();
        assert_eq!(back, hashed);
    }

    #[test]
    fn to_value_builds_objects_with_text_keys() {
        let mut data = std::collections::BTreeMap::new();
        data.insert(5u32, "five".to_string());
        let v = to_value(&data).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj.len(), 1);
        assert_eq!(obj[0].0, "5");
        assert_eq!(obj[0].1.as_str(), Some("five"));
    }

    #[test]
    fn ambiguous_string_keys_are_documented_not_silent() {
        // The documented limitation: a *string* key whose text is valid JSON
        // of another type comes back as that type, so deserializing it as a
        // string map errors instead of silently corrupting.
        let mut data = std::collections::BTreeMap::new();
        data.insert("123".to_string(), 1u32);
        let json = to_string(&data).unwrap();
        assert_eq!(json, "{\"123\":1}");
        assert!(from_str::<std::collections::BTreeMap<String, u32>>(&json).is_err());
        // The same wire text is fine under the numeric-key reading.
        let as_numeric: std::collections::BTreeMap<u32, u32> = from_str(&json).unwrap();
        assert_eq!(as_numeric.get(&123), Some(&1));
    }

    #[test]
    fn parsed_objects_deserialize() {
        let back: std::collections::BTreeMap<String, Vec<i64>> =
            from_str(" { \"a\" : [1, 2] , \"b\" : [] } ").unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back["a"], vec![1, 2]);
        assert!(back["b"].is_empty());
        // Mismatched shapes error rather than panic.
        assert!(from_str::<std::collections::BTreeMap<String, u32>>("[1]").is_err());
        assert!(from_str::<Vec<u32>>("{\"a\":1}").is_err());
    }
}
