//! **axiom-repro** — umbrella crate of the AXIOM (PLDI 2018) reproduction.
//!
//! Re-exports the workspace's public surface so examples and integration
//! tests read like downstream user code. See `README.md` for the tour and
//! `DESIGN.md` for the system inventory.
//!
//! # Examples
//!
//! ```
//! use axiom_repro::axiom::AxiomMultiMap;
//!
//! let mm = AxiomMultiMap::<&str, u32>::new().inserted("k", 1).inserted("k", 2);
//! assert_eq!(mm.value_count(&"k"), 2);
//! ```

pub use axiom;
pub use cfg_analysis;
pub use champ;
pub use hamt;
pub use heapmodel;
pub use idiomatic;
pub use serving;
pub use sharded;
pub use trie_common;
pub use workloads;
