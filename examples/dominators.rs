//! Dominator analysis over persistent multi-maps — the paper's §6 case
//! study, in miniature and on real structures.
//!
//! Run with `cargo run --release --example dominators`.

use axiom_repro::axiom::AxiomMultiMap;
use axiom_repro::cfg_analysis::ast::CfgNode;
use axiom_repro::cfg_analysis::dominators::{dominator_tree, dominators_relational};
use axiom_repro::cfg_analysis::generate::{generate_cfg, generate_corpus, GenConfig};
use axiom_repro::cfg_analysis::graph::relation_shape;
use axiom_repro::cfg_analysis::{Ast, Cfg};
use axiom_repro::idiomatic::NestedChampMultiMap;
use axiom_repro::trie_common::ops::MultiMapOps;
use std::sync::Arc;

/// The control-flow graph of the paper's Figure 7a:
/// `A→B, A→C, B→D, C→D, D→E`.
fn figure7() -> Cfg {
    let names = ["A", "B", "C", "D", "E"];
    let nodes: Vec<CfgNode> = names
        .iter()
        .enumerate()
        .map(|(i, _)| CfgNode::new(0, i as u32, Arc::new(Ast::Var(i as u32))))
        .collect();
    Cfg {
        func: 0,
        nodes,
        edges: vec![(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)],
    }
}

fn main() {
    // --- the paper's worked example -------------------------------------
    let names = ["A", "B", "C", "D", "E"];
    let cfg = figure7();
    let dom: AxiomMultiMap<CfgNode, CfgNode> = dominators_relational(&cfg);
    println!("Figure 7: dominator sets (Dom(n) = ∩ Dom(preds) ∪ {{n}}):");
    for (i, node) in cfg.nodes.iter().enumerate() {
        let mut ds: Vec<&str> = dom.values_of(node).map(|d| names[d.id as usize]).collect();
        ds.sort();
        println!("  Dom({}) = {{{}}}", names[i], ds.join(", "));
    }
    let idom = dominator_tree(&cfg);
    println!("Dominator tree (matches the paper's Figure 7b):");
    for (i, parent) in idom.iter().enumerate() {
        if let Some(p) = parent {
            println!("  idom({}) = {}", names[i], names[*p]);
        }
    }

    // --- a generated corpus, two multi-map backends ---------------------
    let corpus = generate_corpus(64, 7, &GenConfig::default());
    let total_nodes: usize = corpus.iter().map(Cfg::len).sum();
    println!(
        "\nGenerated corpus: {} CFGs, {} nodes",
        corpus.len(),
        total_nodes
    );

    let mut axiom_tuples = 0usize;
    let mut champ_tuples = 0usize;
    for cfg in &corpus {
        let a: AxiomMultiMap<CfgNode, CfgNode> = dominators_relational(cfg);
        let c: NestedChampMultiMap<CfgNode, CfgNode> = dominators_relational(cfg);
        axiom_tuples += a.tuple_count();
        champ_tuples += c.tuple_count();
    }
    assert_eq!(axiom_tuples, champ_tuples);
    println!("Dominator tuples (both backends agree): {axiom_tuples}");

    // --- the preds shape the paper highlights ---------------------------
    let sample = generate_cfg(0, 7, &GenConfig::default());
    let preds: AxiomMultiMap<CfgNode, CfgNode> = sample.preds_relation();
    let shape = relation_shape(&preds);
    println!(
        "\npreds relation of one CFG: {} keys, {} tuples, {:.0}% one-to-one",
        shape.keys, shape.tuples, shape.pct_one_to_one
    );
    println!("(The reverse index of a CFG is mostly 1:1 — AXIOM's sweet spot.)");
}
