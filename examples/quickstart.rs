//! Quickstart: the AXIOM persistent multi-map in five minutes.
//!
//! Run with `cargo run --example quickstart`.

use axiom_repro::axiom::{AxiomMultiMap, BindingRef};
use axiom_repro::heapmodel::{JvmArch, JvmFootprint, LayoutPolicy, RustFootprint};

fn main() {
    // A multi-map holds a binary relation: keys may map to one value
    // (stored inline, no nested collection) or to many (a nested set).
    let mut imports = AxiomMultiMap::<&str, &str>::new();
    imports.insert_mut("parser", "lexer");
    imports.insert_mut("typeck", "parser");
    imports.insert_mut("codegen", "typeck");
    imports.insert_mut("codegen", "layout"); // "codegen" promotes to 1:n

    println!(
        "relation: {} tuples over {} keys",
        imports.tuple_count(),
        imports.key_count()
    );

    // `get` exposes whether a key is currently 1:1 or 1:n.
    match imports.get(&"codegen") {
        Some(BindingRef::Many(values)) => {
            let vs: Vec<_> = axiom_repro::axiom::ValueBag::iter(values).collect();
            println!("codegen -> {vs:?} (nested set)");
        }
        Some(BindingRef::One(v)) => println!("codegen -> {v} (inlined)"),
        None => println!("codegen has no deps"),
    }

    // Updates are persistent: old versions stay valid and share structure.
    let before = imports.clone();
    let after = imports.tuple_removed(&"codegen", &"layout"); // demotes to 1:1
    assert_eq!(before.value_count(&"codegen"), 2);
    assert_eq!(after.value_count(&"codegen"), 1);
    println!(
        "after removing one dep: codegen is inlined again: {}",
        matches!(after.get(&"codegen"), Some(BindingRef::One(_)))
    );

    // Iterate the flattened relation or just the keys.
    let mut tuples: Vec<(&str, &str)> = imports.iter().map(|(k, v)| (*k, *v)).collect();
    tuples.sort();
    println!("tuples: {tuples:?}");

    // Footprint introspection: modeled JVM bytes (the paper's metric) and
    // actual Rust heap bytes.
    let big: AxiomMultiMap<u32, u32> = (0..10_000u32)
        .flat_map(|k| {
            let second = (k % 2 == 0).then_some((k, k + 1_000_000));
            std::iter::once((k, k)).chain(second)
        })
        .collect();
    let fp = big.jvm_bytes(&JvmArch::COMPRESSED_OOPS, &LayoutPolicy::BASELINE);
    println!(
        "10k keys / {} tuples: modeled JVM structure {} B ({:.2} B/tuple), native Rust {} B",
        big.tuple_count(),
        fp.structure,
        fp.overhead_per_tuple(big.tuple_count()),
        big.rust_bytes()
    );
}
