//! Building a reverse index with a multi-map — the skewed-distribution use
//! case the paper's introduction motivates (most keys map to one value, a
//! few map to many), with footprint comparison across all designs.
//!
//! Run with `cargo run --release --example reverse_index`.

use axiom_repro::axiom::{AxiomFusedMultiMap, AxiomMultiMap};
use axiom_repro::heapmodel::{JvmArch, JvmFootprint, LayoutPolicy};
use axiom_repro::idiomatic::{ClojureMultiMap, NestedChampMultiMap, ScalaMultiMap};
use axiom_repro::trie_common::ops::MultiMapOps;

/// A synthetic "defined-in" relation: symbol id → module id. Most symbols
/// are defined once; a small tail is re-exported from several modules.
fn definitions(symbols: u32) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for s in 0..symbols {
        out.push((s, s % 97));
        // 6% of symbols are re-exported from one extra module, 1% from three.
        if s % 16 == 0 {
            out.push((s, (s + 13) % 97));
        }
        if s % 100 == 0 {
            for extra in 1..=3 {
                out.push((s, (s + extra * 31) % 97));
            }
        }
    }
    out
}

fn report<M: MultiMapOps<u32, u32> + JvmFootprint>(tuples: &[(u32, u32)]) -> (usize, u64) {
    let mut mm = M::empty();
    for &(k, v) in tuples {
        mm = mm.inserted(k, v);
    }
    let fp = mm.jvm_bytes(&JvmArch::COMPRESSED_OOPS, &LayoutPolicy::BASELINE);
    (mm.tuple_count(), fp.structure)
}

fn main() {
    let tuples = definitions(20_000);

    let index: AxiomMultiMap<u32, u32> = tuples.iter().copied().collect();
    let singles = {
        let mut n = 0;
        index.keys().for_each(|k| {
            if index.value_count(k) == 1 {
                n += 1;
            }
        });
        n
    };
    println!(
        "reverse index: {} symbols, {} tuples, {:.1}% single-definition",
        index.key_count(),
        index.tuple_count(),
        100.0 * singles as f64 / index.key_count() as f64
    );

    println!("\nstructure overhead per tuple (modeled JVM, compressed oops):");
    let rows: [(&str, (usize, u64)); 5] = [
        (
            "clojure (protocol)",
            report::<ClojureMultiMap<u32, u32>>(&tuples),
        ),
        (
            "scala (map of sets)",
            report::<ScalaMultiMap<u32, u32>>(&tuples),
        ),
        (
            "champ map-of-sets",
            report::<NestedChampMultiMap<u32, u32>>(&tuples),
        ),
        ("axiom", report::<AxiomMultiMap<u32, u32>>(&tuples)),
        (
            "axiom fused",
            report::<AxiomFusedMultiMap<u32, u32>>(&tuples),
        ),
    ];
    let axiom_bytes = rows[3].1 .1;
    for (name, (tuples, bytes)) in rows {
        println!(
            "  {name:<20} {:>9} B total, {:>6.2} B/tuple ({:.2}x of axiom)",
            bytes,
            bytes as f64 / tuples as f64,
            bytes as f64 / axiom_bytes as f64,
        );
    }

    // Lookups work the same whichever way a key is stored.
    assert!(index.contains_tuple(&0, &0));
    assert_eq!(index.value_count(&0), 4); // 1 + re-export + 3 extra - dup
    println!("\nsymbol 0 is defined in {} modules", index.value_count(&0));
}
