//! Program-dependence-graph processing over persistent relations: build a
//! dependence relation, invert it, compute transitive images — the
//! many-to-many workload of the paper's introduction — while every
//! intermediate version stays live (persistence in action).
//!
//! Run with `cargo run --release --example dependence_graph`.

use axiom_repro::axiom::AxiomMultiMap;
use axiom_repro::cfg_analysis::relational::{compose, domain, image, inverse};

type Rel = AxiomMultiMap<u32, u32>;

/// A layered synthetic dependence graph: node `n` in layer `l` depends on
/// 1-3 nodes of layer `l-1` (skewed: mostly one dependence).
fn dependence_graph(layers: u32, width: u32) -> Rel {
    let id = |layer: u32, i: u32| layer * width + i;
    let mut rel = Rel::new();
    for layer in 1..layers {
        for i in 0..width {
            let this = id(layer, i);
            rel.insert_mut(this, id(layer - 1, i));
            if i % 8 == 0 {
                rel.insert_mut(this, id(layer - 1, (i + 1) % width));
            }
            if i % 32 == 0 {
                rel.insert_mut(this, id(layer - 1, (i + 2) % width));
            }
        }
    }
    rel
}

fn main() {
    let deps = dependence_graph(12, 256);
    println!(
        "dependence relation: {} tuples over {} nodes",
        deps.tuple_count(),
        deps.key_count()
    );

    // The reverse index: "who depends on me?". CFG/PDG reverse indices are
    // mostly 1:1, which is exactly what AXIOM's inlined singletons exploit.
    let rdeps: Rel = inverse(&deps);
    assert_eq!(rdeps.tuple_count(), deps.tuple_count());
    println!("reverse index keys: {}", rdeps.key_count());

    // Two-step dependence via relational composition.
    let two_step: Rel = compose(&deps, &deps);
    println!("2-step dependences: {} tuples", two_step.tuple_count());

    // Transitive image of a single node (breadth-first through the relation).
    let root = 11 * 256; // a node in the top layer
    let mut frontier = vec![root];
    let mut reached = 0usize;
    while !frontier.is_empty() {
        let next = image(&deps, &frontier);
        reached += next.len();
        frontier = next;
    }
    println!("transitive closure from node {root}: {reached} reachable deps");

    // Persistence: derive a patched graph; the original is unchanged. The
    // union comes from the relation-algebra trait, whose AXIOM impl diffs
    // structurally — here it costs one tuple, not a rescan of `deps`.
    let patched = deps.union(&Rel::new().inserted(42, 7));
    assert_eq!(patched.tuple_count(), deps.tuple_count() + 1);
    assert_ne!(patched.tuple_count(), deps.tuple_count());
    println!(
        "patched version: {} tuples (original still {})",
        patched.tuple_count(),
        deps.tuple_count()
    );

    let keys = domain(&deps);
    println!("first keys of the domain: {:?}", &keys[..5.min(keys.len())]);
}
