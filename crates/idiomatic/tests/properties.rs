//! Property-based tests for the idiomatic multi-map baselines: oracle
//! agreement, representation-specific invariants (Clojure's dynamic
//! value-or-set, Scala's Set1..Set4 ladder, nested-CHAMP's always-set), and
//! cross-baseline agreement with the AXIOM reference.

use std::collections::{BTreeMap, BTreeSet};

use axiom::AxiomMultiMap;
use idiomatic::{ClojureMultiMap, ClojureVal, NestedChampMultiMap, ScalaMultiMap, ScalaSet};
use proptest::prelude::*;
use trie_common::ops::MultiMapOps;

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u8),
    RemoveTuple(u16, u8),
    RemoveKey(u16),
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| Op::Insert(k % 48, v % 8)),
            2 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| Op::RemoveTuple(k % 48, v % 8)),
            1 => any::<u16>().prop_map(|k| Op::RemoveKey(k % 48)),
        ],
        0..250,
    )
}

fn drive<M: MultiMapOps<u16, u8>>(ops: &[Op]) -> M {
    let mut mm = M::empty();
    for op in ops {
        mm = match op {
            Op::Insert(k, v) => mm.inserted(*k, *v),
            Op::RemoveTuple(k, v) => mm.tuple_removed(k, v),
            Op::RemoveKey(k) => mm.key_removed(k),
        };
    }
    mm
}

fn model_of(ops: &[Op]) -> BTreeMap<u16, BTreeSet<u8>> {
    let mut model: BTreeMap<u16, BTreeSet<u8>> = BTreeMap::new();
    for op in ops {
        match op {
            Op::Insert(k, v) => {
                model.entry(*k).or_default().insert(*v);
            }
            Op::RemoveTuple(k, v) => {
                if let Some(s) = model.get_mut(k) {
                    s.remove(v);
                    if s.is_empty() {
                        model.remove(k);
                    }
                }
            }
            Op::RemoveKey(k) => {
                model.remove(k);
            }
        }
    }
    model
}

fn assert_matches<M: MultiMapOps<u16, u8>>(mm: &M, model: &BTreeMap<u16, BTreeSet<u8>>) {
    assert_eq!(mm.key_count(), model.len());
    assert_eq!(
        mm.tuple_count(),
        model.values().map(BTreeSet::len).sum::<usize>()
    );
    for (k, vs) in model {
        assert_eq!(mm.value_count(k), vs.len());
        for v in vs {
            assert!(mm.contains_tuple(k, v));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn clojure_matches_model(ops in ops_strategy()) {
        let mm: ClojureMultiMap<u16, u8> = drive(&ops);
        assert_matches(&mm, &model_of(&ops));
    }

    #[test]
    fn scala_matches_model(ops in ops_strategy()) {
        let mm: ScalaMultiMap<u16, u8> = drive(&ops);
        assert_matches(&mm, &model_of(&ops));
    }

    #[test]
    fn nested_champ_matches_model(ops in ops_strategy()) {
        let mm: NestedChampMultiMap<u16, u8> = drive(&ops);
        assert_matches(&mm, &model_of(&ops));
    }

    #[test]
    fn clojure_singletons_are_inlined(ops in ops_strategy()) {
        // Invariant of the protocol representation: exactly the keys with
        // one value hold Single, all others SetOf with ≥ 2 elements.
        let mm: ClojureMultiMap<u16, u8> = drive(&ops);
        let model = model_of(&ops);
        for (k, vs) in &model {
            match mm.get(k).expect("key present") {
                ClojureVal::Single(v) => {
                    prop_assert_eq!(vs.len(), 1);
                    prop_assert!(vs.contains(v));
                }
                ClojureVal::SetOf(s) => {
                    prop_assert!(s.len() >= 2, "SetOf with {} values", s.len());
                    prop_assert_eq!(s.len(), vs.len());
                }
            }
        }
    }

    #[test]
    fn scala_ladder_shape_matches_cardinality(ops in ops_strategy()) {
        // SetN holds exactly N; the trie only appears past 4 values (and may
        // persist at lower cardinalities after shrinking — Scala-faithful).
        let mm: ScalaMultiMap<u16, u8> = drive(&ops);
        let model = model_of(&ops);
        for (k, vs) in &model {
            let set = mm.get(k).expect("key present");
            prop_assert_eq!(set.len(), vs.len());
            match set {
                ScalaSet::S1(..) => prop_assert_eq!(vs.len(), 1),
                ScalaSet::S2(..) => prop_assert_eq!(vs.len(), 2),
                ScalaSet::S3(..) => prop_assert_eq!(vs.len(), 3),
                ScalaSet::S4(..) => prop_assert_eq!(vs.len(), 4),
                ScalaSet::Trie(_) => prop_assert!(!vs.is_empty()),
            }
        }
    }

    #[test]
    fn all_baselines_agree_with_axiom(ops in ops_strategy()) {
        let reference: AxiomMultiMap<u16, u8> = drive(&ops);
        let clojure: ClojureMultiMap<u16, u8> = drive(&ops);
        let scala: ScalaMultiMap<u16, u8> = drive(&ops);
        let nested: NestedChampMultiMap<u16, u8> = drive(&ops);
        for mm in [
            (clojure.key_count(), clojure.tuple_count()),
            (scala.key_count(), scala.tuple_count()),
            (nested.key_count(), nested.tuple_count()),
        ] {
            prop_assert_eq!(mm, (reference.key_count(), reference.tuple_count()));
        }
        let mut tuples: BTreeSet<(u16, u8)> = BTreeSet::new();
        reference.for_each_tuple(&mut |k, v| {
            tuples.insert((*k, *v));
        });
        for (k, v) in &tuples {
            prop_assert!(clojure.contains_tuple(k, v));
            prop_assert!(scala.contains_tuple(k, v));
            prop_assert!(nested.contains_tuple(k, v));
        }
    }
}
