//! The idiomatic Clojure multi-map (Figure 4's baseline).
//!
//! VanderHart & Neufeld's protocol-based multi-map stores, for each key,
//! either a bare value or a nested set — *untyped* on the JVM, so every
//! operation performs a dynamic type check to discover which case it holds
//! (the [`ClojureVal`] enum's `match` below). Singletons are inlined (like
//! AXIOM), but the substrate is Clojure's plain HAMT with its simple one-bit
//! compression and non-canonical deletion.

use std::hash::Hash;

use hamt::{HamtMap, HamtSet};
use heapmodel::{Accounting, JvmArch, JvmFootprint, JvmSize, LayoutPolicy, RustFootprint};
use trie_common::iter::{MaybeIter, TuplesOf};
use trie_common::ops::{EditInPlace, MultiMapAlgebraOps, MultiMapMutOps, MultiMapOps};

/// A key's binding: the dynamic either-value-or-set the Clojure protocol
/// dispatches on.
#[derive(Debug)]
pub enum ClojureVal<V> {
    /// A bare singleton value.
    Single(V),
    /// A nested set of ≥ 2 values.
    SetOf(HamtSet<V>),
}

impl<V: Clone> Clone for ClojureVal<V> {
    fn clone(&self) -> Self {
        match self {
            ClojureVal::Single(v) => ClojureVal::Single(v.clone()),
            ClojureVal::SetOf(s) => ClojureVal::SetOf(s.clone()),
        }
    }
}

impl<V: Clone + Eq + Hash> PartialEq for ClojureVal<V> {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (ClojureVal::Single(a), ClojureVal::Single(b)) => a == b,
            (ClojureVal::SetOf(a), ClojureVal::SetOf(b)) => a == b,
            _ => false,
        }
    }
}

impl<V: Clone + Eq + Hash> ClojureVal<V> {
    fn len(&self) -> usize {
        match self {
            ClojureVal::Single(_) => 1,
            ClojureVal::SetOf(s) => s.len(),
        }
    }

    fn contains(&self, value: &V) -> bool {
        match self {
            ClojureVal::Single(v) => v == value,
            ClojureVal::SetOf(s) => s.contains(value),
        }
    }
}

impl<V> ClojureVal<V> {
    /// Iterates the binding's values (one for a bare singleton).
    pub fn iter(&self) -> ClojureValIter<'_, V> {
        match self {
            ClojureVal::Single(v) => ClojureValIter::Single(std::iter::once(v)),
            ClojureVal::SetOf(s) => ClojureValIter::SetOf(s.iter()),
        }
    }
}

impl<'a, V> IntoIterator for &'a ClojureVal<V> {
    type Item = &'a V;
    type IntoIter = ClojureValIter<'a, V>;
    fn into_iter(self) -> ClojureValIter<'a, V> {
        self.iter()
    }
}

/// Iterator over a [`ClojureVal`] binding's values. Created by
/// [`ClojureVal::iter`].
#[derive(Debug)]
pub enum ClojureValIter<'a, V> {
    /// The bare-singleton case.
    Single(std::iter::Once<&'a V>),
    /// The nested-set case.
    SetOf(hamt::set::Iter<'a, V>),
}

impl<'a, V> Iterator for ClojureValIter<'a, V> {
    type Item = &'a V;
    fn next(&mut self) -> Option<&'a V> {
        match self {
            ClojureValIter::Single(it) => it.next(),
            ClojureValIter::SetOf(it) => it.next(),
        }
    }
}

/// A persistent multi-map in the idiomatic Clojure style: a [`HamtMap`] whose
/// values are dynamically either a bare value or a [`HamtSet`].
///
/// # Examples
///
/// ```
/// use idiomatic::ClojureMultiMap;
/// use trie_common::ops::MultiMapOps;
///
/// let mm = ClojureMultiMap::<u32, u32>::empty()
///     .inserted(1, 10)
///     .inserted(1, 11);
/// assert_eq!(mm.tuple_count(), 2);
/// assert_eq!(mm.key_count(), 1);
/// ```
pub struct ClojureMultiMap<K, V> {
    map: HamtMap<K, ClojureVal<V>>,
    tuples: usize,
}

impl<K, V: Clone> Clone for ClojureMultiMap<K, V> {
    fn clone(&self) -> Self {
        ClojureMultiMap {
            map: self.map.clone(),
            tuples: self.tuples,
        }
    }
}

impl<K, V> std::fmt::Debug for ClojureMultiMap<K, V>
where
    K: std::fmt::Debug + Clone + Eq + Hash,
    V: std::fmt::Debug + Clone + Eq + Hash,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.map.iter()).finish()
    }
}

impl<K, V> ClojureMultiMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
{
    /// Creates an empty multi-map.
    pub fn new() -> Self {
        ClojureMultiMap {
            map: HamtMap::new(),
            tuples: 0,
        }
    }

    /// Borrowed view of the binding for `key`, if any.
    pub fn get(&self, key: &K) -> Option<&ClojureVal<V>> {
        self.map.get(key)
    }

    /// Inserts `(key, value)` in place. Returns true if the relation grew.
    pub fn insert_mut(&mut self, key: K, value: V) -> bool {
        // Protocol dispatch: the stored value's dynamic type decides.
        match self.map.get(&key) {
            None => {
                self.map.insert_mut(key, ClojureVal::Single(value));
                self.tuples += 1;
                true
            }
            Some(ClojureVal::Single(v)) => {
                if *v == value {
                    return false;
                }
                let set: HamtSet<V> = [v.clone(), value].into_iter().collect();
                self.map.insert_mut(key, ClojureVal::SetOf(set));
                self.tuples += 1;
                true
            }
            Some(ClojureVal::SetOf(s)) => {
                if s.contains(&value) {
                    return false;
                }
                let s = s.inserted(value);
                self.map.insert_mut(key, ClojureVal::SetOf(s));
                self.tuples += 1;
                true
            }
        }
    }

    /// Removes `(key, value)` in place. Returns true if present.
    pub fn remove_tuple_mut(&mut self, key: &K, value: &V) -> bool {
        match self.map.get(key) {
            None => false,
            Some(ClojureVal::Single(v)) => {
                if v != value {
                    return false;
                }
                self.map.remove_mut(key);
                self.tuples -= 1;
                true
            }
            Some(ClojureVal::SetOf(s)) => {
                if !s.contains(value) {
                    return false;
                }
                let s = s.removed(value);
                let new_val = if s.len() == 1 {
                    // Demote to an inlined singleton (the protocol's
                    // `to-one` case).
                    ClojureVal::Single(s.sole().clone())
                } else {
                    ClojureVal::SetOf(s)
                };
                self.map.insert_mut(key.clone(), new_val);
                self.tuples -= 1;
                true
            }
        }
    }

    /// Removes every tuple for `key` in place. Returns the number removed.
    pub fn remove_key_mut(&mut self, key: &K) -> usize {
        let removed = self.map.get(key).map_or(0, ClojureVal::len);
        if removed > 0 {
            self.map.remove_mut(key);
            self.tuples -= removed;
        }
        removed
    }

    /// Iterates all `(key, value)` tuples in unspecified order.
    pub fn iter(&self) -> ClojureTuples<'_, K, V> {
        TuplesOf::new(self.map.iter())
    }

    /// Iterates the distinct keys in unspecified order.
    pub fn keys(&self) -> hamt::map::Keys<'_, K, ClojureVal<V>> {
        self.map.keys()
    }

    /// Iterates the values bound to `key` (nothing if the key is absent).
    pub fn values_of(&self, key: &K) -> MaybeIter<ClojureValIter<'_, V>> {
        MaybeIter::of(self.map.get(key).map(ClojureVal::iter))
    }
}

/// Iterator over a [`ClojureMultiMap`]'s flattened tuples. Created by
/// [`ClojureMultiMap::iter`].
pub type ClojureTuples<'a, K, V> =
    TuplesOf<'a, K, ClojureVal<V>, hamt::map::Iter<'a, K, ClojureVal<V>>>;

impl<'a, K, V> IntoIterator for &'a ClojureMultiMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
{
    type Item = (&'a K, &'a V);
    type IntoIter = ClojureTuples<'a, K, V>;
    fn into_iter(self) -> ClojureTuples<'a, K, V> {
        self.iter()
    }
}

impl<K, V> Default for ClojureMultiMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
{
    fn default() -> Self {
        ClojureMultiMap::new()
    }
}

impl<K, V> FromIterator<(K, V)> for ClojureMultiMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
{
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        trie_common::ops::from_iter_via(iter)
    }
}

impl<K, V> Extend<(K, V)> for ClojureMultiMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
{
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        trie_common::ops::extend_via(self, iter);
    }
}

impl<K, V> EditInPlace<(K, V)> for ClojureMultiMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
{
    fn edit_insert(&mut self, (key, value): (K, V)) -> bool {
        self.insert_mut(key, value)
    }
}

impl<K, V> MultiMapMutOps<K, V> for ClojureMultiMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
{
    fn insert_mut(&mut self, key: K, value: V) -> bool {
        ClojureMultiMap::insert_mut(self, key, value)
    }

    fn remove_tuple_mut(&mut self, key: &K, value: &V) -> bool {
        ClojureMultiMap::remove_tuple_mut(self, key, value)
    }

    fn remove_key_mut(&mut self, key: &K) -> usize {
        ClojureMultiMap::remove_key_mut(self, key)
    }
}

// The idiomatic emulation layers on a map of sets, so the tuple algebra
// rides the element-wise fallback defaults.
impl<K, V> MultiMapAlgebraOps<K, V> for ClojureMultiMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
{
}

impl<K, V> MultiMapOps<K, V> for ClojureMultiMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
{
    const NAME: &'static str = "clojure-multimap";

    type Tuples<'a>
        = ClojureTuples<'a, K, V>
    where
        Self: 'a,
        K: 'a,
        V: 'a;
    type Keys<'a>
        = hamt::map::Keys<'a, K, ClojureVal<V>>
    where
        Self: 'a,
        K: 'a,
        V: 'a;
    type ValuesOf<'a>
        = MaybeIter<ClojureValIter<'a, V>>
    where
        Self: 'a,
        K: 'a,
        V: 'a;

    fn empty() -> Self {
        ClojureMultiMap::new()
    }

    fn tuple_count(&self) -> usize {
        self.tuples
    }

    fn key_count(&self) -> usize {
        self.map.len()
    }

    fn contains_key(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    fn contains_tuple(&self, key: &K, value: &V) -> bool {
        self.map.get(key).is_some_and(|b| b.contains(value))
    }

    fn value_count(&self, key: &K) -> usize {
        self.map.get(key).map_or(0, ClojureVal::len)
    }

    fn inserted(&self, key: K, value: V) -> Self {
        let mut next = self.clone();
        next.insert_mut(key, value);
        next
    }

    fn tuple_removed(&self, key: &K, value: &V) -> Self {
        let mut next = self.clone();
        next.remove_tuple_mut(key, value);
        next
    }

    fn key_removed(&self, key: &K) -> Self {
        let mut next = self.clone();
        next.remove_key_mut(key);
        next
    }

    fn tuples(&self) -> Self::Tuples<'_> {
        self.iter()
    }

    fn keys(&self) -> Self::Keys<'_> {
        ClojureMultiMap::keys(self)
    }

    fn values_of<'a>(&'a self, key: &K) -> Self::ValuesOf<'a> {
        ClojureMultiMap::values_of(self, key)
    }
}

impl<K, V> JvmFootprint for ClojureMultiMap<K, V>
where
    K: Clone + Eq + Hash + JvmSize,
    V: Clone + Eq + Hash + JvmSize,
{
    fn jvm_footprint(&self, arch: &JvmArch, policy: &LayoutPolicy, acc: &mut Accounting) {
        hamt::hamt_map_jvm_with(&self.map, arch, policy, acc, &mut |k, binding, acc| {
            acc.payload(k.jvm_size(arch));
            match binding {
                ClojureVal::Single(v) => acc.payload(v.jvm_size(arch)),
                ClojureVal::SetOf(s) => {
                    // Clojure's nested set is a PersistentHashSet (meta ref,
                    // impl-map ref, two cached hash ints) wrapping a full
                    // PersistentHashMap object (count, root ref, null-key
                    // fields, meta, cached hashes) — heavy fixed costs per
                    // nested collection on the real JVM.
                    acc.structure(arch.object(2, 2, 0) + arch.object(3, 4, 0));
                    hamt::nested_hamt_set_jvm(s, arch, policy, acc);
                }
            }
        });
    }
}

impl<K, V> RustFootprint for ClojureMultiMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
{
    fn rust_footprint(&self, acc: &mut Accounting) {
        hamt::hamt_map_rust_with(&self.map, acc, &mut |_, binding, acc| {
            if let ClojureVal::SetOf(s) = binding {
                hamt::nested_hamt_set_rust(s, acc);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Mm = ClojureMultiMap<u32, u32>;

    #[test]
    fn promote_demote() {
        let mm = Mm::empty().inserted(1, 10).inserted(1, 20);
        assert!(matches!(mm.get(&1), Some(ClojureVal::SetOf(_))));
        let mm = mm.tuple_removed(&1, &10);
        assert!(matches!(mm.get(&1), Some(ClojureVal::Single(20))));
        assert_eq!(mm.tuple_count(), 1);
        let mm = mm.tuple_removed(&1, &20);
        assert!(mm.is_empty());
    }

    #[test]
    fn counts_on_skewed_data() {
        let mut mm = Mm::empty();
        for k in 0..200u32 {
            mm.insert_mut(k, 0);
            if k % 2 == 0 {
                mm.insert_mut(k, 1);
            }
        }
        assert_eq!(mm.key_count(), 200);
        assert_eq!(mm.tuple_count(), 300);
        let mut n = 0;
        mm.for_each_tuple(&mut |_, _| n += 1);
        assert_eq!(n, 300);
    }

    #[test]
    fn remove_key() {
        let mut mm = Mm::empty();
        for v in 0..5 {
            mm.insert_mut(9, v);
        }
        assert_eq!(mm.remove_key_mut(&9), 5);
        assert!(mm.is_empty());
    }

    #[test]
    fn footprints() {
        let mm: Mm = (0..200u32).map(|k| (k / 2, k)).collect();
        let fp = mm.jvm_bytes(&JvmArch::COMPRESSED_OOPS, &LayoutPolicy::BASELINE);
        assert!(fp.total() > 0);
        assert!(mm.rust_bytes() > 0);
    }
}
