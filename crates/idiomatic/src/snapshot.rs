//! Snapshot persistence ([`SnapshotWrite`] / [`SnapshotRead`]) for the
//! idiomatic multi-map baselines. All three share the multi-map wire kind,
//! so snapshots transfer freely between them (and to/from the AXIOM
//! multi-maps): the format stores flattened `(key, value)` tuples only.

use std::hash::Hash;

use serde::{Deserialize, Serialize};
use trie_common::ops::MultiMapOps;
use trie_common::snapshot::{self, Kind, SnapshotError, SnapshotRead, SnapshotWrite};

use crate::{ClojureMultiMap, NestedChampMultiMap, ScalaMultiMap};

macro_rules! impl_multimap_snapshot {
    ($ty:ident) => {
        impl<K, V> SnapshotWrite for $ty<K, V>
        where
            K: Serialize + Clone + Eq + Hash,
            V: Serialize + Clone + Eq + Hash,
        {
            const KIND: Kind = Kind::MultiMap;

            fn write_snapshot(&self, out: &mut Vec<u8>) -> Result<(), SnapshotError> {
                snapshot::write_collection(Kind::MultiMap, MultiMapOps::tuples(self), out)
            }
        }

        impl<K, V> SnapshotRead for $ty<K, V>
        where
            K: for<'de> Deserialize<'de> + Clone + Eq + Hash,
            V: for<'de> Deserialize<'de> + Clone + Eq + Hash,
        {
            fn read_snapshot(bytes: &[u8]) -> Result<Self, SnapshotError> {
                snapshot::read_collection(Kind::MultiMap, bytes)
            }
        }
    };
}

impl_multimap_snapshot!(ClojureMultiMap);
impl_multimap_snapshot!(ScalaMultiMap);
impl_multimap_snapshot!(NestedChampMultiMap);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn model<M: MultiMapOps<u32, u32>>(m: &M) -> BTreeSet<(u32, u32)> {
        m.tuples().map(|(k, v)| (*k, *v)).collect()
    }

    #[test]
    fn idiomatic_multimaps_roundtrip_and_transfer() {
        let tuples: Vec<(u32, u32)> = (0..500).map(|i| (i / 3, i)).collect();
        let clojure: ClojureMultiMap<u32, u32> = tuples.iter().copied().collect();
        let scala: ScalaMultiMap<u32, u32> = tuples.iter().copied().collect();
        let nested: NestedChampMultiMap<u32, u32> = tuples.iter().copied().collect();

        let bytes = clojure.snapshot_bytes().unwrap();
        let back: ClojureMultiMap<u32, u32> = ClojureMultiMap::read_snapshot(&bytes).unwrap();
        assert_eq!(model(&back), model(&clojure));

        // The wire format is implementation-agnostic: a Clojure-idiom
        // snapshot restores as the Scala idiom or the nested-CHAMP layout.
        let as_scala: ScalaMultiMap<u32, u32> = ScalaMultiMap::read_snapshot(&bytes).unwrap();
        assert_eq!(model(&as_scala), model(&scala));
        let as_nested: NestedChampMultiMap<u32, u32> =
            NestedChampMultiMap::read_snapshot(&bytes).unwrap();
        assert_eq!(model(&as_nested), model(&nested));

        let back: ScalaMultiMap<u32, u32> =
            ScalaMultiMap::read_snapshot(&scala.snapshot_bytes().unwrap()).unwrap();
        assert_eq!(model(&back), model(&scala));
        let back: NestedChampMultiMap<u32, u32> =
            NestedChampMultiMap::read_snapshot(&nested.snapshot_bytes().unwrap()).unwrap();
        assert_eq!(model(&back), model(&nested));
    }
}
