//! The idiomatic Scala multi-map (Figure 5's baseline).
//!
//! Scala's standard library offers a mutable `MultiMap` trait that hoists a
//! regular map of sets into a multi-map; the paper ports that program logic
//! to the immutable case. Two Scala-specific behaviours are reproduced:
//!
//! * **always-nested sets** — every key maps to a set, even singletons, but
//!   Scala's small immutable sets are *specialized* (`Set1..Set4` hold their
//!   elements as fields, no trie) which is why Scala's multi-map footprint
//!   turned out close to Clojure's (the paper's §4.4 Discussion: "Scala's
//!   hash-set does specialize singletons");
//! * **memoized hash codes** in both the outer map and overflow sets, giving
//!   Scala its negative-lookup advantage (Hypothesis 2).

use std::hash::Hash;

use hamt::{MemoHamtMap, MemoHamtSet};
use heapmodel::{Accounting, JvmArch, JvmFootprint, JvmSize, LayoutPolicy, RustFootprint};
use trie_common::iter::{MaybeIter, TuplesOf};
use trie_common::ops::{EditInPlace, MultiMapAlgebraOps, MultiMapMutOps, MultiMapOps};

/// An immutable Scala-style set: `Set1..Set4` field specializations with a
/// hash-trie overflow (`HashSet`) beyond four elements.
///
/// Mirroring Scala: `SetN - elem` yields `SetN-1`, while the trie overflow
/// never converts back to a field-specialized `SetN`.
#[derive(Debug)]
pub enum ScalaSet<V> {
    /// One element, stored as a field.
    S1(V),
    /// Two elements.
    S2(V, V),
    /// Three elements.
    S3(V, V, V),
    /// Four elements.
    S4(V, V, V, V),
    /// Five or more elements (or shrunk trie): a hash-trie set.
    Trie(MemoHamtSet<V>),
}

impl<V: Clone> Clone for ScalaSet<V> {
    fn clone(&self) -> Self {
        match self {
            ScalaSet::S1(a) => ScalaSet::S1(a.clone()),
            ScalaSet::S2(a, b) => ScalaSet::S2(a.clone(), b.clone()),
            ScalaSet::S3(a, b, c) => ScalaSet::S3(a.clone(), b.clone(), c.clone()),
            ScalaSet::S4(a, b, c, d) => ScalaSet::S4(a.clone(), b.clone(), c.clone(), d.clone()),
            ScalaSet::Trie(s) => ScalaSet::Trie(s.clone()),
        }
    }
}

impl<V: Clone + Eq + Hash> PartialEq for ScalaSet<V> {
    fn eq(&self, other: &Self) -> bool {
        // Set semantics: same elements regardless of representation or order.
        if self.len() != other.len() {
            return false;
        }
        let mut equal = true;
        self.for_each(&mut |v| equal = equal && other.contains(v));
        equal
    }
}

impl<V> ScalaSet<V> {
    /// Iterates the set's elements in unspecified order.
    pub fn iter(&self) -> ScalaSetIter<'_, V> {
        match self {
            ScalaSet::S1(a) => ScalaSetIter::small([Some(a), None, None, None]),
            ScalaSet::S2(a, b) => ScalaSetIter::small([Some(a), Some(b), None, None]),
            ScalaSet::S3(a, b, c) => ScalaSetIter::small([Some(a), Some(b), Some(c), None]),
            ScalaSet::S4(a, b, c, d) => ScalaSetIter::small([Some(a), Some(b), Some(c), Some(d)]),
            ScalaSet::Trie(s) => ScalaSetIter::Trie(s.iter()),
        }
    }
}

impl<'a, V> IntoIterator for &'a ScalaSet<V> {
    type Item = &'a V;
    type IntoIter = ScalaSetIter<'a, V>;
    fn into_iter(self) -> ScalaSetIter<'a, V> {
        self.iter()
    }
}

/// Iterator over a [`ScalaSet`]'s elements. Created by [`ScalaSet::iter`].
#[derive(Debug)]
pub enum ScalaSetIter<'a, V> {
    /// Iterating the fields of a `Set1..Set4` specialization.
    Small {
        /// The (up to four) borrowed elements.
        items: [Option<&'a V>; 4],
        /// Next field to yield.
        idx: usize,
    },
    /// Iterating the hash-trie overflow set.
    Trie(hamt::set::MemoIter<'a, V>),
}

impl<'a, V> ScalaSetIter<'a, V> {
    fn small(items: [Option<&'a V>; 4]) -> Self {
        ScalaSetIter::Small { items, idx: 0 }
    }
}

impl<'a, V> Iterator for ScalaSetIter<'a, V> {
    type Item = &'a V;
    fn next(&mut self) -> Option<&'a V> {
        match self {
            ScalaSetIter::Small { items, idx } => {
                let out = items.get(*idx).copied().flatten();
                *idx += 1;
                out
            }
            ScalaSetIter::Trie(it) => it.next(),
        }
    }
}

impl<V: Clone + Eq + Hash> ScalaSet<V> {
    fn single(v: V) -> Self {
        ScalaSet::S1(v)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            ScalaSet::S1(..) => 1,
            ScalaSet::S2(..) => 2,
            ScalaSet::S3(..) => 3,
            ScalaSet::S4(..) => 4,
            ScalaSet::Trie(s) => s.len(),
        }
    }

    /// True if no element is stored (only possible for an empty trie).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test.
    pub fn contains(&self, value: &V) -> bool {
        match self {
            ScalaSet::S1(a) => a == value,
            ScalaSet::S2(a, b) => a == value || b == value,
            ScalaSet::S3(a, b, c) => a == value || b == value || c == value,
            ScalaSet::S4(a, b, c, d) => a == value || b == value || c == value || d == value,
            ScalaSet::Trie(s) => s.contains(value),
        }
    }

    /// Returns the set with `value` added, or `None` if present.
    fn inserted(&self, value: &V) -> Option<ScalaSet<V>> {
        if self.contains(value) {
            return None;
        }
        Some(match self {
            ScalaSet::S1(a) => ScalaSet::S2(a.clone(), value.clone()),
            ScalaSet::S2(a, b) => ScalaSet::S3(a.clone(), b.clone(), value.clone()),
            ScalaSet::S3(a, b, c) => ScalaSet::S4(a.clone(), b.clone(), c.clone(), value.clone()),
            ScalaSet::S4(a, b, c, d) => {
                // Set4 + elem overflows into HashSet.
                let s: MemoHamtSet<V> = [a, b, c, d]
                    .into_iter()
                    .cloned()
                    .chain(std::iter::once(value.clone()))
                    .collect();
                ScalaSet::Trie(s)
            }
            ScalaSet::Trie(s) => ScalaSet::Trie(s.inserted(value.clone())),
        })
    }

    /// Returns the set without `value`; `None` if absent; `Some(None)` if it
    /// became empty.
    #[allow(clippy::option_option)]
    fn removed(&self, value: &V) -> Option<Option<ScalaSet<V>>> {
        if !self.contains(value) {
            return None;
        }
        let keep =
            |vs: Vec<&V>| -> Vec<V> { vs.into_iter().filter(|v| *v != value).cloned().collect() };
        Some(match self {
            ScalaSet::S1(_) => None,
            ScalaSet::S2(a, b) => {
                let r = keep(vec![a, b]);
                Some(ScalaSet::S1(r[0].clone()))
            }
            ScalaSet::S3(a, b, c) => {
                let r = keep(vec![a, b, c]);
                Some(ScalaSet::S2(r[0].clone(), r[1].clone()))
            }
            ScalaSet::S4(a, b, c, d) => {
                let r = keep(vec![a, b, c, d]);
                Some(ScalaSet::S3(r[0].clone(), r[1].clone(), r[2].clone()))
            }
            ScalaSet::Trie(s) => {
                let s = s.removed(value);
                if s.is_empty() {
                    None
                } else {
                    // Faithful to Scala: the trie does not demote to SetN.
                    Some(ScalaSet::Trie(s))
                }
            }
        })
    }

    /// Invokes `f` for every element.
    pub fn for_each(&self, f: &mut dyn FnMut(&V)) {
        for v in self.iter() {
            f(v);
        }
    }
}

/// A persistent multi-map in the idiomatic Scala style: a hash-memoizing map
/// whose values are always [`ScalaSet`]s.
///
/// # Examples
///
/// ```
/// use idiomatic::ScalaMultiMap;
/// use trie_common::ops::MultiMapOps;
///
/// let mm = ScalaMultiMap::<u32, u32>::empty().inserted(1, 10).inserted(1, 11);
/// assert_eq!(mm.value_count(&1), 2);
/// ```
pub struct ScalaMultiMap<K, V> {
    map: MemoHamtMap<K, ScalaSet<V>>,
    tuples: usize,
}

impl<K, V> Clone for ScalaMultiMap<K, V> {
    fn clone(&self) -> Self {
        ScalaMultiMap {
            map: self.map.clone(),
            tuples: self.tuples,
        }
    }
}

impl<K, V> std::fmt::Debug for ScalaMultiMap<K, V>
where
    K: std::fmt::Debug + Clone + Eq + Hash,
    V: std::fmt::Debug + Clone + Eq + Hash,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.map.iter()).finish()
    }
}

impl<K, V> ScalaMultiMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
{
    /// Creates an empty multi-map.
    pub fn new() -> Self {
        ScalaMultiMap {
            map: MemoHamtMap::new(),
            tuples: 0,
        }
    }

    /// Borrowed view of the value set for `key`, if any.
    pub fn get(&self, key: &K) -> Option<&ScalaSet<V>> {
        self.map.get(key)
    }

    /// Inserts `(key, value)` in place (`addBinding`). Returns true if the
    /// relation grew.
    pub fn insert_mut(&mut self, key: K, value: V) -> bool {
        match self.map.get(&key) {
            None => {
                self.map.insert_mut(key, ScalaSet::single(value));
                self.tuples += 1;
                true
            }
            Some(set) => match set.inserted(&value) {
                None => false,
                Some(set) => {
                    self.map.insert_mut(key, set);
                    self.tuples += 1;
                    true
                }
            },
        }
    }

    /// Removes `(key, value)` in place (`removeBinding`). Returns true if
    /// present. Keys whose set empties are removed.
    pub fn remove_tuple_mut(&mut self, key: &K, value: &V) -> bool {
        match self.map.get(key) {
            None => false,
            Some(set) => match set.removed(value) {
                None => false,
                Some(None) => {
                    self.map.remove_mut(key);
                    self.tuples -= 1;
                    true
                }
                Some(Some(set)) => {
                    self.map.insert_mut(key.clone(), set);
                    self.tuples -= 1;
                    true
                }
            },
        }
    }

    /// Removes every tuple for `key` in place. Returns the number removed.
    pub fn remove_key_mut(&mut self, key: &K) -> usize {
        let removed = self.map.get(key).map_or(0, ScalaSet::len);
        if removed > 0 {
            self.map.remove_mut(key);
            self.tuples -= removed;
        }
        removed
    }

    /// Iterates all `(key, value)` tuples in unspecified order.
    pub fn iter(&self) -> ScalaTuples<'_, K, V> {
        TuplesOf::new(self.map.iter())
    }

    /// Iterates the distinct keys in unspecified order.
    pub fn keys(&self) -> hamt::memo::Keys<'_, K, ScalaSet<V>> {
        self.map.keys()
    }

    /// Iterates the values bound to `key` (nothing if the key is absent).
    pub fn values_of(&self, key: &K) -> MaybeIter<ScalaSetIter<'_, V>> {
        MaybeIter::of(self.map.get(key).map(ScalaSet::iter))
    }
}

/// Iterator over a [`ScalaMultiMap`]'s flattened tuples. Created by
/// [`ScalaMultiMap::iter`].
pub type ScalaTuples<'a, K, V> = TuplesOf<'a, K, ScalaSet<V>, hamt::memo::Iter<'a, K, ScalaSet<V>>>;

impl<'a, K, V> IntoIterator for &'a ScalaMultiMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
{
    type Item = (&'a K, &'a V);
    type IntoIter = ScalaTuples<'a, K, V>;
    fn into_iter(self) -> ScalaTuples<'a, K, V> {
        self.iter()
    }
}

impl<K, V> Default for ScalaMultiMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
{
    fn default() -> Self {
        ScalaMultiMap::new()
    }
}

impl<K, V> FromIterator<(K, V)> for ScalaMultiMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
{
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        trie_common::ops::from_iter_via(iter)
    }
}

impl<K, V> Extend<(K, V)> for ScalaMultiMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
{
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        trie_common::ops::extend_via(self, iter);
    }
}

impl<K, V> EditInPlace<(K, V)> for ScalaMultiMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
{
    fn edit_insert(&mut self, (key, value): (K, V)) -> bool {
        self.insert_mut(key, value)
    }
}

impl<K, V> MultiMapMutOps<K, V> for ScalaMultiMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
{
    fn insert_mut(&mut self, key: K, value: V) -> bool {
        ScalaMultiMap::insert_mut(self, key, value)
    }

    fn remove_tuple_mut(&mut self, key: &K, value: &V) -> bool {
        ScalaMultiMap::remove_tuple_mut(self, key, value)
    }

    fn remove_key_mut(&mut self, key: &K) -> usize {
        ScalaMultiMap::remove_key_mut(self, key)
    }
}

// The idiomatic emulation layers on a memoized map of sets, so the tuple
// algebra rides the element-wise fallback defaults.
impl<K, V> MultiMapAlgebraOps<K, V> for ScalaMultiMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
{
}

impl<K, V> MultiMapOps<K, V> for ScalaMultiMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
{
    const NAME: &'static str = "scala-multimap";

    type Tuples<'a>
        = ScalaTuples<'a, K, V>
    where
        Self: 'a,
        K: 'a,
        V: 'a;
    type Keys<'a>
        = hamt::memo::Keys<'a, K, ScalaSet<V>>
    where
        Self: 'a,
        K: 'a,
        V: 'a;
    type ValuesOf<'a>
        = MaybeIter<ScalaSetIter<'a, V>>
    where
        Self: 'a,
        K: 'a,
        V: 'a;

    fn empty() -> Self {
        ScalaMultiMap::new()
    }

    fn tuple_count(&self) -> usize {
        self.tuples
    }

    fn key_count(&self) -> usize {
        self.map.len()
    }

    fn contains_key(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    fn contains_tuple(&self, key: &K, value: &V) -> bool {
        self.map.get(key).is_some_and(|s| s.contains(value))
    }

    fn value_count(&self, key: &K) -> usize {
        self.map.get(key).map_or(0, ScalaSet::len)
    }

    fn inserted(&self, key: K, value: V) -> Self {
        let mut next = self.clone();
        next.insert_mut(key, value);
        next
    }

    fn tuple_removed(&self, key: &K, value: &V) -> Self {
        let mut next = self.clone();
        next.remove_tuple_mut(key, value);
        next
    }

    fn key_removed(&self, key: &K) -> Self {
        let mut next = self.clone();
        next.remove_key_mut(key);
        next
    }

    fn tuples(&self) -> Self::Tuples<'_> {
        self.iter()
    }

    fn keys(&self) -> Self::Keys<'_> {
        ScalaMultiMap::keys(self)
    }

    fn values_of<'a>(&'a self, key: &K) -> Self::ValuesOf<'a> {
        ScalaMultiMap::values_of(self, key)
    }
}

impl<K, V> JvmFootprint for ScalaMultiMap<K, V>
where
    K: Clone + Eq + Hash + JvmSize,
    V: Clone + Eq + Hash + JvmSize,
{
    fn jvm_footprint(&self, arch: &JvmArch, policy: &LayoutPolicy, acc: &mut Accounting) {
        hamt::memo_map_jvm_with(&self.map, arch, policy, acc, &mut |k, set, acc| {
            // The outer leaf object (HashMap1: hash + key + value + kv ref)
            // plus the live Tuple2 the `map + (key -> set)` idiom stores in
            // the leaf's kv field.
            acc.structure(arch.object(3, 1, 0) + arch.object(2, 0, 0));
            acc.payload(k.jvm_size(arch));
            match set {
                // SetN: one object with N element fields.
                ScalaSet::S1(a) => {
                    acc.structure(arch.object(1, 0, 0));
                    acc.payload(a.jvm_size(arch));
                }
                ScalaSet::S2(a, b) => {
                    acc.structure(arch.object(2, 0, 0));
                    acc.payload(a.jvm_size(arch));
                    acc.payload(b.jvm_size(arch));
                }
                ScalaSet::S3(a, b, c) => {
                    acc.structure(arch.object(3, 0, 0));
                    for v in [a, b, c] {
                        acc.payload(v.jvm_size(arch));
                    }
                }
                ScalaSet::S4(a, b, c, d) => {
                    acc.structure(arch.object(4, 0, 0));
                    for v in [a, b, c, d] {
                        acc.payload(v.jvm_size(arch));
                    }
                }
                ScalaSet::Trie(s) => {
                    acc.structure(arch.object(1, 2, 0));
                    hamt::nested_memo_set_jvm(s, arch, policy, acc);
                }
            }
        });
    }
}

impl<K, V> RustFootprint for ScalaMultiMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
{
    fn rust_footprint(&self, acc: &mut Accounting) {
        hamt::memo_map_rust_with(&self.map, acc, &mut |_, set, acc| {
            if let ScalaSet::Trie(s) = set {
                hamt::nested_memo_set_rust(s, acc);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Mm = ScalaMultiMap<u32, u32>;

    #[test]
    fn small_set_ladder() {
        let mut mm = Mm::empty();
        for v in 0..4 {
            mm.insert_mut(1, v);
        }
        assert!(matches!(mm.get(&1), Some(ScalaSet::S4(..))));
        mm.insert_mut(1, 4);
        assert!(matches!(mm.get(&1), Some(ScalaSet::Trie(_))));
        assert_eq!(mm.value_count(&1), 5);
        // Shrinking the trie does not demote to SetN (Scala-faithful).
        for v in (1..5).rev() {
            assert!(mm.remove_tuple_mut(&1, &v));
        }
        assert!(matches!(mm.get(&1), Some(ScalaSet::Trie(_))));
        assert_eq!(mm.value_count(&1), 1);
        assert!(mm.remove_tuple_mut(&1, &0));
        assert!(!mm.contains_key(&1));
    }

    #[test]
    fn set_n_demotes_within_ladder() {
        let mut mm = Mm::empty();
        for v in 0..3 {
            mm.insert_mut(1, v);
        }
        assert!(matches!(mm.get(&1), Some(ScalaSet::S3(..))));
        mm.remove_tuple_mut(&1, &1);
        assert!(matches!(mm.get(&1), Some(ScalaSet::S2(..))));
        assert!(mm.contains_tuple(&1, &0) && mm.contains_tuple(&1, &2));
    }

    #[test]
    fn counts_and_iteration() {
        let mut mm = Mm::empty();
        for k in 0..100u32 {
            mm.insert_mut(k, 0);
            if k % 2 == 0 {
                mm.insert_mut(k, 1);
            }
        }
        assert_eq!(mm.key_count(), 100);
        assert_eq!(mm.tuple_count(), 150);
        let mut n = 0;
        mm.for_each_tuple(&mut |_, _| n += 1);
        assert_eq!(n, 150);
    }

    #[test]
    fn footprints() {
        let mm: Mm = (0..300u32).map(|k| (k / 3, k)).collect();
        let fp = mm.jvm_bytes(&JvmArch::COMPRESSED_OOPS, &LayoutPolicy::BASELINE);
        assert!(fp.total() > 0);
        assert!(mm.rust_bytes() > 0);
    }
}
