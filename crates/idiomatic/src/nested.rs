//! The nested-CHAMP multi-map: a CHAMP map of CHAMP sets.
//!
//! This is the "CHAMP" configuration of the paper's Table 1 (and of the
//! earlier OOPSLA'15 dominators study): sets nested as the values of a
//! polymorphic map to simulate multi-maps with basic collection types.
//! Unlike AXIOM and the Clojure protocol, singletons are **not** inlined —
//! every key pays for a nested set, which is exactly what AXIOM's `preds`
//! compression (≈4.4×) exploits on mostly-1:1 relations.

use std::hash::Hash;

use champ::{ChampMap, ChampSet};
use heapmodel::{Accounting, JvmArch, JvmFootprint, JvmSize, LayoutPolicy, RustFootprint};
use trie_common::iter::{MaybeIter, TuplesOf};
use trie_common::ops::{EditInPlace, MultiMapAlgebraOps, MultiMapMutOps, MultiMapOps};

/// A persistent multi-map as a [`ChampMap`] from keys to non-empty
/// [`ChampSet`]s.
///
/// # Examples
///
/// ```
/// use idiomatic::NestedChampMultiMap;
/// use trie_common::ops::MultiMapOps;
///
/// let mm = NestedChampMultiMap::<u32, u32>::empty().inserted(1, 10);
/// assert_eq!(mm.tuple_count(), 1);
/// assert!(mm.contains_tuple(&1, &10));
/// ```
pub struct NestedChampMultiMap<K, V> {
    map: ChampMap<K, ChampSet<V>>,
    tuples: usize,
}

impl<K, V> Clone for NestedChampMultiMap<K, V> {
    fn clone(&self) -> Self {
        NestedChampMultiMap {
            map: self.map.clone(),
            tuples: self.tuples,
        }
    }
}

impl<K, V> std::fmt::Debug for NestedChampMultiMap<K, V>
where
    K: std::fmt::Debug + Clone + Eq + Hash,
    V: std::fmt::Debug + Clone + Eq + Hash,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.map.iter()).finish()
    }
}

impl<K, V> NestedChampMultiMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
{
    /// Creates an empty multi-map.
    pub fn new() -> Self {
        NestedChampMultiMap {
            map: ChampMap::new(),
            tuples: 0,
        }
    }

    /// Borrowed view of the value set for `key`, if any.
    pub fn get(&self, key: &K) -> Option<&ChampSet<V>> {
        self.map.get(key)
    }

    /// Inserts `(key, value)` in place. Returns true if the relation grew.
    pub fn insert_mut(&mut self, key: K, value: V) -> bool {
        match self.map.get(&key) {
            None => {
                let set: ChampSet<V> = std::iter::once(value).collect();
                self.map.insert_mut(key, set);
                self.tuples += 1;
                true
            }
            Some(set) => {
                if set.contains(&value) {
                    return false;
                }
                let set = set.inserted(value);
                self.map.insert_mut(key, set);
                self.tuples += 1;
                true
            }
        }
    }

    /// Removes `(key, value)` in place. Returns true if present. Keys whose
    /// set empties are removed.
    pub fn remove_tuple_mut(&mut self, key: &K, value: &V) -> bool {
        match self.map.get(key) {
            None => false,
            Some(set) => {
                if !set.contains(value) {
                    return false;
                }
                if set.len() == 1 {
                    self.map.remove_mut(key);
                } else {
                    let set = set.removed(value);
                    self.map.insert_mut(key.clone(), set);
                }
                self.tuples -= 1;
                true
            }
        }
    }

    /// Removes every tuple for `key` in place. Returns the number removed.
    pub fn remove_key_mut(&mut self, key: &K) -> usize {
        let removed = self.map.get(key).map_or(0, ChampSet::len);
        if removed > 0 {
            self.map.remove_mut(key);
            self.tuples -= removed;
        }
        removed
    }

    /// Iterates all `(key, value)` tuples in unspecified order.
    pub fn iter(&self) -> NestedTuples<'_, K, V> {
        TuplesOf::new(self.map.iter())
    }

    /// Iterates the distinct keys in unspecified order.
    pub fn keys(&self) -> champ::map::Keys<'_, K, ChampSet<V>> {
        self.map.keys()
    }

    /// Iterates the values bound to `key` (nothing if the key is absent).
    pub fn values_of(&self, key: &K) -> MaybeIter<champ::set::Iter<'_, V>> {
        MaybeIter::of(self.map.get(key).map(ChampSet::iter))
    }
}

/// Iterator over a [`NestedChampMultiMap`]'s flattened tuples. Created by
/// [`NestedChampMultiMap::iter`].
pub type NestedTuples<'a, K, V> =
    TuplesOf<'a, K, ChampSet<V>, champ::map::Iter<'a, K, ChampSet<V>>>;

impl<'a, K, V> IntoIterator for &'a NestedChampMultiMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
{
    type Item = (&'a K, &'a V);
    type IntoIter = NestedTuples<'a, K, V>;
    fn into_iter(self) -> NestedTuples<'a, K, V> {
        self.iter()
    }
}

impl<K, V> Default for NestedChampMultiMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
{
    fn default() -> Self {
        NestedChampMultiMap::new()
    }
}

impl<K, V> FromIterator<(K, V)> for NestedChampMultiMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
{
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        trie_common::ops::from_iter_via(iter)
    }
}

impl<K, V> Extend<(K, V)> for NestedChampMultiMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
{
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        trie_common::ops::extend_via(self, iter);
    }
}

impl<K, V> EditInPlace<(K, V)> for NestedChampMultiMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
{
    fn edit_insert(&mut self, (key, value): (K, V)) -> bool {
        self.insert_mut(key, value)
    }
}

impl<K, V> MultiMapMutOps<K, V> for NestedChampMultiMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
{
    fn insert_mut(&mut self, key: K, value: V) -> bool {
        NestedChampMultiMap::insert_mut(self, key, value)
    }

    fn remove_tuple_mut(&mut self, key: &K, value: &V) -> bool {
        NestedChampMultiMap::remove_tuple_mut(self, key, value)
    }

    fn remove_key_mut(&mut self, key: &K) -> usize {
        NestedChampMultiMap::remove_key_mut(self, key)
    }
}

// The idiomatic emulation layers on a map of sets, so the tuple algebra
// rides the element-wise fallback defaults.
impl<K, V> MultiMapAlgebraOps<K, V> for NestedChampMultiMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
{
}

impl<K, V> MultiMapOps<K, V> for NestedChampMultiMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
{
    const NAME: &'static str = "nested-champ-multimap";

    type Tuples<'a>
        = NestedTuples<'a, K, V>
    where
        Self: 'a,
        K: 'a,
        V: 'a;
    type Keys<'a>
        = champ::map::Keys<'a, K, ChampSet<V>>
    where
        Self: 'a,
        K: 'a,
        V: 'a;
    type ValuesOf<'a>
        = MaybeIter<champ::set::Iter<'a, V>>
    where
        Self: 'a,
        K: 'a,
        V: 'a;

    fn empty() -> Self {
        NestedChampMultiMap::new()
    }

    fn tuple_count(&self) -> usize {
        self.tuples
    }

    fn key_count(&self) -> usize {
        self.map.len()
    }

    fn contains_key(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    fn contains_tuple(&self, key: &K, value: &V) -> bool {
        self.map.get(key).is_some_and(|s| s.contains(value))
    }

    fn value_count(&self, key: &K) -> usize {
        self.map.get(key).map_or(0, ChampSet::len)
    }

    fn inserted(&self, key: K, value: V) -> Self {
        let mut next = self.clone();
        next.insert_mut(key, value);
        next
    }

    fn tuple_removed(&self, key: &K, value: &V) -> Self {
        let mut next = self.clone();
        next.remove_tuple_mut(key, value);
        next
    }

    fn key_removed(&self, key: &K) -> Self {
        let mut next = self.clone();
        next.remove_key_mut(key);
        next
    }

    fn tuples(&self) -> Self::Tuples<'_> {
        self.iter()
    }

    fn keys(&self) -> Self::Keys<'_> {
        NestedChampMultiMap::keys(self)
    }

    fn values_of<'a>(&'a self, key: &K) -> Self::ValuesOf<'a> {
        NestedChampMultiMap::values_of(self, key)
    }
}

impl<K, V> JvmFootprint for NestedChampMultiMap<K, V>
where
    K: Clone + Eq + Hash + JvmSize,
    V: Clone + Eq + Hash + JvmSize,
{
    fn jvm_footprint(&self, arch: &JvmArch, policy: &LayoutPolicy, acc: &mut Accounting) {
        champ::champ_map_jvm_with(&self.map, arch, policy, acc, &mut |k, set, acc| {
            acc.payload(k.jvm_size(arch));
            // Nested set wrapper (size + cached hash + root ref).
            acc.structure(arch.object(1, 2, 0));
            champ::nested_set_jvm(set, arch, policy, acc);
        });
    }
}

impl<K, V> RustFootprint for NestedChampMultiMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
{
    fn rust_footprint(&self, acc: &mut Accounting) {
        champ::champ_map_rust_with(&self.map, acc, &mut |_, set, acc| {
            champ::nested_set_rust(set, acc);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Mm = NestedChampMultiMap<u32, u32>;

    #[test]
    fn singletons_still_pay_for_sets() {
        let mm = Mm::empty().inserted(1, 10);
        assert_eq!(mm.get(&1).map(ChampSet::len), Some(1));
        assert_eq!(mm.tuple_count(), 1);
        assert_eq!(mm.key_count(), 1);
    }

    #[test]
    fn tuple_lifecycle() {
        let mut mm = Mm::empty();
        assert!(mm.insert_mut(1, 10));
        assert!(mm.insert_mut(1, 11));
        assert!(!mm.insert_mut(1, 10));
        assert_eq!(mm.tuple_count(), 2);
        assert!(mm.remove_tuple_mut(&1, &10));
        assert!(!mm.remove_tuple_mut(&1, &10));
        assert_eq!(mm.tuple_count(), 1);
        assert!(mm.remove_tuple_mut(&1, &11));
        assert!(!mm.contains_key(&1));
    }

    #[test]
    fn nested_footprint_exceeds_flat_axiom_on_singletons() {
        // The whole point of AXIOM's 1:1 inlining: map-of-sets pays a nested
        // set per key even when all mappings are 1:1.
        use axiom::AxiomMultiMap;
        let data: Vec<(u32, u32)> = (0..256).map(|k| (k, k)).collect();
        let nested: Mm = data.iter().copied().collect();
        let flat: AxiomMultiMap<u32, u32> = data.into_iter().collect();
        let arch = JvmArch::COMPRESSED_OOPS;
        let n = nested.jvm_bytes(&arch, &LayoutPolicy::BASELINE);
        let a = flat.jvm_bytes(&arch, &LayoutPolicy::BASELINE);
        assert!(
            n.structure > a.structure,
            "nested {} must exceed axiom {}",
            n.structure,
            a.structure
        );
    }
}
