//! **Idiomatic multi-map baselines** — the competitors AXIOM is measured
//! against in the paper's evaluation.
//!
//! Neither Clojure nor Scala ships a native immutable multi-map; both suggest
//! hoisting a polymorphic map of nested sets. This crate reproduces those
//! idioms (plus the map-of-CHAMP-sets configuration of Table 1):
//!
//! | type | paper role | substrate |
//! |---|---|---|
//! | [`ClojureMultiMap`] | Figure 4 baseline | plain HAMT; values dynamically either a bare value or a nested set |
//! | [`ScalaMultiMap`] | Figure 5 baseline | hash-memoizing HAMT; values always sets, `Set1..Set4` specialized |
//! | [`NestedChampMultiMap`] | Table 1 "CHAMP" column | CHAMP map of CHAMP sets, no singleton inlining |
//!
//! All three implement [`trie_common::ops::MultiMapOps`] (iterator-first,
//! with inherent `iter()`/`keys()`/`values_of()` and `IntoIterator`
//! support), the transient builder protocol, the heap-model traits, and
//! `FromIterator`/`Extend`, so the benchmark harness and the dominators
//! case study treat them interchangeably with the AXIOM multi-maps.

#![warn(missing_docs)]

mod clojure;
mod nested;
mod scala;
mod snapshot;

pub use clojure::{ClojureMultiMap, ClojureTuples, ClojureVal, ClojureValIter};
pub use nested::{NestedChampMultiMap, NestedTuples};
pub use scala::{ScalaMultiMap, ScalaSet, ScalaSetIter, ScalaTuples};
