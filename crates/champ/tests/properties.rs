//! Property-based tests for the CHAMP map and set: oracle agreement,
//! canonical invariants under arbitrary op sequences, equality laws and
//! persistence — including collision-heavy key distributions.

use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};

use champ::{ChampMap, ChampSet};
use proptest::prelude::*;

/// Key with only 6 effective hash bits: dense collisions and deep chains.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct NarrowKey(u16);

impl Hash for NarrowKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u32((self.0 & 0x3f) as u32);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn map_matches_btreemap(ops in prop::collection::vec(
        (any::<u16>(), any::<u16>(), any::<bool>()), 0..400))
    {
        let mut model = BTreeMap::new();
        let mut map = ChampMap::<u16, u16>::new();
        for (k, v, remove) in ops {
            let k = k % 128;
            if remove {
                let had = model.remove(&k).is_some();
                prop_assert_eq!(map.remove_mut(&k), had);
            } else {
                let fresh = model.insert(k, v).is_none();
                prop_assert_eq!(map.insert_mut(k, v), fresh);
            }
            prop_assert_eq!(map.len(), model.len());
        }
        map.assert_invariants();
        for (k, v) in &model {
            prop_assert_eq!(map.get(k), Some(v));
        }
        let collected: BTreeMap<u16, u16> = map.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(collected, model);
    }

    #[test]
    fn map_with_narrow_hashes_stays_canonical(ops in prop::collection::vec(
        (any::<u16>(), any::<bool>()), 0..250))
    {
        let mut model = BTreeMap::new();
        let mut map = ChampMap::<NarrowKey, u16>::new();
        for (k, remove) in ops {
            let key = NarrowKey(k % 200);
            if remove {
                model.remove(&key);
                map.remove_mut(&key);
            } else {
                model.insert(key.clone(), k);
                map.insert_mut(key, k);
            }
            map.assert_invariants();
        }
        prop_assert_eq!(map.len(), model.len());
        for (k, v) in &model {
            prop_assert_eq!(map.get(k), Some(v));
        }
    }

    #[test]
    fn set_union_is_commutative_and_idempotent(
        a in prop::collection::btree_set(any::<u16>(), 0..120),
        b in prop::collection::btree_set(any::<u16>(), 0..120),
    ) {
        let sa: ChampSet<u16> = a.iter().copied().collect();
        let sb: ChampSet<u16> = b.iter().copied().collect();
        prop_assert_eq!(sa.union(&sb), sb.union(&sa));
        prop_assert_eq!(sa.union(&sa), sa.clone());
        prop_assert_eq!(sa.intersect(&sa), sa.clone());
        prop_assert!(sa.difference(&sa).is_empty());
    }

    #[test]
    fn equality_ignores_insertion_order(mut entries in prop::collection::vec(
        (any::<u16>(), any::<u16>()), 0..150))
    {
        let forward: ChampMap<u16, u16> = entries.iter().copied().collect();
        entries.reverse();
        let backward: ChampMap<u16, u16> = entries.iter().copied().collect();
        // Later inserts win on duplicate keys, so rebuild deterministically:
        // deduplicate keeping the *last* binding of the original order.
        let mut dedup: BTreeMap<u16, u16> = BTreeMap::new();
        for (k, v) in entries.iter().rev() {
            dedup.insert(*k, *v);
        }
        let canonical: ChampMap<u16, u16> = dedup.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(&forward, &canonical);
        let _ = backward; // shapes may differ from duplicates; content law above
    }

    #[test]
    fn persistence_spot_checks(entries in prop::collection::btree_map(
        any::<u16>(), any::<u16>(), 1..150))
    {
        let full: ChampMap<u16, u16> = entries.iter().map(|(k, v)| (*k, *v)).collect();
        let victim = *entries.keys().next().unwrap();
        let removed = full.removed(&victim);
        prop_assert!(full.contains_key(&victim));
        prop_assert!(!removed.contains_key(&victim));
        prop_assert_eq!(removed.len(), full.len() - 1);
        removed.assert_invariants();
    }

    #[test]
    fn set_roundtrip_with_narrow_hashes(elems in prop::collection::vec(any::<u16>(), 0..200)) {
        let mut model = BTreeSet::new();
        let mut set = ChampSet::<NarrowKey>::new();
        for e in &elems {
            let k = NarrowKey(e % 100);
            model.insert(k.clone());
            set.insert_mut(k);
        }
        set.assert_invariants();
        prop_assert_eq!(set.len(), model.len());
        for k in &model {
            prop_assert!(set.contains(k));
            set = set.removed(k);
        }
        prop_assert!(set.is_empty());
    }
}
