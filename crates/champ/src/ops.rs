//! Harness-facing trait implementations ([`trie_common::ops`]).

use std::hash::Hash;

use trie_common::ops::{MapOps, SetOps};

use crate::{ChampMap, ChampSet};

impl<K, V> MapOps<K, V> for ChampMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + PartialEq,
{
    const NAME: &'static str = "champ-map";

    fn empty() -> Self {
        ChampMap::new()
    }

    fn len(&self) -> usize {
        ChampMap::len(self)
    }

    fn get(&self, key: &K) -> Option<&V> {
        ChampMap::get(self, key)
    }

    fn inserted(&self, key: K, value: V) -> Self {
        ChampMap::inserted(self, key, value)
    }

    fn removed(&self, key: &K) -> Self {
        ChampMap::removed(self, key)
    }

    fn for_each_entry(&self, f: &mut dyn FnMut(&K, &V)) {
        for (k, v) in self.iter() {
            f(k, v);
        }
    }

    fn for_each_key(&self, f: &mut dyn FnMut(&K)) {
        for k in self.keys() {
            f(k);
        }
    }
}

impl<T> SetOps<T> for ChampSet<T>
where
    T: Clone + Eq + Hash,
{
    const NAME: &'static str = "champ-set";

    fn empty() -> Self {
        ChampSet::new()
    }

    fn len(&self) -> usize {
        ChampSet::len(self)
    }

    fn contains(&self, value: &T) -> bool {
        ChampSet::contains(self, value)
    }

    fn inserted(&self, value: T) -> Self {
        ChampSet::inserted(self, value)
    }

    fn removed(&self, value: &T) -> Self {
        ChampSet::removed(self, value)
    }

    fn for_each(&self, f: &mut dyn FnMut(&T)) {
        for v in self.iter() {
            f(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traits_are_wired() {
        let m = <ChampMap<u32, u32> as MapOps<u32, u32>>::empty().inserted(1, 2);
        assert_eq!(MapOps::get(&m, &1), Some(&2));
        let s = <ChampSet<u32> as SetOps<u32>>::empty().inserted(3);
        assert!(SetOps::contains(&s, &3));
    }
}
