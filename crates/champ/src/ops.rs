//! Harness-facing trait implementations ([`trie_common::ops`]).
//!
//! Thin forwarding shims: the associated iterator types are the inherent
//! iterators of [`ChampMap`]/[`ChampSet`], and the transient builder rides
//! the `Rc`-uniqueness `insert_mut` path via [`EditInPlace`].

use std::hash::Hash;

use trie_common::ops::{
    EditInPlace, MapDiff, MapMergeOps, MapMutOps, MapOps, SetAlgebraOps, SetDiff, SetMutOps, SetOps,
};

use crate::{map, set, ChampMap, ChampSet};

impl<K, V> MapOps<K, V> for ChampMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + PartialEq,
{
    const NAME: &'static str = "champ-map";

    type Entries<'a>
        = map::Iter<'a, K, V>
    where
        Self: 'a,
        K: 'a,
        V: 'a;
    type Keys<'a>
        = map::Keys<'a, K, V>
    where
        Self: 'a,
        K: 'a,
        V: 'a;
    type Values<'a>
        = map::Values<'a, K, V>
    where
        Self: 'a,
        K: 'a,
        V: 'a;

    fn empty() -> Self {
        ChampMap::new()
    }

    fn len(&self) -> usize {
        ChampMap::len(self)
    }

    fn get(&self, key: &K) -> Option<&V> {
        ChampMap::get(self, key)
    }

    fn inserted(&self, key: K, value: V) -> Self {
        ChampMap::inserted(self, key, value)
    }

    fn removed(&self, key: &K) -> Self {
        ChampMap::removed(self, key)
    }

    fn entries(&self) -> Self::Entries<'_> {
        ChampMap::iter(self)
    }

    fn keys(&self) -> Self::Keys<'_> {
        ChampMap::keys(self)
    }

    fn values(&self) -> Self::Values<'_> {
        ChampMap::values(self)
    }
}

impl<K, V> MapMergeOps<K, V> for ChampMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + PartialEq,
{
    fn diff(&self, other: &Self) -> MapDiff<K, V> {
        ChampMap::diff(self, other)
    }
}

impl<K, V> EditInPlace<(K, V)> for ChampMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + PartialEq,
{
    fn edit_insert(&mut self, (key, value): (K, V)) -> bool {
        self.insert_mut(key, value)
    }
}

impl<K, V> MapMutOps<K, V> for ChampMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + PartialEq,
{
    fn insert_mut(&mut self, key: K, value: V) -> bool {
        ChampMap::insert_mut(self, key, value)
    }

    fn remove_mut(&mut self, key: &K) -> bool {
        ChampMap::remove_mut(self, key)
    }
}

impl<T> SetOps<T> for ChampSet<T>
where
    T: Clone + Eq + Hash,
{
    const NAME: &'static str = "champ-set";

    type Elems<'a>
        = set::Iter<'a, T>
    where
        Self: 'a,
        T: 'a;

    fn empty() -> Self {
        ChampSet::new()
    }

    fn len(&self) -> usize {
        ChampSet::len(self)
    }

    fn contains(&self, value: &T) -> bool {
        ChampSet::contains(self, value)
    }

    fn inserted(&self, value: T) -> Self {
        ChampSet::inserted(self, value)
    }

    fn removed(&self, value: &T) -> Self {
        ChampSet::removed(self, value)
    }

    fn iter(&self) -> Self::Elems<'_> {
        ChampSet::iter(self)
    }
}

impl<T> SetAlgebraOps<T> for ChampSet<T>
where
    T: Clone + Eq + Hash,
{
    fn diff(&self, other: &Self) -> SetDiff<T> {
        ChampSet::diff(self, other)
    }

    fn union(&self, other: &Self) -> Self {
        ChampSet::union(self, other)
    }

    fn intersect(&self, other: &Self) -> Self {
        ChampSet::intersect(self, other)
    }

    fn difference(&self, other: &Self) -> Self {
        ChampSet::difference(self, other)
    }
}

impl<T> SetMutOps<T> for ChampSet<T>
where
    T: Clone + Eq + Hash,
{
    fn insert_mut(&mut self, value: T) -> bool {
        ChampSet::insert_mut(self, value)
    }

    fn remove_mut(&mut self, value: &T) -> bool {
        ChampSet::remove_mut(self, value)
    }
}

impl<T> EditInPlace<T> for ChampSet<T>
where
    T: Clone + Eq + Hash,
{
    fn edit_insert(&mut self, value: T) -> bool {
        self.insert_mut(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trie_common::ops::{Builder, TransientOps};

    #[test]
    fn traits_are_wired() {
        let m = <ChampMap<u32, u32> as MapOps<u32, u32>>::empty().inserted(1, 2);
        assert_eq!(MapOps::get(&m, &1), Some(&2));
        let s = <ChampSet<u32> as SetOps<u32>>::empty().inserted(3);
        assert!(SetOps::contains(&s, &3));
    }

    #[test]
    fn trait_iterators_forward_to_inherent() {
        let m: ChampMap<u32, u32> = (0..64).map(|i| (i, i * 2)).collect();
        let mut entries: Vec<(u32, u32)> = MapOps::entries(&m).map(|(k, v)| (*k, *v)).collect();
        entries.sort_unstable();
        assert_eq!(entries, (0..64).map(|i| (i, i * 2)).collect::<Vec<_>>());
        assert_eq!(MapOps::keys(&m).count(), 64);
        assert_eq!(MapOps::values(&m).count(), 64);

        let s: ChampSet<u32> = (0..32).collect();
        assert_eq!(SetOps::iter(&s).count(), 32);
    }

    #[test]
    fn transient_builder_roundtrip() {
        let mut t = ChampMap::<u32, u32>::transient_builder();
        assert_eq!(t.insert_all_mut((0..100).map(|i| (i, i))), 100);
        assert!(!t.insert_mut((0, 9))); // replacement, no growth
        let m = t.build();
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&0), Some(&9));

        // persistent → transient → freeze keeps old handles intact.
        let old = m.clone();
        let grown = m.bulk_inserted([(200, 1), (201, 2)]);
        assert_eq!(grown.len(), 102);
        assert_eq!(old.len(), 100);
    }
}
