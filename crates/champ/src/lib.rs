//! **CHAMP** — Compressed Hash-Array Mapped Prefix-trees (OOPSLA 2015), the
//! special-purpose baseline of the AXIOM paper's §5 and §6.
//!
//! CHAMP nodes encode their three branch states (`EMPTY`, payload, sub-trie)
//! with two disjoint 32-bit bitmaps and keep content permuted — payload
//! entries first, sub-tries after — and canonical under deletion. AXIOM
//! strictly generalizes this encoding (the paper's §3.1); measuring both
//! isolates the cost of that generalization (Figure 6) and the parity of the
//! dominators case study (Table 1).
//!
//! # Examples
//!
//! ```
//! use champ::{ChampMap, ChampSet};
//!
//! let m: ChampMap<u32, u32> = (0..8).map(|i| (i, i * i)).collect();
//! assert_eq!(m.get(&3), Some(&9));
//!
//! let s: ChampSet<u32> = m.values().copied().collect();
//! assert!(s.contains(&49));
//! ```

#![warn(missing_docs)]

pub mod map;
pub mod set;

mod heap;
mod ops;
mod snapshot;

pub use heap::{
    champ_map_jvm_with, champ_map_rust_with, nested_set_jvm, nested_set_rust, EntryAccount,
};
pub use map::ChampMap;
pub use set::ChampSet;
