//! The CHAMP persistent hash map (Steindorfer & Vinju, OOPSLA 2015).
//!
//! CHAMP encodes each trie node's three branch states with **two** 32-bit
//! bitmaps: `datamap` marks branches holding an inlined key/value pair,
//! `nodemap` marks branches holding a sub-trie, and absence from both means
//! `EMPTY`. Content is permuted — all payload entries first, then all
//! sub-tries — and deletion canonicalizes (collapsed sub-tries are inlined
//! into parents), which is what distinguishes CHAMP from a plain HAMT.
//!
//! This is the special-purpose baseline AXIOM is measured against in the
//! paper's §5 (Figure 6) and §6 (Table 1): AXIOM generalizes this encoding
//! (`datamap` ≡ `CAT1`, `nodemap` ≡ `NODE` in 2-bit tags).
//!
//! # Examples
//!
//! ```
//! use champ::ChampMap;
//!
//! let m = ChampMap::<u32, &str>::new().inserted(1, "one");
//! assert_eq!(m.get(&1), Some(&"one"));
//! assert!(m.removed(&1).is_empty());
//! assert_eq!(m.len(), 1); // persistent
//! ```

use std::borrow::Borrow;
use std::hash::Hash;
use std::sync::Arc;

use trie_common::bits::{bit_pos, hash_exhausted, index_in, mask, next_shift};
use trie_common::hash::hash32;
use trie_common::slices::{
    inserted_at as slice_inserted, inserted_at_owned, migrate_map, migrated as slice_migrated,
    removed_at as slice_removed, removed_at_owned, replaced_at as slice_replaced,
};

/// One physical slot: an inlined entry or a sub-trie.
#[derive(Debug, Clone)]
pub(crate) enum Slot<K, V> {
    Entry(K, V),
    Child(Arc<Node<K, V>>),
}

/// A CHAMP node: two bitmaps plus dense permuted slots
/// (`[entries… | children…]`).
#[derive(Debug, Clone)]
pub(crate) struct BitmapNode<K, V> {
    pub(crate) datamap: u32,
    pub(crate) nodemap: u32,
    pub(crate) slots: Box<[Slot<K, V>]>,
}

impl<K, V> BitmapNode<K, V> {
    #[inline]
    pub(crate) fn payload_arity(&self) -> usize {
        self.datamap.count_ones() as usize
    }

    #[inline]
    pub(crate) fn node_arity(&self) -> usize {
        self.nodemap.count_ones() as usize
    }

    /// Absolute slot index of the payload entry for `bit`.
    #[inline]
    fn data_index(&self, bit: u32) -> usize {
        index_in(self.datamap, bit)
    }

    /// Absolute slot index of the sub-trie for `bit`.
    #[inline]
    fn node_index(&self, bit: u32) -> usize {
        self.payload_arity() + index_in(self.nodemap, bit)
    }
}

/// Hash-collision overflow node.
#[derive(Debug, Clone)]
pub(crate) struct CollisionNode<K, V> {
    pub(crate) hash: u32,
    pub(crate) entries: Vec<(K, V)>,
}

/// A trie node.
#[derive(Debug, Clone)]
pub(crate) enum Node<K, V> {
    Bitmap(BitmapNode<K, V>),
    Collision(CollisionNode<K, V>),
}

pub(crate) enum Inserted<K, V> {
    Unchanged,
    Replaced(Node<K, V>),
    Added(Node<K, V>),
}

pub(crate) enum Removed<K, V> {
    NotFound,
    Node(Node<K, V>),
    Single(K, V),
}

/// In-place insertion outcome (the node is edited where it stands).
pub(crate) enum EditInserted {
    Unchanged,
    Replaced,
    Added,
}

/// In-place removal outcome: edited nodes stay where they are, so only the
/// canonicalization payload travels upward.
pub(crate) enum EditRemoved<K, V> {
    NotFound,
    Removed,
    /// The sub-tree collapsed to one entry (left in a consumed state; the
    /// parent drops it and inlines the survivor).
    Single(K, V),
}

impl<K: Clone + Eq + Hash, V: Clone + PartialEq> Node<K, V> {
    fn empty() -> Node<K, V> {
        Node::Bitmap(BitmapNode {
            datamap: 0,
            nodemap: 0,
            slots: Box::new([]),
        })
    }

    fn pair(h1: u32, k1: K, v1: V, h2: u32, k2: K, v2: V, shift: u32) -> Node<K, V> {
        if hash_exhausted(shift) {
            debug_assert_eq!(h1, h2);
            return Node::Collision(CollisionNode {
                hash: h1,
                entries: vec![(k1, v1), (k2, v2)],
            });
        }
        let m1 = mask(h1, shift);
        let m2 = mask(h2, shift);
        if m1 == m2 {
            let child = Node::pair(h1, k1, v1, h2, k2, v2, next_shift(shift));
            Node::Bitmap(BitmapNode {
                datamap: 0,
                nodemap: bit_pos(m1),
                slots: Box::new([Slot::Child(Arc::new(child))]),
            })
        } else {
            let datamap = bit_pos(m1) | bit_pos(m2);
            let slots: Box<[Slot<K, V>]> = if m1 < m2 {
                Box::new([Slot::Entry(k1, v1), Slot::Entry(k2, v2)])
            } else {
                Box::new([Slot::Entry(k2, v2), Slot::Entry(k1, v1)])
            };
            Node::Bitmap(BitmapNode {
                datamap,
                nodemap: 0,
                slots,
            })
        }
    }

    fn get<Q>(&self, hash: u32, shift: u32, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Eq + ?Sized,
    {
        match self {
            Node::Collision(c) => c
                .entries
                .iter()
                .find(|(k, _)| k.borrow() == key)
                .map(|(_, v)| v),
            Node::Bitmap(b) => {
                let bit = bit_pos(mask(hash, shift));
                if b.datamap & bit != 0 {
                    match &b.slots[b.data_index(bit)] {
                        Slot::Entry(k, v) if k.borrow() == key => Some(v),
                        Slot::Entry(..) => None,
                        Slot::Child(_) => unreachable!("datamap says entry"),
                    }
                } else if b.nodemap & bit != 0 {
                    match &b.slots[b.node_index(bit)] {
                        Slot::Child(child) => child.get(hash, next_shift(shift), key),
                        Slot::Entry(..) => unreachable!("nodemap says child"),
                    }
                } else {
                    None
                }
            }
        }
    }

    fn inserted(&self, hash: u32, shift: u32, key: &K, value: &V) -> Inserted<K, V> {
        match self {
            Node::Collision(c) => {
                debug_assert_eq!(c.hash, hash);
                match c.entries.iter().position(|(k, _)| k == key) {
                    Some(pos) => {
                        if c.entries[pos].1 == *value {
                            return Inserted::Unchanged;
                        }
                        let mut entries = c.entries.clone();
                        entries[pos].1 = value.clone();
                        Inserted::Replaced(Node::Collision(CollisionNode {
                            hash: c.hash,
                            entries,
                        }))
                    }
                    None => {
                        let mut entries = c.entries.clone();
                        entries.push((key.clone(), value.clone()));
                        Inserted::Added(Node::Collision(CollisionNode {
                            hash: c.hash,
                            entries,
                        }))
                    }
                }
            }
            Node::Bitmap(b) => {
                let m = mask(hash, shift);
                let bit = bit_pos(m);
                if b.datamap & bit != 0 {
                    let idx = b.data_index(bit);
                    let (ek, ev) = match &b.slots[idx] {
                        Slot::Entry(k, v) => (k, v),
                        Slot::Child(_) => unreachable!("datamap says entry"),
                    };
                    if ek == key {
                        if ev == value {
                            return Inserted::Unchanged;
                        }
                        return Inserted::Replaced(Node::Bitmap(BitmapNode {
                            datamap: b.datamap,
                            nodemap: b.nodemap,
                            slots: slice_replaced(
                                &b.slots,
                                idx,
                                Slot::Entry(key.clone(), value.clone()),
                            ),
                        }));
                    }
                    // Entry migrates from the data group to the node group.
                    let child = Node::pair(
                        hash32(ek),
                        ek.clone(),
                        ev.clone(),
                        hash,
                        key.clone(),
                        value.clone(),
                        next_shift(shift),
                    );
                    let datamap = b.datamap & !bit;
                    let nodemap = b.nodemap | bit;
                    let to = (datamap.count_ones() as usize) + index_in(nodemap, bit);
                    Inserted::Added(Node::Bitmap(BitmapNode {
                        datamap,
                        nodemap,
                        slots: slice_migrated(&b.slots, idx, to, Slot::Child(Arc::new(child))),
                    }))
                } else if b.nodemap & bit != 0 {
                    let idx = b.node_index(bit);
                    let child = match &b.slots[idx] {
                        Slot::Child(c) => c,
                        Slot::Entry(..) => unreachable!("nodemap says child"),
                    };
                    let rebuild = |n: Node<K, V>| {
                        Node::Bitmap(BitmapNode {
                            datamap: b.datamap,
                            nodemap: b.nodemap,
                            slots: slice_replaced(&b.slots, idx, Slot::Child(Arc::new(n))),
                        })
                    };
                    match child.inserted(hash, next_shift(shift), key, value) {
                        Inserted::Unchanged => Inserted::Unchanged,
                        Inserted::Replaced(n) => Inserted::Replaced(rebuild(n)),
                        Inserted::Added(n) => Inserted::Added(rebuild(n)),
                    }
                } else {
                    let datamap = b.datamap | bit;
                    let idx = index_in(datamap, bit);
                    Inserted::Added(Node::Bitmap(BitmapNode {
                        datamap,
                        nodemap: b.nodemap,
                        slots: slice_inserted(
                            &b.slots,
                            idx,
                            Slot::Entry(key.clone(), value.clone()),
                        ),
                    }))
                }
            }
        }
    }

    /// In-place insert driven by `Arc` uniqueness: a uniquely-owned node is
    /// edited directly (slots moved, never cloned), a shared node falls back
    /// to the persistent path copy for its whole subtree. This is what makes
    /// the transient builder's bulk `insert_mut` batches O(1)-amortized in
    /// allocations instead of one path copy per tuple.
    fn insert_in_place(
        this: &mut Arc<Node<K, V>>,
        hash: u32,
        shift: u32,
        key: K,
        value: V,
    ) -> EditInserted {
        match Arc::get_mut(this) {
            Some(Node::Collision(c)) => {
                debug_assert_eq!(c.hash, hash);
                match c.entries.iter().position(|(k, _)| *k == key) {
                    Some(pos) => {
                        if c.entries[pos].1 == value {
                            return EditInserted::Unchanged;
                        }
                        c.entries[pos].1 = value;
                        EditInserted::Replaced
                    }
                    None => {
                        c.entries.push((key, value));
                        EditInserted::Added
                    }
                }
            }
            Some(Node::Bitmap(b)) => {
                let m = mask(hash, shift);
                let bit = bit_pos(m);
                if b.datamap & bit != 0 {
                    let idx = b.data_index(bit);
                    let (ek, ev) = match &b.slots[idx] {
                        Slot::Entry(k, v) => (k, v),
                        Slot::Child(_) => unreachable!("datamap says entry"),
                    };
                    if *ek == key {
                        if *ev == value {
                            return EditInserted::Unchanged;
                        }
                        // Replace in place: zero allocations, zero clones.
                        b.slots[idx] = Slot::Entry(key, value);
                        return EditInserted::Replaced;
                    }
                    // The entry migrates data group → node group in place.
                    let existing_hash = hash32(ek);
                    let datamap = b.datamap & !bit;
                    let nodemap = b.nodemap | bit;
                    let to = (datamap.count_ones() as usize) + index_in(nodemap, bit);
                    b.datamap = datamap;
                    b.nodemap = nodemap;
                    migrate_map(&mut b.slots, idx, to, |slot| {
                        let Slot::Entry(ek, ev) = slot else {
                            unreachable!("datamap says entry")
                        };
                        Slot::Child(Arc::new(Node::pair(
                            existing_hash,
                            ek,
                            ev,
                            hash,
                            key,
                            value,
                            next_shift(shift),
                        )))
                    });
                    EditInserted::Added
                } else if b.nodemap & bit != 0 {
                    let idx = b.node_index(bit);
                    let Slot::Child(child) = &mut b.slots[idx] else {
                        unreachable!("nodemap says child")
                    };
                    Node::insert_in_place(child, hash, next_shift(shift), key, value)
                } else {
                    b.datamap |= bit;
                    let idx = index_in(b.datamap, bit);
                    b.slots = inserted_at_owned(
                        std::mem::take(&mut b.slots),
                        idx,
                        Slot::Entry(key, value),
                    );
                    EditInserted::Added
                }
            }
            None => match this.inserted(hash, shift, &key, &value) {
                Inserted::Unchanged => EditInserted::Unchanged,
                Inserted::Replaced(n) => {
                    *this = Arc::new(n);
                    EditInserted::Replaced
                }
                Inserted::Added(n) => {
                    *this = Arc::new(n);
                    EditInserted::Added
                }
            },
        }
    }

    /// In-place removal (same `Arc`-uniqueness discipline as
    /// [`Node::insert_in_place`]), canonicalizing exactly like
    /// [`Node::removed`]: uniquely-owned nodes are edited where they stand,
    /// shared subtrees fall back to the persistent path copy.
    fn remove_in_place<Q>(
        this: &mut Arc<Node<K, V>>,
        hash: u32,
        shift: u32,
        key: &Q,
    ) -> EditRemoved<K, V>
    where
        K: Borrow<Q>,
        Q: Eq + ?Sized,
    {
        match Arc::get_mut(this) {
            Some(Node::Collision(c)) => {
                let Some(pos) = c.entries.iter().position(|(k, _)| k.borrow() == key) else {
                    return EditRemoved::NotFound;
                };
                if c.entries.len() == 2 {
                    let (k, v) = c.entries.swap_remove(1 - pos);
                    return EditRemoved::Single(k, v);
                }
                c.entries.swap_remove(pos);
                EditRemoved::Removed
            }
            Some(Node::Bitmap(b)) => {
                let m = mask(hash, shift);
                let bit = bit_pos(m);
                if b.datamap & bit != 0 {
                    let idx = b.data_index(bit);
                    let matches = match &b.slots[idx] {
                        Slot::Entry(k, _) => k.borrow() == key,
                        Slot::Child(_) => unreachable!("datamap says entry"),
                    };
                    if !matches {
                        return EditRemoved::NotFound;
                    }
                    let datamap = b.datamap & !bit;
                    if shift > 0 && datamap.count_ones() == 1 && b.nodemap == 0 {
                        // The node held exactly two entries; hand the
                        // survivor (moved out) to the parent for inlining.
                        debug_assert_eq!(b.slots.len(), 2);
                        let mut slots = std::mem::take(&mut b.slots).into_vec();
                        let Slot::Entry(k, v) = slots.swap_remove(1 - idx) else {
                            unreachable!("both slots are payload")
                        };
                        return EditRemoved::Single(k, v);
                    }
                    b.datamap = datamap;
                    b.slots = removed_at_owned(std::mem::take(&mut b.slots), idx);
                    EditRemoved::Removed
                } else if b.nodemap & bit != 0 {
                    let idx = b.node_index(bit);
                    let Slot::Child(child) = &mut b.slots[idx] else {
                        unreachable!("nodemap says child")
                    };
                    match Node::remove_in_place(child, hash, next_shift(shift), key) {
                        EditRemoved::NotFound => EditRemoved::NotFound,
                        EditRemoved::Removed => EditRemoved::Removed,
                        EditRemoved::Single(k, v) => {
                            if shift > 0 && b.datamap == 0 && b.nodemap.count_ones() == 1 {
                                // A pure chain node dissolves: keep
                                // propagating the survivor upward.
                                return EditRemoved::Single(k, v);
                            }
                            // Inline the survivor: the slot migrates node
                            // group → data group in place, dropping the
                            // collapsed child.
                            let datamap = b.datamap | bit;
                            let nodemap = b.nodemap & !bit;
                            let to = index_in(datamap, bit);
                            b.datamap = datamap;
                            b.nodemap = nodemap;
                            migrate_map(&mut b.slots, idx, to, |_child| Slot::Entry(k, v));
                            EditRemoved::Removed
                        }
                    }
                } else {
                    EditRemoved::NotFound
                }
            }
            None => match this.removed(hash, shift, key) {
                Removed::NotFound => EditRemoved::NotFound,
                Removed::Node(n) => {
                    *this = Arc::new(n);
                    EditRemoved::Removed
                }
                Removed::Single(k, v) => EditRemoved::Single(k, v),
            },
        }
    }

    fn removed<Q>(&self, hash: u32, shift: u32, key: &Q) -> Removed<K, V>
    where
        K: Borrow<Q>,
        Q: Eq + ?Sized,
    {
        match self {
            Node::Collision(c) => {
                let Some(pos) = c.entries.iter().position(|(k, _)| k.borrow() == key) else {
                    return Removed::NotFound;
                };
                if c.entries.len() == 2 {
                    let (k, v) = c.entries[1 - pos].clone();
                    return Removed::Single(k, v);
                }
                let mut entries = c.entries.clone();
                entries.remove(pos);
                Removed::Node(Node::Collision(CollisionNode {
                    hash: c.hash,
                    entries,
                }))
            }
            Node::Bitmap(b) => {
                let m = mask(hash, shift);
                let bit = bit_pos(m);
                if b.datamap & bit != 0 {
                    let idx = b.data_index(bit);
                    let matches = match &b.slots[idx] {
                        Slot::Entry(k, _) => k.borrow() == key,
                        Slot::Child(_) => unreachable!("datamap says entry"),
                    };
                    if !matches {
                        return Removed::NotFound;
                    }
                    let datamap = b.datamap & !bit;
                    if shift > 0 && datamap.count_ones() == 1 && b.nodemap == 0 {
                        // Canonicalization: hand the survivor to the parent.
                        debug_assert_eq!(b.slots.len(), 2);
                        let (k, v) = match &b.slots[1 - idx] {
                            Slot::Entry(k, v) => (k.clone(), v.clone()),
                            Slot::Child(_) => unreachable!("both slots are payload"),
                        };
                        return Removed::Single(k, v);
                    }
                    Removed::Node(Node::Bitmap(BitmapNode {
                        datamap,
                        nodemap: b.nodemap,
                        slots: slice_removed(&b.slots, idx),
                    }))
                } else if b.nodemap & bit != 0 {
                    let idx = b.node_index(bit);
                    let child = match &b.slots[idx] {
                        Slot::Child(c) => c,
                        Slot::Entry(..) => unreachable!("nodemap says child"),
                    };
                    match child.removed(hash, next_shift(shift), key) {
                        Removed::NotFound => Removed::NotFound,
                        Removed::Node(n) => Removed::Node(Node::Bitmap(BitmapNode {
                            datamap: b.datamap,
                            nodemap: b.nodemap,
                            slots: slice_replaced(&b.slots, idx, Slot::Child(Arc::new(n))),
                        })),
                        Removed::Single(k, v) => {
                            if shift > 0 && b.datamap == 0 && b.nodemap.count_ones() == 1 {
                                // Chain node dissolves.
                                return Removed::Single(k, v);
                            }
                            // Inline: the slot migrates node group → data group.
                            let datamap = b.datamap | bit;
                            let nodemap = b.nodemap & !bit;
                            let to = index_in(datamap, bit);
                            Removed::Node(Node::Bitmap(BitmapNode {
                                datamap,
                                nodemap,
                                slots: slice_migrated(&b.slots, idx, to, Slot::Entry(k, v)),
                            }))
                        }
                    }
                } else {
                    Removed::NotFound
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Structural diff: a lockstep walk that skips pointer-shared subtrees
// (mirrors `axiom::map`, with the split datamap/nodemap bitmaps). The
// derived algebra in `trie_common::ops::MapMergeOps` routes
// `merged`/`intersect`/`difference` through this walk.
// ---------------------------------------------------------------------------

/// What one lockstep walk found at a mask position.
enum At<'a, K, V> {
    Nothing,
    Entry(&'a K, &'a V),
    Sub(&'a Arc<Node<K, V>>),
}

fn at<'a, K, V>(b: &'a BitmapNode<K, V>, bit: u32) -> At<'a, K, V> {
    if b.datamap & bit != 0 {
        match &b.slots[b.data_index(bit)] {
            Slot::Entry(k, v) => At::Entry(k, v),
            Slot::Child(_) => unreachable!("datamap says entry"),
        }
    } else if b.nodemap & bit != 0 {
        match &b.slots[b.node_index(bit)] {
            Slot::Child(c) => At::Sub(c),
            Slot::Entry(..) => unreachable!("nodemap says child"),
        }
    } else {
        At::Nothing
    }
}

fn for_each_entry_node<K, V>(node: &Node<K, V>, f: &mut impl FnMut(&K, &V)) {
    match node {
        Node::Collision(c) => c.entries.iter().for_each(|(k, v)| f(k, v)),
        Node::Bitmap(b) => {
            for s in &b.slots {
                match s {
                    Slot::Entry(k, v) => f(k, v),
                    Slot::Child(c) => for_each_entry_node(c, f),
                }
            }
        }
    }
}

/// Lockstep diff (`a` old, `b` new): pointer-identical subtrees emit
/// nothing; a surviving key with a different value lands in `changed`.
fn diff_nodes<K: Clone + Eq + Hash, V: Clone + PartialEq>(
    a: &Node<K, V>,
    b: &Node<K, V>,
    shift: u32,
    out: &mut trie_common::ops::MapDiff<K, V>,
) {
    match (a, b) {
        (Node::Collision(x), Node::Collision(y)) => {
            debug_assert_eq!(x.hash, y.hash, "lockstep paths fix the full hash");
            for (k, v) in &x.entries {
                match y.entries.iter().find(|(yk, _)| yk == k) {
                    None => out.removed.push((k.clone(), v.clone())),
                    Some((_, yv)) if yv != v => {
                        out.changed.push((k.clone(), v.clone(), yv.clone()));
                    }
                    Some(_) => {}
                }
            }
            for (k, v) in &y.entries {
                if !x.entries.iter().any(|(xk, _)| xk == k) {
                    out.added.push((k.clone(), v.clone()));
                }
            }
        }
        (Node::Bitmap(x), Node::Bitmap(y)) => {
            for m in 0..32u32 {
                let bit = bit_pos(m);
                match (at(x, bit), at(y, bit)) {
                    (At::Nothing, At::Nothing) => {}
                    (At::Entry(k, v), At::Nothing) => out.removed.push((k.clone(), v.clone())),
                    (At::Nothing, At::Entry(k, v)) => out.added.push((k.clone(), v.clone())),
                    (At::Sub(ac), At::Nothing) => {
                        for_each_entry_node(ac, &mut |k, v| {
                            out.removed.push((k.clone(), v.clone()));
                        });
                    }
                    (At::Nothing, At::Sub(bc)) => {
                        for_each_entry_node(bc, &mut |k, v| {
                            out.added.push((k.clone(), v.clone()));
                        });
                    }
                    (At::Entry(ka, va), At::Entry(kb, vb)) => {
                        if ka == kb {
                            if va != vb {
                                out.changed.push((ka.clone(), va.clone(), vb.clone()));
                            }
                        } else {
                            out.removed.push((ka.clone(), va.clone()));
                            out.added.push((kb.clone(), vb.clone()));
                        }
                    }
                    (At::Entry(ka, va), At::Sub(bc)) => {
                        match bc.get(hash32(ka), next_shift(shift), ka) {
                            None => out.removed.push((ka.clone(), va.clone())),
                            Some(vb) if vb != va => {
                                out.changed.push((ka.clone(), va.clone(), vb.clone()));
                            }
                            Some(_) => {}
                        }
                        for_each_entry_node(bc, &mut |k, v| {
                            if k != ka {
                                out.added.push((k.clone(), v.clone()));
                            }
                        });
                    }
                    (At::Sub(ac), At::Entry(kb, vb)) => {
                        match ac.get(hash32(kb), next_shift(shift), kb) {
                            None => out.added.push((kb.clone(), vb.clone())),
                            Some(va) if va != vb => {
                                out.changed.push((kb.clone(), va.clone(), vb.clone()));
                            }
                            Some(_) => {}
                        }
                        for_each_entry_node(ac, &mut |k, v| {
                            if k != kb {
                                out.removed.push((k.clone(), v.clone()));
                            }
                        });
                    }
                    (At::Sub(ac), At::Sub(bc)) => {
                        if !Arc::ptr_eq(ac, bc) {
                            diff_nodes(ac, bc, next_shift(shift), out);
                        }
                    }
                }
            }
        }
        _ => unreachable!("canonical tries align node kinds at equal depth"),
    }
}

/// A persistent hash map with the CHAMP encoding. See the
/// [module documentation](self).
pub struct ChampMap<K, V> {
    pub(crate) root: Arc<Node<K, V>>,
    pub(crate) len: usize,
}

impl<K, V> Clone for ChampMap<K, V> {
    fn clone(&self) -> Self {
        ChampMap {
            root: Arc::clone(&self.root),
            len: self.len,
        }
    }
}

impl<K: Clone + Eq + Hash, V: Clone + PartialEq> ChampMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        ChampMap {
            root: Arc::new(Node::empty()),
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks up the value bound to `key`.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.root.get(hash32(key), 0, key)
    }

    /// True if `key` has a binding.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.get(key).is_some()
    }

    /// Returns a map with `key` bound to `value`; `self` is unchanged.
    pub fn inserted(&self, key: K, value: V) -> Self {
        let mut next = self.clone();
        next.insert_mut(key, value);
        next
    }

    /// Binds `key` to `value` in place: uniquely-owned trie nodes along the
    /// spine are edited directly, shared nodes are path-copied. Returns true
    /// if a new key was added.
    pub fn insert_mut(&mut self, key: K, value: V) -> bool {
        let hash = hash32(&key);
        match Node::insert_in_place(&mut self.root, hash, 0, key, value) {
            EditInserted::Unchanged | EditInserted::Replaced => false,
            EditInserted::Added => {
                self.len += 1;
                true
            }
        }
    }

    /// Returns a map without a binding for `key`; `self` is unchanged.
    pub fn removed<Q>(&self, key: &Q) -> Self
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        let mut next = self.clone();
        next.remove_mut(key);
        next
    }

    /// Removes `key` in place: uniquely-owned trie nodes along the spine are
    /// edited directly, shared nodes are path-copied. Returns true if a
    /// binding was removed.
    pub fn remove_mut<Q>(&mut self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        match Node::remove_in_place(&mut self.root, hash32(key), 0, key) {
            EditRemoved::NotFound => false,
            EditRemoved::Removed => {
                self.len -= 1;
                true
            }
            EditRemoved::Single(k, v) => {
                let root = Node::empty();
                let root = match root.inserted(hash32(&k), 0, &k, &v) {
                    Inserted::Added(n) => n,
                    _ => unreachable!("inserting into empty"),
                };
                self.root = Arc::new(root);
                self.len -= 1;
                true
            }
        }
    }

    /// Iterates `(key, value)` entries in unspecified (trie) order.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter {
            stack: vec![cursor_of(&self.root)],
            remaining: self.len,
        }
    }

    /// Iterates the keys in unspecified order.
    pub fn keys(&self) -> Keys<'_, K, V> {
        Keys { inner: self.iter() }
    }

    /// Iterates the values in unspecified order.
    pub fn values(&self) -> Values<'_, K, V> {
        Values { inner: self.iter() }
    }

    /// What changed between `self` (old) and `other` (new), via a lockstep
    /// structural walk: pointer-shared subtrees emit nothing, so output and
    /// walk are both O(changed).
    pub fn diff(&self, other: &Self) -> trie_common::ops::MapDiff<K, V> {
        let mut out = trie_common::ops::MapDiff::new();
        if Arc::ptr_eq(&self.root, &other.root) {
            return out;
        }
        if self.is_empty() {
            out.added
                .extend(other.iter().map(|(k, v)| (k.clone(), v.clone())));
            return out;
        }
        if other.is_empty() {
            out.removed
                .extend(self.iter().map(|(k, v)| (k.clone(), v.clone())));
            return out;
        }
        diff_nodes(&self.root, &other.root, 0, &mut out);
        out
    }

    pub(crate) fn root_node(&self) -> &Node<K, V> {
        &self.root
    }

    /// Recursively checks the canonical-form invariants (test support).
    ///
    /// # Panics
    ///
    /// Panics if any structural invariant is violated.
    #[doc(hidden)]
    pub fn assert_invariants(&self) {
        let counted = validate(&self.root, 0);
        assert_eq!(counted, self.len, "len bookkeeping");
    }
}

fn validate<K: Clone + Eq + Hash, V: Clone + PartialEq>(node: &Node<K, V>, shift: u32) -> usize {
    match node {
        Node::Collision(c) => {
            assert!(hash_exhausted(shift));
            assert!(c.entries.len() >= 2);
            for (k, _) in &c.entries {
                assert_eq!(hash32(k), c.hash);
            }
            c.entries.len()
        }
        Node::Bitmap(b) => {
            assert_eq!(b.datamap & b.nodemap, 0, "maps must be disjoint");
            assert_eq!(
                b.slots.len(),
                b.payload_arity() + b.node_arity(),
                "slot count"
            );
            let mut total = 0;
            for (i, slot) in b.slots.iter().enumerate() {
                match slot {
                    Slot::Entry(k, _) => {
                        assert!(i < b.payload_arity(), "entry in node region");
                        let m = mask(hash32(k), shift);
                        assert!(b.datamap & bit_pos(m) != 0, "entry branch not in datamap");
                        assert_eq!(b.data_index(bit_pos(m)), i, "entry at wrong index");
                        total += 1;
                    }
                    Slot::Child(child) => {
                        assert!(i >= b.payload_arity(), "child in data region");
                        let sub = validate(child, next_shift(shift));
                        assert!(sub >= 2, "sub-trie with < 2 entries not inlined");
                        total += sub;
                    }
                }
            }
            if shift > 0 {
                assert!(
                    !(b.payload_arity() == 1 && b.node_arity() == 0),
                    "non-root singleton payload node must be inlined"
                );
            }
            total
        }
    }
}

impl<K: Clone + Eq + Hash, V: Clone + PartialEq> Default for ChampMap<K, V> {
    fn default() -> Self {
        ChampMap::new()
    }
}

impl<K: Clone + Eq + Hash, V: Clone + PartialEq> PartialEq for ChampMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && node_eq(&self.root, &other.root)
    }
}

impl<K: Clone + Eq + Hash, V: Clone + Eq> Eq for ChampMap<K, V> {}

fn node_eq<K: Clone + Eq + Hash, V: Clone + PartialEq>(a: &Node<K, V>, b: &Node<K, V>) -> bool {
    match (a, b) {
        (Node::Bitmap(x), Node::Bitmap(y)) => {
            x.datamap == y.datamap
                && x.nodemap == y.nodemap
                && x.slots
                    .iter()
                    .zip(y.slots.iter())
                    .all(|(s, t)| match (s, t) {
                        (Slot::Entry(k1, v1), Slot::Entry(k2, v2)) => k1 == k2 && v1 == v2,
                        (Slot::Child(c), Slot::Child(d)) => Arc::ptr_eq(c, d) || node_eq(c, d),
                        _ => false,
                    })
        }
        (Node::Collision(x), Node::Collision(y)) => {
            x.hash == y.hash
                && x.entries.len() == y.entries.len()
                && x.entries
                    .iter()
                    .all(|(k, v)| y.entries.iter().any(|(k2, v2)| k == k2 && v == v2))
        }
        _ => false,
    }
}

impl<K, V> std::fmt::Debug for ChampMap<K, V>
where
    K: std::fmt::Debug + Clone + Eq + Hash,
    V: std::fmt::Debug + Clone + PartialEq,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: Clone + Eq + Hash, V: Clone + PartialEq> FromIterator<(K, V)> for ChampMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        trie_common::ops::from_iter_via(iter)
    }
}

impl<K: Clone + Eq + Hash, V: Clone + PartialEq> Extend<(K, V)> for ChampMap<K, V> {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        trie_common::ops::extend_via(self, iter);
    }
}

impl<'a, K: Clone + Eq + Hash, V: Clone + PartialEq> IntoIterator for &'a ChampMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = Iter<'a, K, V>;
    fn into_iter(self) -> Iter<'a, K, V> {
        self.iter()
    }
}

enum Cursor<'a, K, V> {
    Bitmap { slots: &'a [Slot<K, V>], idx: usize },
    Collision { entries: &'a [(K, V)], idx: usize },
}

fn cursor_of<K, V>(node: &Node<K, V>) -> Cursor<'_, K, V> {
    match node {
        Node::Bitmap(b) => Cursor::Bitmap {
            slots: &b.slots,
            idx: 0,
        },
        Node::Collision(c) => Cursor::Collision {
            entries: &c.entries,
            idx: 0,
        },
    }
}

/// Iterator over map entries. Created by [`ChampMap::iter`].
pub struct Iter<'a, K, V> {
    stack: Vec<Cursor<'a, K, V>>,
    remaining: usize,
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<(&'a K, &'a V)> {
        loop {
            let top = self.stack.last_mut()?;
            match top {
                Cursor::Collision { entries, idx } => {
                    if *idx < entries.len() {
                        let (k, v) = &entries[*idx];
                        *idx += 1;
                        self.remaining -= 1;
                        return Some((k, v));
                    }
                    self.stack.pop();
                }
                Cursor::Bitmap { slots, idx } => {
                    if *idx >= slots.len() {
                        self.stack.pop();
                        continue;
                    }
                    let slot = &slots[*idx];
                    *idx += 1;
                    match slot {
                        Slot::Entry(k, v) => {
                            self.remaining -= 1;
                            return Some((k, v));
                        }
                        Slot::Child(child) => self.stack.push(cursor_of(child)),
                    }
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<'a, K, V> ExactSizeIterator for Iter<'a, K, V> {}

impl<'a, K, V> std::fmt::Debug for Iter<'a, K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Iter")
            .field("remaining", &self.remaining)
            .finish()
    }
}

/// Iterator over map keys. Created by [`ChampMap::keys`].
#[derive(Debug)]
pub struct Keys<'a, K, V> {
    inner: Iter<'a, K, V>,
}

impl<'a, K, V> Iterator for Keys<'a, K, V> {
    type Item = &'a K;
    fn next(&mut self) -> Option<&'a K> {
        self.inner.next().map(|(k, _)| k)
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<'a, K, V> ExactSizeIterator for Keys<'a, K, V> {}

/// Iterator over map values. Created by [`ChampMap::values`].
#[derive(Debug)]
pub struct Values<'a, K, V> {
    inner: Iter<'a, K, V>,
}

impl<'a, K, V> Iterator for Values<'a, K, V> {
    type Item = &'a V;
    fn next(&mut self) -> Option<&'a V> {
        self.inner.next().map(|(_, v)| v)
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<'a, K, V> ExactSizeIterator for Values<'a, K, V> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::hash::Hasher;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Collide {
        bucket: u32,
        id: u32,
    }

    impl Hash for Collide {
        fn hash<H: Hasher>(&self, state: &mut H) {
            state.write_u32(self.bucket);
        }
    }

    #[test]
    fn basics() {
        let m = ChampMap::<u32, u32>::new();
        assert!(m.is_empty());
        let m = m.inserted(1, 2);
        assert_eq!(m.get(&1), Some(&2));
        assert_eq!(m.len(), 1);
        m.assert_invariants();
    }

    #[test]
    fn thousand_entries() {
        let m: ChampMap<u32, u32> = (0..1000).map(|i| (i, i * 7)).collect();
        assert_eq!(m.len(), 1000);
        for i in 0..1000 {
            assert_eq!(m.get(&i), Some(&(i * 7)));
        }
        assert!(!m.contains_key(&5000));
        m.assert_invariants();
    }

    #[test]
    fn replace_keeps_len() {
        let m = ChampMap::new().inserted(1u32, 1u32).inserted(1, 2);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(&1), Some(&2));
    }

    #[test]
    fn noop_insert_shares_root() {
        let m: ChampMap<u32, u32> = (0..64).map(|i| (i, i)).collect();
        let m2 = m.inserted(3, 3);
        assert!(Arc::ptr_eq(&m.root, &m2.root));
    }

    #[test]
    fn canonical_removal() {
        let full: ChampMap<u32, u32> = (0..400).map(|i| (i, i)).collect();
        let mut m = full.clone();
        for i in 0..400 {
            assert!(m.remove_mut(&i));
            m.assert_invariants();
        }
        assert!(m.is_empty());
        assert_eq!(full.len(), 400);
    }

    #[test]
    fn collisions() {
        let mut m = ChampMap::new();
        for id in 0..10 {
            m.insert_mut(Collide { bucket: 5, id }, id);
        }
        assert_eq!(m.len(), 10);
        m.assert_invariants();
        for id in 0..10 {
            assert_eq!(m.get(&Collide { bucket: 5, id }), Some(&id));
        }
        for id in 0..9 {
            assert!(m.remove_mut(&Collide { bucket: 5, id }));
            m.assert_invariants();
        }
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn model_based_random_ops() {
        let mut model: HashMap<u32, u32> = HashMap::new();
        let mut m: ChampMap<u32, u32> = ChampMap::new();
        let mut state = 42u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..4000 {
            let op = next() % 3;
            let key = next() % 150;
            match op {
                0 | 1 => {
                    let val = next();
                    model.insert(key, val);
                    m.insert_mut(key, val);
                }
                _ => {
                    model.remove(&key);
                    m.remove_mut(&key);
                }
            }
            assert_eq!(m.len(), model.len());
        }
        m.assert_invariants();
        for (k, v) in &model {
            assert_eq!(m.get(k), Some(v));
        }
        let collected: HashMap<u32, u32> = m.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(collected, model);
    }

    #[test]
    fn equality() {
        let a: ChampMap<u32, u32> = (0..100).map(|i| (i, i)).collect();
        let b: ChampMap<u32, u32> = (0..100).rev().map(|i| (i, i)).collect();
        assert_eq!(a, b);
        assert_ne!(a, b.removed(&7));
    }

    #[test]
    fn iteration_is_payload_before_children() {
        // Grouping invariant: within any node, entries precede children.
        let m: ChampMap<u32, u32> = (0..2000).map(|i| (i, i)).collect();
        assert_eq!(m.iter().count(), 2000);
        assert_eq!(m.keys().count(), 2000);
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ChampMap<u32, u32>>();
    }
}
