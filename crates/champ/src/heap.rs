//! Footprint walkers for the CHAMP collections (see `heapmodel`).
//!
//! Modeled JVM layout per CHAMP node: one node object carrying the two 32-bit
//! bitmaps (`2 ints`) and a reference to a dense `Object[]` with two slots per
//! payload entry (key + value; one per set element) and one per sub-node.

use std::hash::Hash;
use std::sync::Arc;

use heapmodel::{
    arc_alloc_bytes, boxed_slice_bytes, Accounting, JvmArch, JvmFootprint, JvmSize, LayoutPolicy,
    RustFootprint,
};

use crate::map::{self, ChampMap};
use crate::set::{self, ChampSet};

/// Per-entry payload accounting callback for composite values.
pub type EntryAccount<'a, K, V> = &'a mut dyn FnMut(&K, &V, &mut Accounting);

fn map_nodes_jvm_with<K, V>(
    node: &map::Node<K, V>,
    arch: &JvmArch,
    policy: &LayoutPolicy,
    acc: &mut Accounting,
    entry: EntryAccount<'_, K, V>,
) {
    match node {
        map::Node::Bitmap(b) => {
            let slots = 2 * b.payload_arity() as u64 + b.node_arity() as u64;
            acc.structure(policy.node_size(arch, slots, 2, 0));
            for slot in b.slots.iter() {
                match slot {
                    map::Slot::Entry(k, v) => entry(k, v, acc),
                    map::Slot::Child(child) => map_nodes_jvm_with(child, arch, policy, acc, entry),
                }
            }
        }
        map::Node::Collision(c) => {
            acc.structure(arch.object(1, 1, 0) + arch.ref_array(2 * c.entries.len() as u64));
            for (k, v) in &c.entries {
                entry(k, v, acc);
            }
        }
    }
}

/// Walks a [`ChampMap`]'s modeled JVM structure with a per-entry payload
/// callback (for composite values like nested sets).
pub fn champ_map_jvm_with<K, V>(
    map: &ChampMap<K, V>,
    arch: &JvmArch,
    policy: &LayoutPolicy,
    acc: &mut Accounting,
    entry: EntryAccount<'_, K, V>,
) where
    K: Clone + Eq + Hash,
    V: Clone + PartialEq,
{
    acc.structure(arch.object(1, 2, 0));
    map_nodes_jvm_with(map.root_node(), arch, policy, acc, entry);
}

pub(crate) fn map_nodes_jvm<K: JvmSize, V: JvmSize>(
    node: &map::Node<K, V>,
    arch: &JvmArch,
    policy: &LayoutPolicy,
    acc: &mut Accounting,
) {
    map_nodes_jvm_with(node, arch, policy, acc, &mut |k, v, acc| {
        acc.payload(k.jvm_size(arch));
        acc.payload(v.jvm_size(arch));
    });
}

impl<K, V> JvmFootprint for ChampMap<K, V>
where
    K: Clone + Eq + Hash + JvmSize,
    V: Clone + PartialEq + JvmSize,
{
    fn jvm_footprint(&self, arch: &JvmArch, policy: &LayoutPolicy, acc: &mut Accounting) {
        acc.structure(arch.object(1, 2, 0));
        map_nodes_jvm(self.root_node(), arch, policy, acc);
    }
}

fn map_nodes_rust_with<K, V>(
    node: &Arc<map::Node<K, V>>,
    acc: &mut Accounting,
    entry: EntryAccount<'_, K, V>,
) {
    if !acc.first_visit(Arc::as_ptr(node)) {
        return;
    }
    acc.structure(arc_alloc_bytes::<map::Node<K, V>>());
    match &**node {
        map::Node::Bitmap(b) => {
            acc.structure(boxed_slice_bytes::<map::Slot<K, V>>(b.slots.len()));
            for slot in b.slots.iter() {
                match slot {
                    map::Slot::Child(child) => map_nodes_rust_with(child, acc, entry),
                    map::Slot::Entry(k, v) => entry(k, v, acc),
                }
            }
        }
        map::Node::Collision(c) => {
            acc.structure(boxed_slice_bytes::<(K, V)>(c.entries.len()));
            for (k, v) in &c.entries {
                entry(k, v, acc);
            }
        }
    }
}

/// Native-allocation walk with per-entry recursion hook.
pub fn champ_map_rust_with<K, V>(
    map: &ChampMap<K, V>,
    acc: &mut Accounting,
    entry: EntryAccount<'_, K, V>,
) where
    K: Clone + Eq + Hash,
    V: Clone + PartialEq,
{
    map_nodes_rust_with(&map.root, acc, entry);
}

fn map_nodes_rust<K, V>(node: &Arc<map::Node<K, V>>, acc: &mut Accounting) {
    map_nodes_rust_with(node, acc, &mut |_, _, _| {});
}

impl<K, V> RustFootprint for ChampMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + PartialEq,
{
    fn rust_footprint(&self, acc: &mut Accounting) {
        map_nodes_rust(&self.root, acc);
    }
}

pub(crate) fn set_nodes_jvm<T: JvmSize>(
    node: &set::Node<T>,
    arch: &JvmArch,
    policy: &LayoutPolicy,
    acc: &mut Accounting,
) {
    match node {
        set::Node::Bitmap(b) => {
            let slots = b.payload_arity() as u64 + b.node_arity() as u64;
            acc.structure(policy.node_size(arch, slots, 2, 0));
            for slot in b.slots.iter() {
                match slot {
                    set::Slot::Elem(e) => acc.payload(e.jvm_size(arch)),
                    set::Slot::Child(child) => set_nodes_jvm(child, arch, policy, acc),
                }
            }
        }
        set::Node::Collision(c) => {
            acc.structure(arch.object(1, 1, 0) + arch.ref_array(c.elems.len() as u64));
            for e in &c.elems {
                acc.payload(e.jvm_size(arch));
            }
        }
    }
}

impl<T> JvmFootprint for ChampSet<T>
where
    T: Clone + Eq + Hash + JvmSize,
{
    fn jvm_footprint(&self, arch: &JvmArch, policy: &LayoutPolicy, acc: &mut Accounting) {
        acc.structure(arch.object(1, 2, 0));
        set_nodes_jvm(self.root_node(), arch, policy, acc);
    }
}

pub(crate) fn set_nodes_rust<T>(node: &Arc<set::Node<T>>, acc: &mut Accounting) {
    if !acc.first_visit(Arc::as_ptr(node)) {
        return;
    }
    acc.structure(arc_alloc_bytes::<set::Node<T>>());
    match &**node {
        set::Node::Bitmap(b) => {
            acc.structure(boxed_slice_bytes::<set::Slot<T>>(b.slots.len()));
            for slot in b.slots.iter() {
                if let set::Slot::Child(child) = slot {
                    set_nodes_rust(child, acc);
                }
            }
        }
        set::Node::Collision(c) => {
            acc.structure(boxed_slice_bytes::<T>(c.elems.len()));
        }
    }
}

impl<T> RustFootprint for ChampSet<T>
where
    T: Clone + Eq + Hash,
{
    fn rust_footprint(&self, acc: &mut Accounting) {
        set_nodes_rust(&self.root, acc);
    }
}

/// Measures a nested `ChampSet` *without* the outer wrapper, for composite
/// multi-map layouts (the wrapper is governed by the enclosing structure's
/// [`LayoutPolicy`]).
pub fn nested_set_jvm<T: Clone + Eq + Hash + JvmSize>(
    set: &ChampSet<T>,
    arch: &JvmArch,
    policy: &LayoutPolicy,
    acc: &mut Accounting,
) {
    set_nodes_jvm(set.root_node(), arch, policy, acc);
}

/// Native-allocation counterpart of [`nested_set_jvm`].
pub fn nested_set_rust<T: Clone + Eq + Hash>(set: &ChampSet<T>, acc: &mut Accounting) {
    set_nodes_rust(&set.root, acc);
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapmodel::LayoutPolicy;

    #[test]
    fn champ_map_and_axiom_map_share_node_overhead_order() {
        // CHAMP node: 2 ints of bitmap; AXIOM node: 1 long — identical modeled
        // sizes (paper Hypothesis 6: footprints match exactly).
        let arch = JvmArch::COMPRESSED_OOPS;
        let champ_node = LayoutPolicy::BASELINE.node_size(&arch, 6, 2, 0);
        let axiom_node = LayoutPolicy::BASELINE.node_size(&arch, 6, 0, 1);
        assert_eq!(champ_node, axiom_node);
    }

    #[test]
    fn map_footprint_counts_payload() {
        let m: ChampMap<u32, u32> = (0..100).map(|i| (i, i)).collect();
        let fp = m.jvm_bytes(&JvmArch::COMPRESSED_OOPS, &LayoutPolicy::BASELINE);
        assert_eq!(fp.payload, 200 * 16);
        assert!(fp.structure > 0);
        assert!(m.rust_bytes() > 0);
    }

    #[test]
    fn set_footprint_scales() {
        let small: ChampSet<u32> = (0..10).collect();
        let large: ChampSet<u32> = (0..1000).collect();
        let arch = JvmArch::COMPRESSED_OOPS;
        assert!(
            large.jvm_bytes(&arch, &LayoutPolicy::BASELINE).total()
                > small.jvm_bytes(&arch, &LayoutPolicy::BASELINE).total()
        );
    }
}
