//! The CHAMP persistent hash set (the map's sibling; see [`crate::map`]).
//!
//! Used by the evaluation as the nested collection of the map-of-sets
//! multi-map baseline (`idiomatic::NestedChampMultiMap`, the "CHAMP" column
//! of Table 1) and as a standalone set.
//!
//! # Examples
//!
//! ```
//! use champ::ChampSet;
//!
//! let s: ChampSet<u32> = (0..10).collect();
//! assert!(s.contains(&7));
//! assert_eq!(s.removed(&7).len(), 9);
//! assert_eq!(s.len(), 10); // persistent
//! ```

use std::borrow::Borrow;
use std::hash::Hash;
use std::sync::Arc;

use trie_common::bits::{bit_pos, hash_exhausted, index_in, mask, next_shift};
use trie_common::hash::hash32;
use trie_common::slices::{
    inserted_at as slice_inserted, inserted_at_owned, migrate_map, migrated as slice_migrated,
    removed_at as slice_removed, removed_at_owned, replaced_at as slice_replaced,
};

/// One physical slot: an element or a sub-trie.
#[derive(Debug, Clone)]
pub(crate) enum Slot<T> {
    Elem(T),
    Child(Arc<Node<T>>),
}

/// A CHAMP set node.
#[derive(Debug, Clone)]
pub(crate) struct BitmapNode<T> {
    pub(crate) datamap: u32,
    pub(crate) nodemap: u32,
    pub(crate) slots: Box<[Slot<T>]>,
}

impl<T> BitmapNode<T> {
    #[inline]
    pub(crate) fn payload_arity(&self) -> usize {
        self.datamap.count_ones() as usize
    }

    #[inline]
    pub(crate) fn node_arity(&self) -> usize {
        self.nodemap.count_ones() as usize
    }

    #[inline]
    fn data_index(&self, bit: u32) -> usize {
        index_in(self.datamap, bit)
    }

    #[inline]
    fn node_index(&self, bit: u32) -> usize {
        self.payload_arity() + index_in(self.nodemap, bit)
    }
}

/// Hash-collision overflow node.
#[derive(Debug, Clone)]
pub(crate) struct CollisionNode<T> {
    pub(crate) hash: u32,
    pub(crate) elems: Vec<T>,
}

/// A trie node.
#[derive(Debug, Clone)]
pub(crate) enum Node<T> {
    Bitmap(BitmapNode<T>),
    Collision(CollisionNode<T>),
}

pub(crate) enum Removed<T> {
    NotFound,
    Node(Node<T>),
    Single(T),
}

/// In-place removal outcome: edited nodes stay where they are, so only the
/// canonicalization payload travels upward.
pub(crate) enum EditRemoved<T> {
    NotFound,
    Removed,
    /// The sub-tree collapsed to one element (left in a consumed state; the
    /// parent drops it and inlines the survivor).
    Single(T),
}

impl<T: Clone + Eq + Hash> Node<T> {
    fn empty() -> Node<T> {
        Node::Bitmap(BitmapNode {
            datamap: 0,
            nodemap: 0,
            slots: Box::new([]),
        })
    }

    fn pair(h1: u32, e1: T, h2: u32, e2: T, shift: u32) -> Node<T> {
        if hash_exhausted(shift) {
            debug_assert_eq!(h1, h2);
            return Node::Collision(CollisionNode {
                hash: h1,
                elems: vec![e1, e2],
            });
        }
        let m1 = mask(h1, shift);
        let m2 = mask(h2, shift);
        if m1 == m2 {
            let child = Node::pair(h1, e1, h2, e2, next_shift(shift));
            Node::Bitmap(BitmapNode {
                datamap: 0,
                nodemap: bit_pos(m1),
                slots: Box::new([Slot::Child(Arc::new(child))]),
            })
        } else {
            let slots: Box<[Slot<T>]> = if m1 < m2 {
                Box::new([Slot::Elem(e1), Slot::Elem(e2)])
            } else {
                Box::new([Slot::Elem(e2), Slot::Elem(e1)])
            };
            Node::Bitmap(BitmapNode {
                datamap: bit_pos(m1) | bit_pos(m2),
                nodemap: 0,
                slots,
            })
        }
    }

    fn contains<Q>(&self, hash: u32, shift: u32, value: &Q) -> bool
    where
        T: Borrow<Q>,
        Q: Eq + ?Sized,
    {
        match self {
            Node::Collision(c) => c.elems.iter().any(|e| e.borrow() == value),
            Node::Bitmap(b) => {
                let bit = bit_pos(mask(hash, shift));
                if b.datamap & bit != 0 {
                    match &b.slots[b.data_index(bit)] {
                        Slot::Elem(e) => e.borrow() == value,
                        Slot::Child(_) => unreachable!("datamap says element"),
                    }
                } else if b.nodemap & bit != 0 {
                    match &b.slots[b.node_index(bit)] {
                        Slot::Child(child) => child.contains(hash, next_shift(shift), value),
                        Slot::Elem(_) => unreachable!("nodemap says child"),
                    }
                } else {
                    false
                }
            }
        }
    }

    fn inserted(&self, hash: u32, shift: u32, value: &T) -> Option<Node<T>> {
        match self {
            Node::Collision(c) => {
                debug_assert_eq!(c.hash, hash);
                if c.elems.iter().any(|e| e == value) {
                    return None;
                }
                let mut elems = c.elems.clone();
                elems.push(value.clone());
                Some(Node::Collision(CollisionNode {
                    hash: c.hash,
                    elems,
                }))
            }
            Node::Bitmap(b) => {
                let m = mask(hash, shift);
                let bit = bit_pos(m);
                if b.datamap & bit != 0 {
                    let idx = b.data_index(bit);
                    let existing = match &b.slots[idx] {
                        Slot::Elem(e) => e,
                        Slot::Child(_) => unreachable!("datamap says element"),
                    };
                    if existing == value {
                        return None;
                    }
                    let child = Node::pair(
                        hash32(existing),
                        existing.clone(),
                        hash,
                        value.clone(),
                        next_shift(shift),
                    );
                    let datamap = b.datamap & !bit;
                    let nodemap = b.nodemap | bit;
                    let to = (datamap.count_ones() as usize) + index_in(nodemap, bit);
                    Some(Node::Bitmap(BitmapNode {
                        datamap,
                        nodemap,
                        slots: slice_migrated(&b.slots, idx, to, Slot::Child(Arc::new(child))),
                    }))
                } else if b.nodemap & bit != 0 {
                    let idx = b.node_index(bit);
                    let child = match &b.slots[idx] {
                        Slot::Child(c) => c,
                        Slot::Elem(_) => unreachable!("nodemap says child"),
                    };
                    let new_child = child.inserted(hash, next_shift(shift), value)?;
                    Some(Node::Bitmap(BitmapNode {
                        datamap: b.datamap,
                        nodemap: b.nodemap,
                        slots: slice_replaced(&b.slots, idx, Slot::Child(Arc::new(new_child))),
                    }))
                } else {
                    let datamap = b.datamap | bit;
                    let idx = index_in(datamap, bit);
                    Some(Node::Bitmap(BitmapNode {
                        datamap,
                        nodemap: b.nodemap,
                        slots: slice_inserted(&b.slots, idx, Slot::Elem(value.clone())),
                    }))
                }
            }
        }
    }

    /// In-place insert driven by `Arc` uniqueness: a uniquely-owned node is
    /// edited directly (slots moved, never cloned), a shared node falls back
    /// to the persistent path copy for its whole subtree. Returns true if
    /// the set grew.
    fn insert_in_place(this: &mut Arc<Node<T>>, hash: u32, shift: u32, value: T) -> bool {
        match Arc::get_mut(this) {
            Some(Node::Collision(c)) => {
                debug_assert_eq!(c.hash, hash);
                if c.elems.contains(&value) {
                    return false;
                }
                c.elems.push(value);
                true
            }
            Some(Node::Bitmap(b)) => {
                let m = mask(hash, shift);
                let bit = bit_pos(m);
                if b.datamap & bit != 0 {
                    let idx = b.data_index(bit);
                    let existing = match &b.slots[idx] {
                        Slot::Elem(e) => e,
                        Slot::Child(_) => unreachable!("datamap says element"),
                    };
                    if *existing == value {
                        return false;
                    }
                    // The element migrates data group → node group in place.
                    let existing_hash = hash32(existing);
                    let datamap = b.datamap & !bit;
                    let nodemap = b.nodemap | bit;
                    let to = (datamap.count_ones() as usize) + index_in(nodemap, bit);
                    b.datamap = datamap;
                    b.nodemap = nodemap;
                    migrate_map(&mut b.slots, idx, to, |slot| {
                        let Slot::Elem(existing) = slot else {
                            unreachable!("datamap says element")
                        };
                        Slot::Child(Arc::new(Node::pair(
                            existing_hash,
                            existing,
                            hash,
                            value,
                            next_shift(shift),
                        )))
                    });
                    true
                } else if b.nodemap & bit != 0 {
                    let idx = b.node_index(bit);
                    let Slot::Child(child) = &mut b.slots[idx] else {
                        unreachable!("nodemap says child")
                    };
                    Node::insert_in_place(child, hash, next_shift(shift), value)
                } else {
                    b.datamap |= bit;
                    let idx = index_in(b.datamap, bit);
                    b.slots =
                        inserted_at_owned(std::mem::take(&mut b.slots), idx, Slot::Elem(value));
                    true
                }
            }
            None => match this.inserted(hash, shift, &value) {
                Some(node) => {
                    *this = Arc::new(node);
                    true
                }
                None => false,
            },
        }
    }

    /// In-place removal (same `Arc`-uniqueness discipline as
    /// [`Node::insert_in_place`]), canonicalizing exactly like
    /// [`Node::removed`].
    fn remove_in_place<Q>(
        this: &mut Arc<Node<T>>,
        hash: u32,
        shift: u32,
        value: &Q,
    ) -> EditRemoved<T>
    where
        T: Borrow<Q>,
        Q: Eq + ?Sized,
    {
        match Arc::get_mut(this) {
            Some(Node::Collision(c)) => {
                let Some(pos) = c.elems.iter().position(|e| e.borrow() == value) else {
                    return EditRemoved::NotFound;
                };
                if c.elems.len() == 2 {
                    return EditRemoved::Single(c.elems.swap_remove(1 - pos));
                }
                c.elems.swap_remove(pos);
                EditRemoved::Removed
            }
            Some(Node::Bitmap(b)) => {
                let m = mask(hash, shift);
                let bit = bit_pos(m);
                if b.datamap & bit != 0 {
                    let idx = b.data_index(bit);
                    let matches = match &b.slots[idx] {
                        Slot::Elem(e) => e.borrow() == value,
                        Slot::Child(_) => unreachable!("datamap says element"),
                    };
                    if !matches {
                        return EditRemoved::NotFound;
                    }
                    let datamap = b.datamap & !bit;
                    if shift > 0 && datamap.count_ones() == 1 && b.nodemap == 0 {
                        // The node held exactly two elements; hand the
                        // survivor (moved out) to the parent for inlining.
                        debug_assert_eq!(b.slots.len(), 2);
                        let mut slots = std::mem::take(&mut b.slots).into_vec();
                        let Slot::Elem(survivor) = slots.swap_remove(1 - idx) else {
                            unreachable!("both slots are payload")
                        };
                        return EditRemoved::Single(survivor);
                    }
                    b.datamap = datamap;
                    b.slots = removed_at_owned(std::mem::take(&mut b.slots), idx);
                    EditRemoved::Removed
                } else if b.nodemap & bit != 0 {
                    let idx = b.node_index(bit);
                    let Slot::Child(child) = &mut b.slots[idx] else {
                        unreachable!("nodemap says child")
                    };
                    match Node::remove_in_place(child, hash, next_shift(shift), value) {
                        EditRemoved::NotFound => EditRemoved::NotFound,
                        EditRemoved::Removed => EditRemoved::Removed,
                        EditRemoved::Single(e) => {
                            if shift > 0 && b.datamap == 0 && b.nodemap.count_ones() == 1 {
                                // A pure chain node dissolves: keep
                                // propagating the survivor upward.
                                return EditRemoved::Single(e);
                            }
                            // Inline the survivor: node group → data group
                            // in place, dropping the collapsed child.
                            let datamap = b.datamap | bit;
                            let nodemap = b.nodemap & !bit;
                            let to = index_in(datamap, bit);
                            b.datamap = datamap;
                            b.nodemap = nodemap;
                            migrate_map(&mut b.slots, idx, to, |_child| Slot::Elem(e));
                            EditRemoved::Removed
                        }
                    }
                } else {
                    EditRemoved::NotFound
                }
            }
            None => match this.removed(hash, shift, value) {
                Removed::NotFound => EditRemoved::NotFound,
                Removed::Node(n) => {
                    *this = Arc::new(n);
                    EditRemoved::Removed
                }
                Removed::Single(e) => EditRemoved::Single(e),
            },
        }
    }

    fn removed<Q>(&self, hash: u32, shift: u32, value: &Q) -> Removed<T>
    where
        T: Borrow<Q>,
        Q: Eq + ?Sized,
    {
        match self {
            Node::Collision(c) => {
                let Some(pos) = c.elems.iter().position(|e| e.borrow() == value) else {
                    return Removed::NotFound;
                };
                if c.elems.len() == 2 {
                    return Removed::Single(c.elems[1 - pos].clone());
                }
                let mut elems = c.elems.clone();
                elems.remove(pos);
                Removed::Node(Node::Collision(CollisionNode {
                    hash: c.hash,
                    elems,
                }))
            }
            Node::Bitmap(b) => {
                let m = mask(hash, shift);
                let bit = bit_pos(m);
                if b.datamap & bit != 0 {
                    let idx = b.data_index(bit);
                    let matches = match &b.slots[idx] {
                        Slot::Elem(e) => e.borrow() == value,
                        Slot::Child(_) => unreachable!("datamap says element"),
                    };
                    if !matches {
                        return Removed::NotFound;
                    }
                    let datamap = b.datamap & !bit;
                    if shift > 0 && datamap.count_ones() == 1 && b.nodemap == 0 {
                        debug_assert_eq!(b.slots.len(), 2);
                        let survivor = match &b.slots[1 - idx] {
                            Slot::Elem(e) => e.clone(),
                            Slot::Child(_) => unreachable!("both slots are payload"),
                        };
                        return Removed::Single(survivor);
                    }
                    Removed::Node(Node::Bitmap(BitmapNode {
                        datamap,
                        nodemap: b.nodemap,
                        slots: slice_removed(&b.slots, idx),
                    }))
                } else if b.nodemap & bit != 0 {
                    let idx = b.node_index(bit);
                    let child = match &b.slots[idx] {
                        Slot::Child(c) => c,
                        Slot::Elem(_) => unreachable!("nodemap says child"),
                    };
                    match child.removed(hash, next_shift(shift), value) {
                        Removed::NotFound => Removed::NotFound,
                        Removed::Node(n) => Removed::Node(Node::Bitmap(BitmapNode {
                            datamap: b.datamap,
                            nodemap: b.nodemap,
                            slots: slice_replaced(&b.slots, idx, Slot::Child(Arc::new(n))),
                        })),
                        Removed::Single(e) => {
                            if shift > 0 && b.datamap == 0 && b.nodemap.count_ones() == 1 {
                                return Removed::Single(e);
                            }
                            let datamap = b.datamap | bit;
                            let nodemap = b.nodemap & !bit;
                            let to = index_in(datamap, bit);
                            Removed::Node(Node::Bitmap(BitmapNode {
                                datamap,
                                nodemap,
                                slots: slice_migrated(&b.slots, idx, to, Slot::Elem(e)),
                            }))
                        }
                    }
                } else {
                    Removed::NotFound
                }
            }
        }
    }
}

/// A persistent hash set with the CHAMP encoding. See the
/// [module documentation](self).
pub struct ChampSet<T> {
    pub(crate) root: Arc<Node<T>>,
    pub(crate) len: usize,
}

impl<T> Clone for ChampSet<T> {
    fn clone(&self) -> Self {
        ChampSet {
            root: Arc::clone(&self.root),
            len: self.len,
        }
    }
}

impl<T: Clone + Eq + Hash> ChampSet<T> {
    /// Creates an empty set.
    pub fn new() -> Self {
        ChampSet {
            root: Arc::new(Node::empty()),
            len: 0,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the set holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test.
    pub fn contains<Q>(&self, value: &Q) -> bool
    where
        T: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.root.contains(hash32(value), 0, value)
    }

    /// Returns a set including `value`; `self` is unchanged.
    pub fn inserted(&self, value: T) -> Self {
        let mut next = self.clone();
        next.insert_mut(value);
        next
    }

    /// Inserts `value` in place: uniquely-owned trie nodes along the spine
    /// are edited directly, shared nodes are path-copied. Returns true if
    /// the set grew.
    pub fn insert_mut(&mut self, value: T) -> bool {
        let hash = hash32(&value);
        if Node::insert_in_place(&mut self.root, hash, 0, value) {
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Returns a set excluding `value`; `self` is unchanged.
    pub fn removed<Q>(&self, value: &Q) -> Self
    where
        T: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        let mut next = self.clone();
        next.remove_mut(value);
        next
    }

    /// Removes `value` in place: uniquely-owned trie nodes along the spine
    /// are edited directly, shared nodes are path-copied. Returns true if
    /// the set shrank.
    pub fn remove_mut<Q>(&mut self, value: &Q) -> bool
    where
        T: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        match Node::remove_in_place(&mut self.root, hash32(value), 0, value) {
            EditRemoved::NotFound => false,
            EditRemoved::Removed => {
                self.len -= 1;
                true
            }
            EditRemoved::Single(survivor) => {
                let root = Node::empty()
                    .inserted(hash32(&survivor), 0, &survivor)
                    .expect("inserting into empty");
                self.root = Arc::new(root);
                self.len -= 1;
                true
            }
        }
    }

    /// The sole element of a singleton set.
    ///
    /// # Panics
    ///
    /// Panics if the set does not hold exactly one element.
    pub fn sole(&self) -> &T {
        assert_eq!(self.len, 1, "sole() requires a singleton set");
        self.iter().next().expect("len == 1")
    }

    /// Iterates the elements in unspecified (trie) order.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            stack: vec![cursor_of(&self.root)],
            remaining: self.len,
        }
    }

    /// Union of two sets.
    pub fn union(&self, other: &Self) -> Self {
        let (big, small) = if self.len >= other.len {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = big.clone();
        for v in small.iter() {
            out.insert_mut(v.clone());
        }
        out
    }

    /// Intersection of two sets.
    pub fn intersection(&self, other: &Self) -> Self {
        let (probe, scan) = if self.len >= other.len {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = ChampSet::new();
        for v in scan.iter() {
            if probe.contains(v) {
                out.insert_mut(v.clone());
            }
        }
        out
    }

    /// Elements of `self` not in `other`.
    pub fn difference(&self, other: &Self) -> Self {
        let mut out = ChampSet::new();
        for v in self.iter() {
            if !other.contains(v) {
                out.insert_mut(v.clone());
            }
        }
        out
    }

    /// True if every element of `self` is in `other`.
    pub fn is_subset(&self, other: &Self) -> bool {
        self.len <= other.len && self.iter().all(|v| other.contains(v))
    }

    pub(crate) fn root_node(&self) -> &Node<T> {
        &self.root
    }

    /// Recursively checks the canonical-form invariants (test support).
    ///
    /// # Panics
    ///
    /// Panics if any structural invariant is violated.
    #[doc(hidden)]
    pub fn assert_invariants(&self) {
        let counted = validate(&self.root, 0);
        assert_eq!(counted, self.len, "len bookkeeping");
    }
}

fn validate<T: Clone + Eq + Hash>(node: &Node<T>, shift: u32) -> usize {
    match node {
        Node::Collision(c) => {
            assert!(hash_exhausted(shift));
            assert!(c.elems.len() >= 2);
            for e in &c.elems {
                assert_eq!(hash32(e), c.hash);
            }
            c.elems.len()
        }
        Node::Bitmap(b) => {
            assert_eq!(b.datamap & b.nodemap, 0, "maps must be disjoint");
            assert_eq!(b.slots.len(), b.payload_arity() + b.node_arity());
            let mut total = 0;
            for (i, slot) in b.slots.iter().enumerate() {
                match slot {
                    Slot::Elem(e) => {
                        assert!(i < b.payload_arity());
                        let m = mask(hash32(e), shift);
                        assert!(b.datamap & bit_pos(m) != 0);
                        total += 1;
                    }
                    Slot::Child(child) => {
                        assert!(i >= b.payload_arity());
                        let sub = validate(child, next_shift(shift));
                        assert!(sub >= 2, "sub-trie with < 2 elements not inlined");
                        total += sub;
                    }
                }
            }
            if shift > 0 {
                assert!(!(b.payload_arity() == 1 && b.node_arity() == 0));
            }
            total
        }
    }
}

impl<T: Clone + Eq + Hash> Default for ChampSet<T> {
    fn default() -> Self {
        ChampSet::new()
    }
}

impl<T: Clone + Eq + Hash> PartialEq for ChampSet<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && node_eq(&self.root, &other.root)
    }
}

impl<T: Clone + Eq + Hash> Eq for ChampSet<T> {}

fn node_eq<T: Clone + Eq + Hash>(a: &Node<T>, b: &Node<T>) -> bool {
    match (a, b) {
        (Node::Bitmap(x), Node::Bitmap(y)) => {
            x.datamap == y.datamap
                && x.nodemap == y.nodemap
                && x.slots
                    .iter()
                    .zip(y.slots.iter())
                    .all(|(s, t)| match (s, t) {
                        (Slot::Elem(e), Slot::Elem(f)) => e == f,
                        (Slot::Child(c), Slot::Child(d)) => Arc::ptr_eq(c, d) || node_eq(c, d),
                        _ => false,
                    })
        }
        (Node::Collision(x), Node::Collision(y)) => {
            x.hash == y.hash
                && x.elems.len() == y.elems.len()
                && x.elems.iter().all(|e| y.elems.contains(e))
        }
        _ => false,
    }
}

impl<T: Clone + Eq + Hash> std::hash::Hash for ChampSet<T> {
    /// Order-independent hash (sum of element hashes).
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        let mut acc = 0u64;
        for v in self.iter() {
            acc = acc.wrapping_add(hash32(v) as u64);
        }
        state.write_u64(acc);
        state.write_usize(self.len);
    }
}

impl<T: std::fmt::Debug + Clone + Eq + Hash> std::fmt::Debug for ChampSet<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<T: Clone + Eq + Hash> FromIterator<T> for ChampSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        trie_common::ops::from_iter_via(iter)
    }
}

impl<T: Clone + Eq + Hash> Extend<T> for ChampSet<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        trie_common::ops::extend_via(self, iter);
    }
}

impl<'a, T: Clone + Eq + Hash> IntoIterator for &'a ChampSet<T> {
    type Item = &'a T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

enum Cursor<'a, T> {
    Bitmap { slots: &'a [Slot<T>], idx: usize },
    Collision { elems: &'a [T], idx: usize },
}

fn cursor_of<T>(node: &Node<T>) -> Cursor<'_, T> {
    match node {
        Node::Bitmap(b) => Cursor::Bitmap {
            slots: &b.slots,
            idx: 0,
        },
        Node::Collision(c) => Cursor::Collision {
            elems: &c.elems,
            idx: 0,
        },
    }
}

/// Iterator over set elements. Created by [`ChampSet::iter`].
pub struct Iter<'a, T> {
    stack: Vec<Cursor<'a, T>>,
    remaining: usize,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        loop {
            let top = self.stack.last_mut()?;
            match top {
                Cursor::Collision { elems, idx } => {
                    if *idx < elems.len() {
                        let out = &elems[*idx];
                        *idx += 1;
                        self.remaining -= 1;
                        return Some(out);
                    }
                    self.stack.pop();
                }
                Cursor::Bitmap { slots, idx } => {
                    if *idx >= slots.len() {
                        self.stack.pop();
                        continue;
                    }
                    let slot = &slots[*idx];
                    *idx += 1;
                    match slot {
                        Slot::Elem(e) => {
                            self.remaining -= 1;
                            return Some(e);
                        }
                        Slot::Child(child) => self.stack.push(cursor_of(child)),
                    }
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<'a, T> ExactSizeIterator for Iter<'a, T> {}

impl<'a, T> std::fmt::Debug for Iter<'a, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Iter")
            .field("remaining", &self.remaining)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::hash::Hasher;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Collide {
        bucket: u32,
        id: u32,
    }

    impl Hash for Collide {
        fn hash<H: Hasher>(&self, state: &mut H) {
            state.write_u32(self.bucket);
        }
    }

    #[test]
    fn basics_and_roundtrip() {
        let mut s = ChampSet::new();
        for i in 0..600u32 {
            assert!(s.insert_mut(i));
        }
        assert_eq!(s.len(), 600);
        s.assert_invariants();
        for i in 0..600u32 {
            assert!(s.contains(&i));
            assert!(s.remove_mut(&i));
        }
        assert!(s.is_empty());
        s.assert_invariants();
    }

    #[test]
    fn collisions() {
        let mut s = ChampSet::new();
        for id in 0..8 {
            s.insert_mut(Collide { bucket: 77, id });
        }
        assert_eq!(s.len(), 8);
        s.assert_invariants();
        for id in 0..7 {
            assert!(s.remove_mut(&Collide { bucket: 77, id }));
            s.assert_invariants();
        }
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn algebra() {
        let a: ChampSet<u32> = (0..20).collect();
        let b: ChampSet<u32> = (10..30).collect();
        assert_eq!(a.union(&b).len(), 30);
        assert_eq!(a.intersection(&b).len(), 10);
        assert_eq!(a.difference(&b).len(), 10);
        assert!(a.intersection(&b).is_subset(&a));
    }

    #[test]
    fn persistence_and_equality() {
        let v0: ChampSet<u32> = (0..100).collect();
        let v1 = v0.inserted(200);
        assert_eq!(v0.len(), 100);
        assert_ne!(v0, v1);
        assert_eq!(v0, v1.removed(&200));
        let elems: BTreeSet<u32> = v0.iter().copied().collect();
        assert_eq!(elems, (0..100).collect());
    }

    #[test]
    fn sole() {
        let s: ChampSet<u32> = std::iter::once(9).collect();
        assert_eq!(*s.sole(), 9);
    }
}
