//! The CHAMP persistent hash set (the map's sibling; see [`crate::map`]).
//!
//! Used by the evaluation as the nested collection of the map-of-sets
//! multi-map baseline (`idiomatic::NestedChampMultiMap`, the "CHAMP" column
//! of Table 1) and as a standalone set.
//!
//! # Examples
//!
//! ```
//! use champ::ChampSet;
//!
//! let s: ChampSet<u32> = (0..10).collect();
//! assert!(s.contains(&7));
//! assert_eq!(s.removed(&7).len(), 9);
//! assert_eq!(s.len(), 10); // persistent
//! ```

use std::borrow::Borrow;
use std::hash::Hash;
use std::sync::Arc;

use trie_common::bits::{bit_pos, hash_exhausted, index_in, mask, next_shift};
use trie_common::hash::hash32;
use trie_common::slices::{
    inserted_at as slice_inserted, inserted_at_owned, migrate_map, migrated as slice_migrated,
    removed_at as slice_removed, removed_at_owned, replaced_at as slice_replaced,
};

/// One physical slot: an element or a sub-trie.
#[derive(Debug, Clone)]
pub(crate) enum Slot<T> {
    Elem(T),
    Child(Arc<Node<T>>),
}

/// A CHAMP set node.
#[derive(Debug, Clone)]
pub(crate) struct BitmapNode<T> {
    pub(crate) datamap: u32,
    pub(crate) nodemap: u32,
    pub(crate) slots: Box<[Slot<T>]>,
}

impl<T> BitmapNode<T> {
    #[inline]
    pub(crate) fn payload_arity(&self) -> usize {
        self.datamap.count_ones() as usize
    }

    #[inline]
    pub(crate) fn node_arity(&self) -> usize {
        self.nodemap.count_ones() as usize
    }

    #[inline]
    fn data_index(&self, bit: u32) -> usize {
        index_in(self.datamap, bit)
    }

    #[inline]
    fn node_index(&self, bit: u32) -> usize {
        self.payload_arity() + index_in(self.nodemap, bit)
    }
}

/// Hash-collision overflow node.
#[derive(Debug, Clone)]
pub(crate) struct CollisionNode<T> {
    pub(crate) hash: u32,
    pub(crate) elems: Vec<T>,
}

/// A trie node.
#[derive(Debug, Clone)]
pub(crate) enum Node<T> {
    Bitmap(BitmapNode<T>),
    Collision(CollisionNode<T>),
}

pub(crate) enum Removed<T> {
    NotFound,
    Node(Node<T>),
    Single(T),
}

/// In-place removal outcome: edited nodes stay where they are, so only the
/// canonicalization payload travels upward.
pub(crate) enum EditRemoved<T> {
    NotFound,
    Removed,
    /// The sub-tree collapsed to one element (left in a consumed state; the
    /// parent drops it and inlines the survivor).
    Single(T),
}

impl<T: Clone + Eq + Hash> Node<T> {
    fn empty() -> Node<T> {
        Node::Bitmap(BitmapNode {
            datamap: 0,
            nodemap: 0,
            slots: Box::new([]),
        })
    }

    fn pair(h1: u32, e1: T, h2: u32, e2: T, shift: u32) -> Node<T> {
        if hash_exhausted(shift) {
            debug_assert_eq!(h1, h2);
            return Node::Collision(CollisionNode {
                hash: h1,
                elems: vec![e1, e2],
            });
        }
        let m1 = mask(h1, shift);
        let m2 = mask(h2, shift);
        if m1 == m2 {
            let child = Node::pair(h1, e1, h2, e2, next_shift(shift));
            Node::Bitmap(BitmapNode {
                datamap: 0,
                nodemap: bit_pos(m1),
                slots: Box::new([Slot::Child(Arc::new(child))]),
            })
        } else {
            let slots: Box<[Slot<T>]> = if m1 < m2 {
                Box::new([Slot::Elem(e1), Slot::Elem(e2)])
            } else {
                Box::new([Slot::Elem(e2), Slot::Elem(e1)])
            };
            Node::Bitmap(BitmapNode {
                datamap: bit_pos(m1) | bit_pos(m2),
                nodemap: 0,
                slots,
            })
        }
    }

    fn contains<Q>(&self, hash: u32, shift: u32, value: &Q) -> bool
    where
        T: Borrow<Q>,
        Q: Eq + ?Sized,
    {
        match self {
            Node::Collision(c) => c.elems.iter().any(|e| e.borrow() == value),
            Node::Bitmap(b) => {
                let bit = bit_pos(mask(hash, shift));
                if b.datamap & bit != 0 {
                    match &b.slots[b.data_index(bit)] {
                        Slot::Elem(e) => e.borrow() == value,
                        Slot::Child(_) => unreachable!("datamap says element"),
                    }
                } else if b.nodemap & bit != 0 {
                    match &b.slots[b.node_index(bit)] {
                        Slot::Child(child) => child.contains(hash, next_shift(shift), value),
                        Slot::Elem(_) => unreachable!("nodemap says child"),
                    }
                } else {
                    false
                }
            }
        }
    }

    fn inserted(&self, hash: u32, shift: u32, value: &T) -> Option<Node<T>> {
        match self {
            Node::Collision(c) => {
                debug_assert_eq!(c.hash, hash);
                if c.elems.iter().any(|e| e == value) {
                    return None;
                }
                let mut elems = c.elems.clone();
                elems.push(value.clone());
                Some(Node::Collision(CollisionNode {
                    hash: c.hash,
                    elems,
                }))
            }
            Node::Bitmap(b) => {
                let m = mask(hash, shift);
                let bit = bit_pos(m);
                if b.datamap & bit != 0 {
                    let idx = b.data_index(bit);
                    let existing = match &b.slots[idx] {
                        Slot::Elem(e) => e,
                        Slot::Child(_) => unreachable!("datamap says element"),
                    };
                    if existing == value {
                        return None;
                    }
                    let child = Node::pair(
                        hash32(existing),
                        existing.clone(),
                        hash,
                        value.clone(),
                        next_shift(shift),
                    );
                    let datamap = b.datamap & !bit;
                    let nodemap = b.nodemap | bit;
                    let to = (datamap.count_ones() as usize) + index_in(nodemap, bit);
                    Some(Node::Bitmap(BitmapNode {
                        datamap,
                        nodemap,
                        slots: slice_migrated(&b.slots, idx, to, Slot::Child(Arc::new(child))),
                    }))
                } else if b.nodemap & bit != 0 {
                    let idx = b.node_index(bit);
                    let child = match &b.slots[idx] {
                        Slot::Child(c) => c,
                        Slot::Elem(_) => unreachable!("nodemap says child"),
                    };
                    let new_child = child.inserted(hash, next_shift(shift), value)?;
                    Some(Node::Bitmap(BitmapNode {
                        datamap: b.datamap,
                        nodemap: b.nodemap,
                        slots: slice_replaced(&b.slots, idx, Slot::Child(Arc::new(new_child))),
                    }))
                } else {
                    let datamap = b.datamap | bit;
                    let idx = index_in(datamap, bit);
                    Some(Node::Bitmap(BitmapNode {
                        datamap,
                        nodemap: b.nodemap,
                        slots: slice_inserted(&b.slots, idx, Slot::Elem(value.clone())),
                    }))
                }
            }
        }
    }

    /// In-place insert driven by `Arc` uniqueness: a uniquely-owned node is
    /// edited directly (slots moved, never cloned), a shared node falls back
    /// to the persistent path copy for its whole subtree. Returns true if
    /// the set grew.
    fn insert_in_place(this: &mut Arc<Node<T>>, hash: u32, shift: u32, value: T) -> bool {
        match Arc::get_mut(this) {
            Some(Node::Collision(c)) => {
                debug_assert_eq!(c.hash, hash);
                if c.elems.contains(&value) {
                    return false;
                }
                c.elems.push(value);
                true
            }
            Some(Node::Bitmap(b)) => {
                let m = mask(hash, shift);
                let bit = bit_pos(m);
                if b.datamap & bit != 0 {
                    let idx = b.data_index(bit);
                    let existing = match &b.slots[idx] {
                        Slot::Elem(e) => e,
                        Slot::Child(_) => unreachable!("datamap says element"),
                    };
                    if *existing == value {
                        return false;
                    }
                    // The element migrates data group → node group in place.
                    let existing_hash = hash32(existing);
                    let datamap = b.datamap & !bit;
                    let nodemap = b.nodemap | bit;
                    let to = (datamap.count_ones() as usize) + index_in(nodemap, bit);
                    b.datamap = datamap;
                    b.nodemap = nodemap;
                    migrate_map(&mut b.slots, idx, to, |slot| {
                        let Slot::Elem(existing) = slot else {
                            unreachable!("datamap says element")
                        };
                        Slot::Child(Arc::new(Node::pair(
                            existing_hash,
                            existing,
                            hash,
                            value,
                            next_shift(shift),
                        )))
                    });
                    true
                } else if b.nodemap & bit != 0 {
                    let idx = b.node_index(bit);
                    let Slot::Child(child) = &mut b.slots[idx] else {
                        unreachable!("nodemap says child")
                    };
                    Node::insert_in_place(child, hash, next_shift(shift), value)
                } else {
                    b.datamap |= bit;
                    let idx = index_in(b.datamap, bit);
                    b.slots =
                        inserted_at_owned(std::mem::take(&mut b.slots), idx, Slot::Elem(value));
                    true
                }
            }
            None => match this.inserted(hash, shift, &value) {
                Some(node) => {
                    *this = Arc::new(node);
                    true
                }
                None => false,
            },
        }
    }

    /// In-place removal (same `Arc`-uniqueness discipline as
    /// [`Node::insert_in_place`]), canonicalizing exactly like
    /// [`Node::removed`].
    fn remove_in_place<Q>(
        this: &mut Arc<Node<T>>,
        hash: u32,
        shift: u32,
        value: &Q,
    ) -> EditRemoved<T>
    where
        T: Borrow<Q>,
        Q: Eq + ?Sized,
    {
        match Arc::get_mut(this) {
            Some(Node::Collision(c)) => {
                let Some(pos) = c.elems.iter().position(|e| e.borrow() == value) else {
                    return EditRemoved::NotFound;
                };
                if c.elems.len() == 2 {
                    return EditRemoved::Single(c.elems.swap_remove(1 - pos));
                }
                c.elems.swap_remove(pos);
                EditRemoved::Removed
            }
            Some(Node::Bitmap(b)) => {
                let m = mask(hash, shift);
                let bit = bit_pos(m);
                if b.datamap & bit != 0 {
                    let idx = b.data_index(bit);
                    let matches = match &b.slots[idx] {
                        Slot::Elem(e) => e.borrow() == value,
                        Slot::Child(_) => unreachable!("datamap says element"),
                    };
                    if !matches {
                        return EditRemoved::NotFound;
                    }
                    let datamap = b.datamap & !bit;
                    if shift > 0 && datamap.count_ones() == 1 && b.nodemap == 0 {
                        // The node held exactly two elements; hand the
                        // survivor (moved out) to the parent for inlining.
                        debug_assert_eq!(b.slots.len(), 2);
                        let mut slots = std::mem::take(&mut b.slots).into_vec();
                        let Slot::Elem(survivor) = slots.swap_remove(1 - idx) else {
                            unreachable!("both slots are payload")
                        };
                        return EditRemoved::Single(survivor);
                    }
                    b.datamap = datamap;
                    b.slots = removed_at_owned(std::mem::take(&mut b.slots), idx);
                    EditRemoved::Removed
                } else if b.nodemap & bit != 0 {
                    let idx = b.node_index(bit);
                    let Slot::Child(child) = &mut b.slots[idx] else {
                        unreachable!("nodemap says child")
                    };
                    match Node::remove_in_place(child, hash, next_shift(shift), value) {
                        EditRemoved::NotFound => EditRemoved::NotFound,
                        EditRemoved::Removed => EditRemoved::Removed,
                        EditRemoved::Single(e) => {
                            if shift > 0 && b.datamap == 0 && b.nodemap.count_ones() == 1 {
                                // A pure chain node dissolves: keep
                                // propagating the survivor upward.
                                return EditRemoved::Single(e);
                            }
                            // Inline the survivor: node group → data group
                            // in place, dropping the collapsed child.
                            let datamap = b.datamap | bit;
                            let nodemap = b.nodemap & !bit;
                            let to = index_in(datamap, bit);
                            b.datamap = datamap;
                            b.nodemap = nodemap;
                            migrate_map(&mut b.slots, idx, to, |_child| Slot::Elem(e));
                            EditRemoved::Removed
                        }
                    }
                } else {
                    EditRemoved::NotFound
                }
            }
            None => match this.removed(hash, shift, value) {
                Removed::NotFound => EditRemoved::NotFound,
                Removed::Node(n) => {
                    *this = Arc::new(n);
                    EditRemoved::Removed
                }
                Removed::Single(e) => EditRemoved::Single(e),
            },
        }
    }

    fn removed<Q>(&self, hash: u32, shift: u32, value: &Q) -> Removed<T>
    where
        T: Borrow<Q>,
        Q: Eq + ?Sized,
    {
        match self {
            Node::Collision(c) => {
                let Some(pos) = c.elems.iter().position(|e| e.borrow() == value) else {
                    return Removed::NotFound;
                };
                if c.elems.len() == 2 {
                    return Removed::Single(c.elems[1 - pos].clone());
                }
                let mut elems = c.elems.clone();
                elems.remove(pos);
                Removed::Node(Node::Collision(CollisionNode {
                    hash: c.hash,
                    elems,
                }))
            }
            Node::Bitmap(b) => {
                let m = mask(hash, shift);
                let bit = bit_pos(m);
                if b.datamap & bit != 0 {
                    let idx = b.data_index(bit);
                    let matches = match &b.slots[idx] {
                        Slot::Elem(e) => e.borrow() == value,
                        Slot::Child(_) => unreachable!("datamap says element"),
                    };
                    if !matches {
                        return Removed::NotFound;
                    }
                    let datamap = b.datamap & !bit;
                    if shift > 0 && datamap.count_ones() == 1 && b.nodemap == 0 {
                        debug_assert_eq!(b.slots.len(), 2);
                        let survivor = match &b.slots[1 - idx] {
                            Slot::Elem(e) => e.clone(),
                            Slot::Child(_) => unreachable!("both slots are payload"),
                        };
                        return Removed::Single(survivor);
                    }
                    Removed::Node(Node::Bitmap(BitmapNode {
                        datamap,
                        nodemap: b.nodemap,
                        slots: slice_removed(&b.slots, idx),
                    }))
                } else if b.nodemap & bit != 0 {
                    let idx = b.node_index(bit);
                    let child = match &b.slots[idx] {
                        Slot::Child(c) => c,
                        Slot::Elem(_) => unreachable!("nodemap says child"),
                    };
                    match child.removed(hash, next_shift(shift), value) {
                        Removed::NotFound => Removed::NotFound,
                        Removed::Node(n) => Removed::Node(Node::Bitmap(BitmapNode {
                            datamap: b.datamap,
                            nodemap: b.nodemap,
                            slots: slice_replaced(&b.slots, idx, Slot::Child(Arc::new(n))),
                        })),
                        Removed::Single(e) => {
                            if shift > 0 && b.datamap == 0 && b.nodemap.count_ones() == 1 {
                                return Removed::Single(e);
                            }
                            let datamap = b.datamap | bit;
                            let nodemap = b.nodemap & !bit;
                            let to = index_in(datamap, bit);
                            Removed::Node(Node::Bitmap(BitmapNode {
                                datamap,
                                nodemap,
                                slots: slice_migrated(&b.slots, idx, to, Slot::Elem(e)),
                            }))
                        }
                    }
                } else {
                    Removed::NotFound
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Structural set algebra: lockstep node walks (mirrors `axiom::set`, with
// the split datamap/nodemap bitmaps instead of the 2-bit `SlotBitmap`).
// CHAMP's canonical form makes `Arc::ptr_eq` a sound subtree-equivalence
// test, so shared subtrees short-circuit and bulk ops cost O(changed).
// ---------------------------------------------------------------------------

/// What one lockstep walk found at a mask position.
enum At<'a, T> {
    Nothing,
    Elem(&'a T),
    Sub(&'a Arc<Node<T>>),
}

fn at<'a, T>(b: &'a BitmapNode<T>, bit: u32) -> At<'a, T> {
    if b.datamap & bit != 0 {
        match &b.slots[b.data_index(bit)] {
            Slot::Elem(e) => At::Elem(e),
            Slot::Child(_) => unreachable!("datamap says element"),
        }
    } else if b.nodemap & bit != 0 {
        match &b.slots[b.node_index(bit)] {
            Slot::Child(c) => At::Sub(c),
            Slot::Elem(_) => unreachable!("nodemap says child"),
        }
    } else {
        At::Nothing
    }
}

/// A shrinking walk's result, driving canonicalization on the way up.
enum Cut<T> {
    /// The result equals the left operand's subtree: reuse its `Arc`.
    Unchanged,
    /// Nothing survives below this branch.
    Empty,
    /// Exactly one element survives: the parent inlines it.
    One(T),
    /// A rebuilt (canonical) node.
    Node(Node<T>),
}

/// Elements below `node` (walked, not stored; only non-shared subtrees are
/// ever counted, keeping bulk ops O(changed)).
fn node_len<T>(node: &Node<T>) -> usize {
    match node {
        Node::Collision(c) => c.elems.len(),
        Node::Bitmap(b) => b
            .slots
            .iter()
            .map(|s| match s {
                Slot::Elem(_) => 1,
                Slot::Child(c) => node_len(c),
            })
            .sum(),
    }
}

fn for_each_elem<T>(node: &Node<T>, f: &mut impl FnMut(&T)) {
    match node {
        Node::Collision(c) => c.elems.iter().for_each(&mut *f),
        Node::Bitmap(b) => {
            for s in &b.slots {
                match s {
                    Slot::Elem(e) => f(e),
                    Slot::Child(c) => for_each_elem(c, f),
                }
            }
        }
    }
}

/// Assembles a canonical bitmap node from the walked groups, collapsing
/// degenerate shapes (`Cut::Empty` / `Cut::One`) for the parent to inline.
fn assemble<T>(
    datamap: u32,
    nodemap: u32,
    mut payload: Vec<Slot<T>>,
    children: Vec<Slot<T>>,
) -> Cut<T> {
    match (payload.len(), children.len()) {
        (0, 0) => Cut::Empty,
        (1, 0) => match payload.pop() {
            Some(Slot::Elem(e)) => Cut::One(e),
            _ => unreachable!("payload group holds elements"),
        },
        _ => {
            payload.extend(children);
            Cut::Node(Node::Bitmap(BitmapNode {
                datamap,
                nodemap,
                slots: payload.into_boxed_slice(),
            }))
        }
    }
}

/// Lockstep union. Returns `(None, 0)` when the result equals `a` (the
/// caller reuses the `Arc`), else the new node plus how many elements it
/// gained relative to `a`.
fn union_nodes<T: Clone + Eq + Hash>(
    a: &Node<T>,
    b: &Node<T>,
    shift: u32,
) -> (Option<Node<T>>, usize) {
    match (a, b) {
        (Node::Collision(x), Node::Collision(y)) => {
            debug_assert_eq!(x.hash, y.hash, "lockstep paths fix the full hash");
            let fresh: Vec<&T> = y.elems.iter().filter(|e| !x.elems.contains(e)).collect();
            if fresh.is_empty() {
                return (None, 0);
            }
            let added = fresh.len();
            let mut elems = x.elems.clone();
            elems.extend(fresh.into_iter().cloned());
            (
                Some(Node::Collision(CollisionNode {
                    hash: x.hash,
                    elems,
                })),
                added,
            )
        }
        (Node::Bitmap(x), Node::Bitmap(y)) => {
            let mut datamap = 0u32;
            let mut nodemap = 0u32;
            let mut payload: Vec<Slot<T>> = Vec::new();
            let mut children: Vec<Slot<T>> = Vec::new();
            let mut added = 0usize;
            let mut changed = false;
            for m in 0..32u32 {
                let bit = bit_pos(m);
                match (at(x, bit), at(y, bit)) {
                    (At::Nothing, At::Nothing) => {}
                    (At::Elem(ea), At::Nothing) => {
                        datamap |= bit;
                        payload.push(Slot::Elem(ea.clone()));
                    }
                    (At::Nothing, At::Elem(eb)) => {
                        datamap |= bit;
                        payload.push(Slot::Elem(eb.clone()));
                        added += 1;
                        changed = true;
                    }
                    (At::Sub(ac), At::Nothing) => {
                        nodemap |= bit;
                        children.push(Slot::Child(Arc::clone(ac)));
                    }
                    (At::Nothing, At::Sub(bc)) => {
                        nodemap |= bit;
                        added += node_len(bc);
                        children.push(Slot::Child(Arc::clone(bc)));
                        changed = true;
                    }
                    (At::Elem(ea), At::Elem(eb)) => {
                        if ea == eb {
                            datamap |= bit;
                            payload.push(Slot::Elem(ea.clone()));
                        } else {
                            nodemap |= bit;
                            let child = Node::pair(
                                hash32(ea),
                                ea.clone(),
                                hash32(eb),
                                eb.clone(),
                                next_shift(shift),
                            );
                            children.push(Slot::Child(Arc::new(child)));
                            added += 1;
                            changed = true;
                        }
                    }
                    (At::Elem(ea), At::Sub(bc)) => {
                        // `a`'s lone element joins (or is absorbed by) `b`'s
                        // subtree; either way the slot becomes a child.
                        nodemap |= bit;
                        match bc.inserted(hash32(ea), next_shift(shift), ea) {
                            None => {
                                added += node_len(bc) - 1;
                                children.push(Slot::Child(Arc::clone(bc)));
                            }
                            Some(n) => {
                                added += node_len(bc);
                                children.push(Slot::Child(Arc::new(n)));
                            }
                        }
                        changed = true;
                    }
                    (At::Sub(ac), At::Elem(eb)) => {
                        nodemap |= bit;
                        match ac.inserted(hash32(eb), next_shift(shift), eb) {
                            None => children.push(Slot::Child(Arc::clone(ac))),
                            Some(n) => {
                                children.push(Slot::Child(Arc::new(n)));
                                added += 1;
                                changed = true;
                            }
                        }
                    }
                    (At::Sub(ac), At::Sub(bc)) => {
                        nodemap |= bit;
                        if Arc::ptr_eq(ac, bc) {
                            children.push(Slot::Child(Arc::clone(ac)));
                        } else {
                            match union_nodes(ac, bc, next_shift(shift)) {
                                (None, _) => children.push(Slot::Child(Arc::clone(ac))),
                                (Some(n), add) => {
                                    children.push(Slot::Child(Arc::new(n)));
                                    added += add;
                                    changed = true;
                                }
                            }
                        }
                    }
                }
            }
            if !changed {
                return (None, 0);
            }
            payload.extend(children);
            (
                Some(Node::Bitmap(BitmapNode {
                    datamap,
                    nodemap,
                    slots: payload.into_boxed_slice(),
                })),
                added,
            )
        }
        _ => unreachable!("canonical tries align node kinds at equal depth"),
    }
}

/// Lockstep intersection. Returns the surviving shape plus how many of `a`'s
/// elements were dropped (`Cut::Unchanged` ⇒ 0).
fn intersect_nodes<T: Clone + Eq + Hash>(a: &Node<T>, b: &Node<T>, shift: u32) -> (Cut<T>, usize) {
    match (a, b) {
        (Node::Collision(x), Node::Collision(y)) => {
            debug_assert_eq!(x.hash, y.hash, "lockstep paths fix the full hash");
            let mut kept: Vec<T> = x
                .elems
                .iter()
                .filter(|e| y.elems.contains(e))
                .cloned()
                .collect();
            let removed = x.elems.len() - kept.len();
            match kept.len() {
                n if n == x.elems.len() => (Cut::Unchanged, 0),
                0 => (Cut::Empty, removed),
                1 => (Cut::One(kept.pop().expect("len == 1")), removed),
                _ => (
                    Cut::Node(Node::Collision(CollisionNode {
                        hash: x.hash,
                        elems: kept,
                    })),
                    removed,
                ),
            }
        }
        (Node::Bitmap(x), Node::Bitmap(y)) => {
            let mut datamap = 0u32;
            let mut nodemap = 0u32;
            let mut payload: Vec<Slot<T>> = Vec::new();
            let mut children: Vec<Slot<T>> = Vec::new();
            let mut removed = 0usize;
            let mut changed = false;
            for m in 0..32u32 {
                let bit = bit_pos(m);
                let pos_a = at(x, bit);
                if matches!(pos_a, At::Nothing) {
                    continue;
                }
                match (pos_a, at(y, bit)) {
                    (At::Elem(_), At::Nothing) => {
                        removed += 1;
                        changed = true;
                    }
                    (At::Elem(ea), At::Elem(eb)) => {
                        if ea == eb {
                            datamap |= bit;
                            payload.push(Slot::Elem(ea.clone()));
                        } else {
                            removed += 1;
                            changed = true;
                        }
                    }
                    (At::Elem(ea), At::Sub(bc)) => {
                        if bc.contains(hash32(ea), next_shift(shift), ea) {
                            datamap |= bit;
                            payload.push(Slot::Elem(ea.clone()));
                        } else {
                            removed += 1;
                            changed = true;
                        }
                    }
                    (At::Sub(ac), At::Nothing) => {
                        removed += node_len(ac);
                        changed = true;
                    }
                    (At::Sub(ac), At::Elem(eb)) => {
                        let total = node_len(ac);
                        if ac.contains(hash32(eb), next_shift(shift), eb) {
                            // The intersection of this subtree with a lone
                            // element is that element, inlined.
                            datamap |= bit;
                            payload.push(Slot::Elem(eb.clone()));
                            removed += total - 1;
                        } else {
                            removed += total;
                        }
                        changed = true;
                    }
                    (At::Sub(ac), At::Sub(bc)) => {
                        if Arc::ptr_eq(ac, bc) {
                            nodemap |= bit;
                            children.push(Slot::Child(Arc::clone(ac)));
                            continue;
                        }
                        match intersect_nodes(ac, bc, next_shift(shift)) {
                            (Cut::Unchanged, _) => {
                                nodemap |= bit;
                                children.push(Slot::Child(Arc::clone(ac)));
                            }
                            (Cut::Empty, r) => {
                                removed += r;
                                changed = true;
                            }
                            (Cut::One(e), r) => {
                                datamap |= bit;
                                payload.push(Slot::Elem(e));
                                removed += r;
                                changed = true;
                            }
                            (Cut::Node(n), r) => {
                                nodemap |= bit;
                                children.push(Slot::Child(Arc::new(n)));
                                removed += r;
                                changed = true;
                            }
                        }
                    }
                    (At::Nothing, _) => unreachable!("filtered above"),
                }
            }
            if !changed {
                return (Cut::Unchanged, 0);
            }
            (assemble(datamap, nodemap, payload, children), removed)
        }
        _ => unreachable!("canonical tries align node kinds at equal depth"),
    }
}

/// Lockstep difference (`a \ b`). Returns the surviving shape plus how many
/// elements survive (`Cut::Unchanged` ⇒ the whole subtree, counted).
fn difference_nodes<T: Clone + Eq + Hash>(a: &Node<T>, b: &Node<T>, shift: u32) -> (Cut<T>, usize) {
    match (a, b) {
        (Node::Collision(x), Node::Collision(y)) => {
            debug_assert_eq!(x.hash, y.hash, "lockstep paths fix the full hash");
            let mut kept: Vec<T> = x
                .elems
                .iter()
                .filter(|e| !y.elems.contains(e))
                .cloned()
                .collect();
            match kept.len() {
                n if n == x.elems.len() => (Cut::Unchanged, n),
                0 => (Cut::Empty, 0),
                1 => (Cut::One(kept.pop().expect("len == 1")), 1),
                n => (
                    Cut::Node(Node::Collision(CollisionNode {
                        hash: x.hash,
                        elems: kept,
                    })),
                    n,
                ),
            }
        }
        (Node::Bitmap(x), Node::Bitmap(y)) => {
            let mut datamap = 0u32;
            let mut nodemap = 0u32;
            let mut payload: Vec<Slot<T>> = Vec::new();
            let mut children: Vec<Slot<T>> = Vec::new();
            let mut kept = 0usize;
            let mut changed = false;
            for m in 0..32u32 {
                let bit = bit_pos(m);
                let pos_a = at(x, bit);
                if matches!(pos_a, At::Nothing) {
                    continue;
                }
                match (pos_a, at(y, bit)) {
                    (At::Elem(ea), At::Nothing) => {
                        datamap |= bit;
                        payload.push(Slot::Elem(ea.clone()));
                        kept += 1;
                    }
                    (At::Elem(ea), At::Elem(eb)) => {
                        if ea == eb {
                            changed = true;
                        } else {
                            datamap |= bit;
                            payload.push(Slot::Elem(ea.clone()));
                            kept += 1;
                        }
                    }
                    (At::Elem(ea), At::Sub(bc)) => {
                        if bc.contains(hash32(ea), next_shift(shift), ea) {
                            changed = true;
                        } else {
                            datamap |= bit;
                            payload.push(Slot::Elem(ea.clone()));
                            kept += 1;
                        }
                    }
                    (At::Sub(ac), At::Nothing) => {
                        nodemap |= bit;
                        children.push(Slot::Child(Arc::clone(ac)));
                        kept += node_len(ac);
                    }
                    (At::Sub(ac), At::Elem(eb)) => {
                        match ac.removed(hash32(eb), next_shift(shift), eb) {
                            Removed::NotFound => {
                                nodemap |= bit;
                                children.push(Slot::Child(Arc::clone(ac)));
                                kept += node_len(ac);
                            }
                            Removed::Node(n) => {
                                kept += node_len(&n);
                                nodemap |= bit;
                                children.push(Slot::Child(Arc::new(n)));
                                changed = true;
                            }
                            Removed::Single(e) => {
                                datamap |= bit;
                                payload.push(Slot::Elem(e));
                                kept += 1;
                                changed = true;
                            }
                        }
                    }
                    (At::Sub(ac), At::Sub(bc)) => {
                        if Arc::ptr_eq(ac, bc) {
                            // The entire shared subtree cancels out.
                            changed = true;
                            continue;
                        }
                        match difference_nodes(ac, bc, next_shift(shift)) {
                            (Cut::Unchanged, k) => {
                                nodemap |= bit;
                                children.push(Slot::Child(Arc::clone(ac)));
                                kept += k;
                            }
                            (Cut::Empty, _) => changed = true,
                            (Cut::One(e), _) => {
                                datamap |= bit;
                                payload.push(Slot::Elem(e));
                                kept += 1;
                                changed = true;
                            }
                            (Cut::Node(n), k) => {
                                nodemap |= bit;
                                children.push(Slot::Child(Arc::new(n)));
                                kept += k;
                                changed = true;
                            }
                        }
                    }
                    (At::Nothing, _) => unreachable!("filtered above"),
                }
            }
            if !changed {
                return (Cut::Unchanged, kept);
            }
            (assemble(datamap, nodemap, payload, children), kept)
        }
        _ => unreachable!("canonical tries align node kinds at equal depth"),
    }
}

/// Lockstep diff (`a` old, `b` new): pointer-identical subtrees emit
/// nothing, so the output and the walk are both O(changed).
fn diff_nodes<T: Clone + Eq + Hash>(
    a: &Node<T>,
    b: &Node<T>,
    shift: u32,
    out: &mut trie_common::ops::SetDiff<T>,
) {
    match (a, b) {
        (Node::Collision(x), Node::Collision(y)) => {
            debug_assert_eq!(x.hash, y.hash, "lockstep paths fix the full hash");
            for e in &x.elems {
                if !y.elems.contains(e) {
                    out.removed.push(e.clone());
                }
            }
            for e in &y.elems {
                if !x.elems.contains(e) {
                    out.added.push(e.clone());
                }
            }
        }
        (Node::Bitmap(x), Node::Bitmap(y)) => {
            for m in 0..32u32 {
                let bit = bit_pos(m);
                match (at(x, bit), at(y, bit)) {
                    (At::Nothing, At::Nothing) => {}
                    (At::Elem(ea), At::Nothing) => out.removed.push(ea.clone()),
                    (At::Nothing, At::Elem(eb)) => out.added.push(eb.clone()),
                    (At::Sub(ac), At::Nothing) => {
                        for_each_elem(ac, &mut |e| out.removed.push(e.clone()));
                    }
                    (At::Nothing, At::Sub(bc)) => {
                        for_each_elem(bc, &mut |e| out.added.push(e.clone()));
                    }
                    (At::Elem(ea), At::Elem(eb)) => {
                        if ea != eb {
                            out.removed.push(ea.clone());
                            out.added.push(eb.clone());
                        }
                    }
                    (At::Elem(ea), At::Sub(bc)) => {
                        if !bc.contains(hash32(ea), next_shift(shift), ea) {
                            out.removed.push(ea.clone());
                        }
                        for_each_elem(bc, &mut |e| {
                            if e != ea {
                                out.added.push(e.clone());
                            }
                        });
                    }
                    (At::Sub(ac), At::Elem(eb)) => {
                        if !ac.contains(hash32(eb), next_shift(shift), eb) {
                            out.added.push(eb.clone());
                        }
                        for_each_elem(ac, &mut |e| {
                            if e != eb {
                                out.removed.push(e.clone());
                            }
                        });
                    }
                    (At::Sub(ac), At::Sub(bc)) => {
                        if !Arc::ptr_eq(ac, bc) {
                            diff_nodes(ac, bc, next_shift(shift), out);
                        }
                    }
                }
            }
        }
        _ => unreachable!("canonical tries align node kinds at equal depth"),
    }
}

/// A persistent hash set with the CHAMP encoding. See the
/// [module documentation](self).
pub struct ChampSet<T> {
    pub(crate) root: Arc<Node<T>>,
    pub(crate) len: usize,
}

impl<T> Clone for ChampSet<T> {
    fn clone(&self) -> Self {
        ChampSet {
            root: Arc::clone(&self.root),
            len: self.len,
        }
    }
}

impl<T: Clone + Eq + Hash> ChampSet<T> {
    /// Creates an empty set.
    pub fn new() -> Self {
        ChampSet {
            root: Arc::new(Node::empty()),
            len: 0,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the set holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test.
    pub fn contains<Q>(&self, value: &Q) -> bool
    where
        T: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.root.contains(hash32(value), 0, value)
    }

    /// Returns a set including `value`; `self` is unchanged.
    pub fn inserted(&self, value: T) -> Self {
        let mut next = self.clone();
        next.insert_mut(value);
        next
    }

    /// Inserts `value` in place: uniquely-owned trie nodes along the spine
    /// are edited directly, shared nodes are path-copied. Returns true if
    /// the set grew.
    pub fn insert_mut(&mut self, value: T) -> bool {
        let hash = hash32(&value);
        if Node::insert_in_place(&mut self.root, hash, 0, value) {
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Returns a set excluding `value`; `self` is unchanged.
    pub fn removed<Q>(&self, value: &Q) -> Self
    where
        T: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        let mut next = self.clone();
        next.remove_mut(value);
        next
    }

    /// Removes `value` in place: uniquely-owned trie nodes along the spine
    /// are edited directly, shared nodes are path-copied. Returns true if
    /// the set shrank.
    pub fn remove_mut<Q>(&mut self, value: &Q) -> bool
    where
        T: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        match Node::remove_in_place(&mut self.root, hash32(value), 0, value) {
            EditRemoved::NotFound => false,
            EditRemoved::Removed => {
                self.len -= 1;
                true
            }
            EditRemoved::Single(survivor) => {
                let root = Node::empty()
                    .inserted(hash32(&survivor), 0, &survivor)
                    .expect("inserting into empty");
                self.root = Arc::new(root);
                self.len -= 1;
                true
            }
        }
    }

    /// The sole element of a singleton set.
    ///
    /// # Panics
    ///
    /// Panics if the set does not hold exactly one element.
    pub fn sole(&self) -> &T {
        assert_eq!(self.len, 1, "sole() requires a singleton set");
        self.iter().next().expect("len == 1")
    }

    /// Iterates the elements in unspecified (trie) order.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            stack: vec![cursor_of(&self.root)],
            remaining: self.len,
        }
    }

    /// Rebuilds the one-element set (canonicalization helper).
    fn singleton(value: T) -> Self {
        let root = Node::empty()
            .inserted(hash32(&value), 0, &value)
            .expect("inserting into empty");
        ChampSet {
            root: Arc::new(root),
            len: 1,
        }
    }

    /// Union of two sets via a lockstep structural walk: subtrees the
    /// operands share by pointer are reused wholesale, so the cost is
    /// O(changed) — and a self-union returns `self` without allocating.
    pub fn union(&self, other: &Self) -> Self {
        if other.is_empty() || Arc::ptr_eq(&self.root, &other.root) {
            return self.clone();
        }
        if self.is_empty() {
            return other.clone();
        }
        match union_nodes(&self.root, &other.root, 0) {
            (None, _) => self.clone(),
            (Some(node), added) => ChampSet {
                root: Arc::new(node),
                len: self.len + added,
            },
        }
    }

    /// Intersection of two sets via a lockstep structural walk (shared
    /// subtrees survive by pointer, cost O(changed)).
    pub fn intersect(&self, other: &Self) -> Self {
        if self.is_empty() || Arc::ptr_eq(&self.root, &other.root) {
            return self.clone();
        }
        if other.is_empty() {
            return ChampSet::new();
        }
        match intersect_nodes(&self.root, &other.root, 0) {
            (Cut::Unchanged, _) => self.clone(),
            (Cut::Empty, _) => ChampSet::new(),
            (Cut::One(e), _) => Self::singleton(e),
            (Cut::Node(n), removed) => ChampSet {
                root: Arc::new(n),
                len: self.len - removed,
            },
        }
    }

    /// Elements of `self` not in `other`, via a lockstep structural walk
    /// (a shared subtree cancels out in O(1)).
    pub fn difference(&self, other: &Self) -> Self {
        if self.is_empty() || other.is_empty() {
            return self.clone();
        }
        if Arc::ptr_eq(&self.root, &other.root) {
            return ChampSet::new();
        }
        match difference_nodes(&self.root, &other.root, 0) {
            (Cut::Unchanged, _) => self.clone(),
            (Cut::Empty, _) => ChampSet::new(),
            (Cut::One(e), _) => Self::singleton(e),
            (Cut::Node(n), kept) => ChampSet {
                root: Arc::new(n),
                len: kept,
            },
        }
    }

    /// What changed between `self` (old) and `other` (new): pointer-shared
    /// subtrees emit nothing, so output and walk are both O(changed).
    pub fn diff(&self, other: &Self) -> trie_common::ops::SetDiff<T> {
        let mut out = trie_common::ops::SetDiff::new();
        if Arc::ptr_eq(&self.root, &other.root) {
            return out;
        }
        if self.is_empty() {
            out.added.extend(other.iter().cloned());
            return out;
        }
        if other.is_empty() {
            out.removed.extend(self.iter().cloned());
            return out;
        }
        diff_nodes(&self.root, &other.root, 0, &mut out);
        out
    }

    /// Element-wise union: iterates the smaller into the larger. Retained as
    /// the documented fallback path (differential-testing and benchmark
    /// baseline for the structural walk).
    pub fn union_elementwise(&self, other: &Self) -> Self {
        let (big, small) = if self.len >= other.len {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = big.clone();
        for v in small.iter() {
            out.insert_mut(v.clone());
        }
        out
    }

    /// Element-wise intersection: scans the smaller, probes the larger.
    /// Retained as the documented fallback path (differential-testing and
    /// benchmark baseline for the structural walk).
    pub fn intersect_elementwise(&self, other: &Self) -> Self {
        let (probe, scan) = if self.len >= other.len {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = ChampSet::new();
        for v in scan.iter() {
            if probe.contains(v) {
                out.insert_mut(v.clone());
            }
        }
        out
    }

    /// Element-wise difference: probes `other` per element. Retained as the
    /// documented fallback path (differential-testing and benchmark baseline
    /// for the structural walk).
    pub fn difference_elementwise(&self, other: &Self) -> Self {
        let mut out = ChampSet::new();
        for v in self.iter() {
            if !other.contains(v) {
                out.insert_mut(v.clone());
            }
        }
        out
    }

    /// True if every element of `self` is in `other`.
    pub fn is_subset(&self, other: &Self) -> bool {
        self.len <= other.len && self.iter().all(|v| other.contains(v))
    }

    pub(crate) fn root_node(&self) -> &Node<T> {
        &self.root
    }

    /// Recursively checks the canonical-form invariants (test support).
    ///
    /// # Panics
    ///
    /// Panics if any structural invariant is violated.
    #[doc(hidden)]
    pub fn assert_invariants(&self) {
        let counted = validate(&self.root, 0);
        assert_eq!(counted, self.len, "len bookkeeping");
    }
}

fn validate<T: Clone + Eq + Hash>(node: &Node<T>, shift: u32) -> usize {
    match node {
        Node::Collision(c) => {
            assert!(hash_exhausted(shift));
            assert!(c.elems.len() >= 2);
            for e in &c.elems {
                assert_eq!(hash32(e), c.hash);
            }
            c.elems.len()
        }
        Node::Bitmap(b) => {
            assert_eq!(b.datamap & b.nodemap, 0, "maps must be disjoint");
            assert_eq!(b.slots.len(), b.payload_arity() + b.node_arity());
            let mut total = 0;
            for (i, slot) in b.slots.iter().enumerate() {
                match slot {
                    Slot::Elem(e) => {
                        assert!(i < b.payload_arity());
                        let m = mask(hash32(e), shift);
                        assert!(b.datamap & bit_pos(m) != 0);
                        total += 1;
                    }
                    Slot::Child(child) => {
                        assert!(i >= b.payload_arity());
                        let sub = validate(child, next_shift(shift));
                        assert!(sub >= 2, "sub-trie with < 2 elements not inlined");
                        total += sub;
                    }
                }
            }
            if shift > 0 {
                assert!(!(b.payload_arity() == 1 && b.node_arity() == 0));
            }
            total
        }
    }
}

impl<T: Clone + Eq + Hash> Default for ChampSet<T> {
    fn default() -> Self {
        ChampSet::new()
    }
}

impl<T: Clone + Eq + Hash> std::ops::BitOr for &ChampSet<T> {
    type Output = ChampSet<T>;

    /// `a | b` is the structural [`union`](ChampSet::union).
    fn bitor(self, rhs: Self) -> ChampSet<T> {
        self.union(rhs)
    }
}

impl<T: Clone + Eq + Hash> std::ops::BitAnd for &ChampSet<T> {
    type Output = ChampSet<T>;

    /// `a & b` is the structural [`intersect`](ChampSet::intersect).
    fn bitand(self, rhs: Self) -> ChampSet<T> {
        self.intersect(rhs)
    }
}

impl<T: Clone + Eq + Hash> std::ops::Sub for &ChampSet<T> {
    type Output = ChampSet<T>;

    /// `a - b` is the structural [`difference`](ChampSet::difference).
    fn sub(self, rhs: Self) -> ChampSet<T> {
        self.difference(rhs)
    }
}

impl<T: Clone + Eq + Hash> PartialEq for ChampSet<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && node_eq(&self.root, &other.root)
    }
}

impl<T: Clone + Eq + Hash> Eq for ChampSet<T> {}

fn node_eq<T: Clone + Eq + Hash>(a: &Node<T>, b: &Node<T>) -> bool {
    match (a, b) {
        (Node::Bitmap(x), Node::Bitmap(y)) => {
            x.datamap == y.datamap
                && x.nodemap == y.nodemap
                && x.slots
                    .iter()
                    .zip(y.slots.iter())
                    .all(|(s, t)| match (s, t) {
                        (Slot::Elem(e), Slot::Elem(f)) => e == f,
                        (Slot::Child(c), Slot::Child(d)) => Arc::ptr_eq(c, d) || node_eq(c, d),
                        _ => false,
                    })
        }
        (Node::Collision(x), Node::Collision(y)) => {
            x.hash == y.hash
                && x.elems.len() == y.elems.len()
                && x.elems.iter().all(|e| y.elems.contains(e))
        }
        _ => false,
    }
}

impl<T: Clone + Eq + Hash> std::hash::Hash for ChampSet<T> {
    /// Order-independent hash (sum of element hashes).
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        let mut acc = 0u64;
        for v in self.iter() {
            acc = acc.wrapping_add(hash32(v) as u64);
        }
        state.write_u64(acc);
        state.write_usize(self.len);
    }
}

impl<T: std::fmt::Debug + Clone + Eq + Hash> std::fmt::Debug for ChampSet<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<T: Clone + Eq + Hash> FromIterator<T> for ChampSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        trie_common::ops::from_iter_via(iter)
    }
}

impl<T: Clone + Eq + Hash> Extend<T> for ChampSet<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        trie_common::ops::extend_via(self, iter);
    }
}

impl<'a, T: Clone + Eq + Hash> IntoIterator for &'a ChampSet<T> {
    type Item = &'a T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

enum Cursor<'a, T> {
    Bitmap { slots: &'a [Slot<T>], idx: usize },
    Collision { elems: &'a [T], idx: usize },
}

fn cursor_of<T>(node: &Node<T>) -> Cursor<'_, T> {
    match node {
        Node::Bitmap(b) => Cursor::Bitmap {
            slots: &b.slots,
            idx: 0,
        },
        Node::Collision(c) => Cursor::Collision {
            elems: &c.elems,
            idx: 0,
        },
    }
}

/// Iterator over set elements. Created by [`ChampSet::iter`].
pub struct Iter<'a, T> {
    stack: Vec<Cursor<'a, T>>,
    remaining: usize,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        loop {
            let top = self.stack.last_mut()?;
            match top {
                Cursor::Collision { elems, idx } => {
                    if *idx < elems.len() {
                        let out = &elems[*idx];
                        *idx += 1;
                        self.remaining -= 1;
                        return Some(out);
                    }
                    self.stack.pop();
                }
                Cursor::Bitmap { slots, idx } => {
                    if *idx >= slots.len() {
                        self.stack.pop();
                        continue;
                    }
                    let slot = &slots[*idx];
                    *idx += 1;
                    match slot {
                        Slot::Elem(e) => {
                            self.remaining -= 1;
                            return Some(e);
                        }
                        Slot::Child(child) => self.stack.push(cursor_of(child)),
                    }
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<'a, T> ExactSizeIterator for Iter<'a, T> {}

impl<'a, T> std::fmt::Debug for Iter<'a, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Iter")
            .field("remaining", &self.remaining)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::hash::Hasher;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Collide {
        bucket: u32,
        id: u32,
    }

    impl Hash for Collide {
        fn hash<H: Hasher>(&self, state: &mut H) {
            state.write_u32(self.bucket);
        }
    }

    #[test]
    fn basics_and_roundtrip() {
        let mut s = ChampSet::new();
        for i in 0..600u32 {
            assert!(s.insert_mut(i));
        }
        assert_eq!(s.len(), 600);
        s.assert_invariants();
        for i in 0..600u32 {
            assert!(s.contains(&i));
            assert!(s.remove_mut(&i));
        }
        assert!(s.is_empty());
        s.assert_invariants();
    }

    #[test]
    fn collisions() {
        let mut s = ChampSet::new();
        for id in 0..8 {
            s.insert_mut(Collide { bucket: 77, id });
        }
        assert_eq!(s.len(), 8);
        s.assert_invariants();
        for id in 0..7 {
            assert!(s.remove_mut(&Collide { bucket: 77, id }));
            s.assert_invariants();
        }
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn algebra() {
        let a: ChampSet<u32> = (0..20).collect();
        let b: ChampSet<u32> = (10..30).collect();
        assert_eq!(a.union(&b).len(), 30);
        assert_eq!(a.intersect(&b).len(), 10);
        assert_eq!(a.difference(&b).len(), 10);
        assert!(a.intersect(&b).is_subset(&a));
        // Structural and element-wise paths agree.
        assert_eq!(a.union(&b), a.union_elementwise(&b));
        assert_eq!(a.intersect(&b), a.intersect_elementwise(&b));
        assert_eq!(a.difference(&b), a.difference_elementwise(&b));
        // Operator sugar routes through the structural walks.
        assert_eq!(&a | &b, a.union(&b));
        assert_eq!(&a & &b, a.intersect(&b));
        assert_eq!(&a - &b, a.difference(&b));
    }

    #[test]
    fn algebra_shares_structure() {
        let a: ChampSet<u32> = (0..1000).collect();
        let b = a.inserted(5000);
        assert_eq!(a.union(&b), b);
        let self_union = a.union(&a.clone());
        assert!(Arc::ptr_eq(&self_union.root, &a.root));
        let back = b.union(&a);
        assert!(Arc::ptr_eq(&back.root, &b.root));
        let inter = a.intersect(&b);
        assert!(Arc::ptr_eq(&inter.root, &a.root));
        assert!(a.difference(&a.clone()).is_empty());
        assert_eq!(b.difference(&a).len(), 1);
        a.union(&b).assert_invariants();
    }

    #[test]
    fn diff_is_sparse() {
        let a: ChampSet<u32> = (0..1000).collect();
        let mut b = a.clone();
        b.insert_mut(7777);
        b.remove_mut(&13);
        let d = a.diff(&b);
        assert_eq!(d.added, vec![7777]);
        assert_eq!(d.removed, vec![13]);
        assert!(a.diff(&a.clone()).is_empty());
    }

    #[test]
    fn algebra_with_collisions() {
        let a: ChampSet<Collide> = (0..40).map(|id| Collide { bucket: id % 4, id }).collect();
        let b: ChampSet<Collide> = (20..60).map(|id| Collide { bucket: id % 4, id }).collect();
        let union = a.union(&b);
        let inter = a.intersect(&b);
        let diff = a.difference(&b);
        assert_eq!(union.len(), 60);
        assert_eq!(inter.len(), 20);
        assert_eq!(diff.len(), 20);
        assert_eq!(union, a.union_elementwise(&b));
        assert_eq!(inter, a.intersect_elementwise(&b));
        assert_eq!(diff, a.difference_elementwise(&b));
        union.assert_invariants();
        inter.assert_invariants();
        diff.assert_invariants();
        let d = a.diff(&b);
        assert_eq!(d.added.len(), 20);
        assert_eq!(d.removed.len(), 20);
    }

    #[test]
    fn persistence_and_equality() {
        let v0: ChampSet<u32> = (0..100).collect();
        let v1 = v0.inserted(200);
        assert_eq!(v0.len(), 100);
        assert_ne!(v0, v1);
        assert_eq!(v0, v1.removed(&200));
        let elems: BTreeSet<u32> = v0.iter().copied().collect();
        assert_eq!(elems, (0..100).collect());
    }

    #[test]
    fn sole() {
        let s: ChampSet<u32> = std::iter::once(9).collect();
        assert_eq!(*s.sole(), 9);
    }
}
