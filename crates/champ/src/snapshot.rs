//! Snapshot persistence ([`SnapshotWrite`] / [`SnapshotRead`]) for the
//! CHAMP collections. CHAMP is canonical under deletion, so a decoded
//! snapshot is structurally identical to (and `==`) the source trie.

use std::hash::Hash;

use serde::{Deserialize, Serialize};
use trie_common::ops::{MapOps, SetOps};
use trie_common::snapshot::{self, Kind, SnapshotError, SnapshotRead, SnapshotWrite};

use crate::{ChampMap, ChampSet};

impl<K, V> SnapshotWrite for ChampMap<K, V>
where
    K: Serialize + Clone + Eq + Hash,
    V: Serialize + Clone + PartialEq,
{
    const KIND: Kind = Kind::Map;

    fn write_snapshot(&self, out: &mut Vec<u8>) -> Result<(), SnapshotError> {
        snapshot::write_collection(Kind::Map, MapOps::entries(self), out)
    }
}

impl<K, V> SnapshotRead for ChampMap<K, V>
where
    K: for<'de> Deserialize<'de> + Clone + Eq + Hash,
    V: for<'de> Deserialize<'de> + Clone + PartialEq,
{
    fn read_snapshot(bytes: &[u8]) -> Result<Self, SnapshotError> {
        snapshot::read_collection(Kind::Map, bytes)
    }
}

impl<T> SnapshotWrite for ChampSet<T>
where
    T: Serialize + Clone + Eq + Hash,
{
    const KIND: Kind = Kind::Set;

    fn write_snapshot(&self, out: &mut Vec<u8>) -> Result<(), SnapshotError> {
        snapshot::write_collection(Kind::Set, SetOps::iter(self), out)
    }
}

impl<T> SnapshotRead for ChampSet<T>
where
    T: for<'de> Deserialize<'de> + Clone + Eq + Hash,
{
    fn read_snapshot(bytes: &[u8]) -> Result<Self, SnapshotError> {
        snapshot::read_collection(Kind::Set, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn champ_collections_roundtrip() {
        let map: ChampMap<u32, u32> = (0..400).map(|i| (i, i * 2)).collect();
        assert_eq!(
            ChampMap::read_snapshot(&map.snapshot_bytes().unwrap()).unwrap(),
            map
        );

        let set: ChampSet<String> = (0..200).map(|i| format!("e{i}")).collect();
        assert_eq!(
            ChampSet::read_snapshot(&set.snapshot_bytes().unwrap()).unwrap(),
            set
        );
    }
}
