//! **sharded** — concurrent, shard-partitioned wrappers over the persistent
//! hash tries.
//!
//! The persistent collections in this workspace ([`axiom`], `champ`, `hamt`,
//! `idiomatic`) are single-writer values: cheap to clone, lock-free to read,
//! but a `&mut` handle serializes all writers. This crate scales them to
//! concurrent traffic with a classic three-phase design, using exactly the
//! hooks the rest of the workspace already provides:
//!
//! 1. **Partition** — keys route to one of `N` (power-of-two) shards by the
//!    *top* `log2(N)` bits of the same 32-bit [`trie_common::hash::hash32`]
//!    the tries consume. Tries eat hash bits bottom-up, so shard routing is
//!    invisible to each shard's internal structure, and a key's shard never
//!    changes.
//! 2. **Shard-local transients** — bulk construction partitions the input
//!    and builds every shard through the
//!    [`TransientOps`](trie_common::ops::TransientOps) builder protocol on
//!    its own scoped worker thread ([`std::thread::scope`]); incremental
//!    writers stage batches of edits on a shard-local successor through the
//!    in-place `_mut` protocol
//!    ([`MultiMapMutOps`](trie_common::ops::MultiMapMutOps) and friends).
//!    Nothing concurrent ever touches a trie under mutation: successors are
//!    thread-private until frozen.
//! 3. **Atomic publish** — finished shard values are frozen into `Arc`
//!    snapshots and installed with one pointer swap of the global epoch
//!    bundle (`publish`). Readers pin the bundle (one refcount bump) and
//!    query the immutable tries lock-free for as long as they like; they
//!    always see a complete batch, never a partial one.
//!
//! # Consistency model
//!
//! Globally serializable publication: all shards publish under **one**
//! epoch sequence, and every commit — even a batch spanning many shards —
//! swaps the whole bundle atomically. A [`ShardedMultiMap::snapshot`] pins
//! one epoch, so any two reads answered from the same snapshot are mutually
//! consistent *across shards* (the MVCC guarantee the serving engine builds
//! on). Optimistic read-modify-write is available through the
//! `apply_validated` methods, which re-check the pinned per-shard versions
//! at commit and report an [`EpochConflict`] instead of clobbering
//! concurrent writes.
//!
//! # `Send`/`Sync` reasoning
//!
//! `ShardedMultiMap<K, V, M>` is `Send + Sync` whenever `M` is: published
//! state is a `Mutex<Arc<…>>` bundle plus per-shard `Mutex<()>` write locks
//! (all `Send + Sync` for `M: Send + Sync`), and the trie handles
//! themselves are `Arc`-based persistent
//! structures that are `Send + Sync` for `Send + Sync` element types. The
//! aliasing discipline that makes this sound is the `Arc::get_mut`
//! uniqueness protocol of the `_mut` families: a writer's staged successor
//! shares nodes with published snapshots, and precisely those shared nodes
//! are path-copied on write — verified from the outside by the
//! `tests/sharded_aliasing.rs` cross-thread property tests.
//!
//! # Examples
//!
//! ```
//! use sharded::ShardedMultiMap;
//! use trie_common::ops::MultiMapEdit;
//!
//! // Parallel bulk build: partition once, one builder thread per shard.
//! let mm: ShardedMultiMap<u32, u32> =
//!     ShardedMultiMap::build_parallel(4, (0..1000u32).map(|i| (i % 100, i)));
//! assert_eq!(mm.tuple_count(), 1000);
//!
//! // Readers work on frozen snapshots, unaffected by later writes.
//! let snap = mm.snapshot();
//! mm.apply((0..50u32).map(MultiMapEdit::RemoveKey));
//! assert_eq!(snap.tuple_count(), 1000);
//! assert_eq!(mm.key_count(), 50);
//! ```

#![warn(missing_docs)]

mod map;
mod multimap;
mod partition;
mod publish;
mod set;
mod shards;
mod snapshot;

pub use map::{MapEpoch, MapSnapshot, ShardedMap, SnapshotEntries};
pub use multimap::{MultiMapEpoch, MultiMapSnapshot, ShardedMultiMap, SnapshotTuples};
pub use partition::{partition_by, partition_tuples, Partition, MAX_SHARDS};
pub use publish::EpochConflict;
pub use set::{SetEpoch, SetSnapshot, ShardedSet, SnapshotElems};

/// Default shard count: the available parallelism rounded up to a power of
/// two (capped at [`MAX_SHARDS`]; 1 when parallelism cannot be queried).
pub fn default_shard_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .next_power_of_two()
        .min(MAX_SHARDS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_shard_count_is_a_valid_partition() {
        let n = default_shard_count();
        assert!(n.is_power_of_two());
        assert!((1..=MAX_SHARDS).contains(&n));
        let _ = Partition::new(n);
    }
}
