//! Key → shard routing by the **top** bits of the 32-bit trie hash.
//!
//! The tries consume hash bits from the *bottom* up (5 bits per level,
//! [`trie_common::bits`]), so routing on the top bits leaves every shard's
//! internal branch distribution untouched: a shard's trie looks exactly
//! like a standalone trie over its subset of keys. Using the same
//! [`hash32`] the tries use also means partitioning costs one hash that the
//! shard build would have computed anyway.

use std::hash::Hash;

use trie_common::hash::hash32;

/// Largest supported shard count (2⁸; more shards than this stops paying
/// for itself long before the routing bits would collide with trie levels).
pub const MAX_SHARDS: usize = 256;

/// The shard-routing function: `count` is a power of two and a key's shard
/// is the top `log2(count)` bits of its 32-bit trie hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    bits: u32,
}

impl Partition {
    /// Creates a partition over `count` shards.
    ///
    /// # Panics
    ///
    /// Panics unless `count` is a power of two in `1..=MAX_SHARDS`.
    pub fn new(count: usize) -> Partition {
        assert!(
            count.is_power_of_two() && (1..=MAX_SHARDS).contains(&count),
            "shard count must be a power of two in 1..={MAX_SHARDS}, got {count}"
        );
        Partition {
            bits: count.trailing_zeros(),
        }
    }

    /// Number of shards.
    #[inline]
    pub fn count(&self) -> usize {
        1 << self.bits
    }

    /// Shard index for a precomputed 32-bit trie hash.
    #[inline]
    pub fn shard_of_hash(&self, hash: u32) -> usize {
        if self.bits == 0 {
            0
        } else {
            (hash >> (32 - self.bits)) as usize
        }
    }

    /// Shard index for a key (hashes with the tries' [`hash32`]).
    #[inline]
    pub fn shard_of<K: Hash + ?Sized>(&self, key: &K) -> usize {
        self.shard_of_hash(hash32(key))
    }
}

/// Splits an item stream into per-shard vectors, routing each item on the
/// key `key_of` projects out (the first phase of a parallel bulk build;
/// order within each shard preserves input order).
pub fn partition_by<I, K: Hash + ?Sized>(
    shards: usize,
    items: impl IntoIterator<Item = I>,
    key_of: impl Fn(&I) -> &K,
) -> Vec<Vec<I>> {
    let partition = Partition::new(shards);
    let mut parts: Vec<Vec<I>> = (0..shards).map(|_| Vec::new()).collect();
    for item in items {
        parts[partition.shard_of(key_of(&item))].push(item);
    }
    parts
}

/// [`partition_by`] specialized to `(key, value)` tuples routed on the key.
pub fn partition_tuples<K: Hash, V>(
    shards: usize,
    tuples: impl IntoIterator<Item = (K, V)>,
) -> Vec<Vec<(K, V)>> {
    partition_by(shards, tuples, |(k, _)| k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shard_takes_everything() {
        let p = Partition::new(1);
        for h in [0u32, 1, u32::MAX, 0x8000_0000] {
            assert_eq!(p.shard_of_hash(h), 0);
        }
    }

    #[test]
    fn top_bits_route() {
        let p = Partition::new(8);
        assert_eq!(p.shard_of_hash(0), 0);
        assert_eq!(p.shard_of_hash(u32::MAX), 7);
        assert_eq!(p.shard_of_hash(0x2000_0000), 1);
        assert_eq!(p.shard_of_hash(0xE000_0000), 7);
    }

    #[test]
    fn partitioning_is_total_and_balanced() {
        let tuples: Vec<(u32, u32)> = (0..10_000).map(|i| (i, i)).collect();
        let parts = partition_tuples(8, tuples);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 10_000);
        for (i, part) in parts.iter().enumerate() {
            // A uniform hash spreads dense keys across every shard.
            assert!(part.len() > 500, "shard {i} got only {}", part.len());
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = Partition::new(6);
    }
}
