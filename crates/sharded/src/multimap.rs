//! The concurrent sharded multi-map.
//!
//! See the [crate documentation](crate) for the architecture; this module
//! holds the write-side handle [`ShardedMultiMap`], the read-side
//! [`MultiMapSnapshot`] (a pinned epoch), and the snapshot's flattened
//! tuple iterator. The shard-array machinery itself (routing, batching,
//! the epoch cell, the scoped-thread drivers) lives once in the
//! crate-private `ShardSet`.

use std::hash::Hash;
use std::marker::PhantomData;
use std::sync::Arc;

use axiom::AxiomMultiMap;
use trie_common::ops::{
    Builder, MultiMapAlgebraOps, MultiMapDiff, MultiMapEdit, MultiMapMutOps, MultiMapOps,
    TransientOps,
};

use crate::default_shard_count;
use crate::partition::Partition;
use crate::publish::{EpochConflict, EpochCore};
use crate::shards::ShardSet;

/// A concurrent multi-map: `N` persistent tries (one per slice of the key
/// space) published under one global epoch sequence.
///
/// Writers batch edits into shard-local successors built through the `_mut`
/// protocol and publish with one pointer swap (a multi-shard batch commits
/// as **one** epoch); readers pin [`MultiMapSnapshot`]s and query them
/// lock-free. The backing trie `M` defaults to [`AxiomMultiMap`] but any
/// [`MultiMapOps`] + [`MultiMapMutOps`] + [`TransientOps`] implementation
/// works.
///
/// # Examples
///
/// ```
/// use sharded::ShardedMultiMap;
///
/// let mm: ShardedMultiMap<u32, u32> = ShardedMultiMap::with_shards(4);
/// mm.insert(1, 10);
/// mm.insert(1, 11);
/// mm.insert(2, 20);
/// assert_eq!(mm.tuple_count(), 3);
///
/// let snap = mm.snapshot();       // pinned epoch, lock-free to query
/// mm.remove_key(&1);
/// assert_eq!(snap.value_count(&1), 2); // the snapshot is unaffected
/// assert_eq!(mm.tuple_count(), 1);
/// ```
pub struct ShardedMultiMap<K, V, M = AxiomMultiMap<K, V>> {
    core: ShardSet<M>,
    _tuple: PhantomData<fn() -> (K, V)>,
}

impl<K, V, M> ShardedMultiMap<K, V, M> {
    /// Wraps a pre-built shard set (the restore path in `snapshot.rs`).
    pub(crate) fn from_core(core: ShardSet<M>) -> Self {
        ShardedMultiMap {
            core,
            _tuple: PhantomData,
        }
    }
}

impl<K, V, M> ShardedMultiMap<K, V, M>
where
    K: Hash,
    M: MultiMapOps<K, V>,
{
    /// Creates an empty sharded multi-map with one shard per available CPU
    /// (rounded up to a power of two).
    pub fn new() -> Self {
        Self::with_shards(default_shard_count())
    }

    /// Creates an empty sharded multi-map over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics unless `shards` is a power of two in
    /// `1..=`[`crate::MAX_SHARDS`].
    pub fn with_shards(shards: usize) -> Self {
        ShardedMultiMap {
            core: ShardSet::filled(Partition::new(shards), M::empty),
            _tuple: PhantomData,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.core.count()
    }

    /// The shard a key routes to (top bits of its 32-bit trie hash).
    pub fn shard_of(&self, key: &K) -> usize {
        self.core.shard_of(key)
    }

    /// Pins the current epoch: every shard at one global publication point
    /// (one `Arc` clone, no per-shard loads). All queries on the snapshot
    /// are lock-free, and any two reads answered from the same snapshot
    /// are mutually consistent — including across shards.
    pub fn snapshot(&self) -> MultiMapSnapshot<K, V, M> {
        MultiMapSnapshot {
            pin: self.core.pin(),
            _tuple: PhantomData,
        }
    }

    /// Blocks until the published epoch advances past `epoch`, then returns
    /// the new pinned snapshot (the long-poll/subscription primitive).
    pub fn snapshot_after(&self, epoch: u64) -> MultiMapSnapshot<K, V, M> {
        MultiMapSnapshot {
            pin: self.core.pin_after(epoch),
            _tuple: PhantomData,
        }
    }

    /// The global publication epoch (bumps once per commit, however many
    /// shards the commit touched); cheap staleness check for cached
    /// readers.
    pub fn current_epoch(&self) -> u64 {
        self.core.epoch_now()
    }

    /// The global publication epoch (alias of
    /// [`ShardedMultiMap::current_epoch`], kept for PR 4 callers).
    pub fn version(&self) -> u64 {
        self.current_epoch()
    }

    /// Total number of tuples (over one pinned epoch).
    pub fn tuple_count(&self) -> usize {
        self.core.sum_pinned(M::tuple_count)
    }

    /// Number of distinct keys (keys never span shards, so the sum is
    /// exact).
    pub fn key_count(&self) -> usize {
        self.core.sum_pinned(M::key_count)
    }

    /// True if no shard holds a tuple.
    pub fn is_empty(&self) -> bool {
        self.tuple_count() == 0
    }

    /// True if `key` maps to at least one value.
    pub fn contains_key(&self, key: &K) -> bool {
        self.core.load_for(key).contains_key(key)
    }

    /// True if the exact tuple `(key, value)` is present.
    pub fn contains_tuple(&self, key: &K, value: &V) -> bool {
        self.core.load_for(key).contains_tuple(key, value)
    }

    /// Number of values associated with `key` (0 if absent).
    pub fn value_count(&self, key: &K) -> usize {
        self.core.load_for(key).value_count(key)
    }

    /// Captures the current epoch for [`ShardedMultiMap::changes_since`]
    /// (identical to [`ShardedMultiMap::snapshot`]'s pin; kept as its own
    /// type for the delta API).
    pub fn epoch(&self) -> MultiMapEpoch<K, V, M> {
        MultiMapEpoch {
            core: self.core.pin(),
            _tuple: PhantomData,
        }
    }
}

impl<K, V, M> ShardedMultiMap<K, V, M>
where
    K: Hash + Clone + Send,
    V: Clone + Send,
    M: MultiMapAlgebraOps<K, V> + Send + Sync,
{
    /// The tuple-level delta since `epoch` (`epoch` old, current state
    /// new). Shards whose publication counter is unchanged are skipped
    /// outright; each changed shard is diffed structurally on its own
    /// scoped worker thread, so the cost tracks the number of edited
    /// tuples, not the relation size.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` was captured from a multi-map with a different
    /// partition.
    pub fn changes_since(&self, epoch: &MultiMapEpoch<K, V, M>) -> MultiMapDiff<K, V> {
        let parts = self
            .core
            .diff_since_parallel(&epoch.core, |old, current| old.diff(current));
        let mut out = MultiMapDiff::new();
        for d in parts {
            out.added.extend(d.added);
            out.removed.extend(d.removed);
        }
        out
    }

    /// Pairwise shard union with `other` (tuple granularity), one scoped
    /// worker per shard pair.
    ///
    /// # Panics
    ///
    /// Panics if the two multi-maps have different shard counts.
    pub fn union_with(&self, other: &Self) -> Self {
        Self::from_core(self.core.combine_parallel(&other.core, |a, b| a.union(b)))
    }
}

/// A captured epoch of a [`ShardedMultiMap`]: per-shard publication
/// counters and frozen snapshots. Created by [`ShardedMultiMap::epoch`],
/// consumed by [`ShardedMultiMap::changes_since`].
pub struct MultiMapEpoch<K, V, M = AxiomMultiMap<K, V>> {
    core: Arc<EpochCore<M>>,
    _tuple: PhantomData<fn() -> (K, V)>,
}

impl<K, V, M> Clone for MultiMapEpoch<K, V, M> {
    fn clone(&self) -> Self {
        MultiMapEpoch {
            core: Arc::clone(&self.core),
            _tuple: PhantomData,
        }
    }
}

impl<K, V, M> std::fmt::Debug for MultiMapEpoch<K, V, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiMapEpoch")
            .field("epoch", &self.core.epoch)
            .finish()
    }
}

impl<K, V, M> ShardedMultiMap<K, V, M>
where
    K: Hash,
    M: MultiMapOps<K, V> + MultiMapMutOps<K, V> + Clone,
{
    /// Inserts one tuple. Returns true if the relation grew.
    ///
    /// One-tuple batches pay a full shard publication each; prefer
    /// [`ShardedMultiMap::apply`] for anything that arrives in groups.
    pub fn insert(&self, key: K, value: V) -> bool {
        let shard = self.core.shard_of(&key);
        self.core.update_at(shard, |m| {
            let mut next = m.clone();
            let grew = next.insert_mut(key, value);
            (next, grew)
        })
    }

    /// Removes one tuple. Returns true if it was present.
    pub fn remove_tuple(&self, key: &K, value: &V) -> bool {
        self.core
            .update_for(key, |m| m.remove_tuple_mut(key, value))
    }

    /// Removes every tuple for `key`. Returns how many were removed.
    pub fn remove_key(&self, key: &K) -> usize {
        self.core.update_for(key, |m| m.remove_key_mut(key))
    }

    /// Applies a batch of edits: groups them by shard (preserving input
    /// order within each shard), stages every group on a shard-local
    /// successor through the `_mut` protocol, and publishes all touched
    /// shards as **one** epoch — a pinned reader observes either none or
    /// all of the batch, even across shards. Returns the total tuple-count
    /// delta.
    ///
    /// Concurrent `apply` calls to disjoint shards stage fully in
    /// parallel; calls touching the same shard serialize on that shard's
    /// write lock, and only the pointer swap itself serializes globally.
    pub fn apply<I: IntoIterator<Item = MultiMapEdit<K, V>>>(&self, batch: I) -> isize {
        self.core
            .apply_grouped(batch, |e| self.core.shard_of(e.key()), M::apply_mut)
    }

    /// Optimistically applies `batch` against the epoch pinned by `base`:
    /// the commit succeeds only if every shard the batch writes — plus
    /// every shard in `read_shards` (the shards a transaction read from) —
    /// is still at the version `base` pinned. On conflict nothing is
    /// staged; re-pin and retry.
    pub fn apply_validated<I: IntoIterator<Item = MultiMapEdit<K, V>>>(
        &self,
        base: &MultiMapSnapshot<K, V, M>,
        read_shards: &[usize],
        batch: I,
    ) -> Result<isize, EpochConflict> {
        self.core.apply_grouped_validated(
            batch,
            |e| self.core.shard_of(e.key()),
            M::apply_mut,
            Some((&base.pin, read_shards)),
        )
    }
}

impl<K, V, M> ShardedMultiMap<K, V, M>
where
    K: Hash + Send,
    V: Send,
    M: MultiMapOps<K, V> + TransientOps<(K, V)> + Send,
{
    /// Bulk-builds a sharded multi-map: partitions the tuples by shard,
    /// then builds every shard **in parallel** (one scoped worker thread
    /// per non-empty shard) through the transient builder protocol.
    pub fn build_parallel(shards: usize, tuples: impl IntoIterator<Item = (K, V)>) -> Self {
        let partition = Partition::new(shards);
        let parts = crate::partition_tuples(shards, tuples);
        ShardedMultiMap {
            core: ShardSet::build_parallel(partition, parts, M::built_from),
            _tuple: PhantomData,
        }
    }

    /// Bulk-extends in place: partitions the batch, then every touched
    /// shard clones its snapshot into a transient, bulk-inserts its slice
    /// on a scoped worker thread, and publishes. Returns how many insertions
    /// reported growth.
    pub fn extend_parallel(&self, tuples: impl IntoIterator<Item = (K, V)>) -> usize
    where
        M: Clone + Sync,
    {
        let parts = crate::partition_tuples(self.core.count(), tuples);
        self.core.extend_parallel(parts, |m, part| {
            let mut t = m.clone().transient();
            let grew = t.insert_all_mut(part);
            (t.build(), grew)
        })
    }
}

impl<K, V, M> Default for ShardedMultiMap<K, V, M>
where
    K: Hash,
    M: MultiMapOps<K, V>,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, M> std::fmt::Debug for ShardedMultiMap<K, V, M>
where
    K: Hash,
    M: MultiMapOps<K, V>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMultiMap")
            .field("shards", &self.core.count())
            .field("tuples", &self.tuple_count())
            .finish()
    }
}

/// An immutable pinned epoch of a [`ShardedMultiMap`]: one frozen
/// persistent trie per shard, all captured at a single global publication
/// point. Every query is lock-free; the snapshot stays valid (and
/// unchanged) no matter what writers publish afterwards.
pub struct MultiMapSnapshot<K, V, M = AxiomMultiMap<K, V>> {
    pin: Arc<EpochCore<M>>,
    _tuple: PhantomData<fn() -> (K, V)>,
}

impl<K, V, M> Clone for MultiMapSnapshot<K, V, M> {
    fn clone(&self) -> Self {
        MultiMapSnapshot {
            pin: Arc::clone(&self.pin),
            _tuple: PhantomData,
        }
    }
}

impl<K, V, M> MultiMapSnapshot<K, V, M>
where
    K: Hash,
    M: MultiMapOps<K, V>,
{
    fn shard_for(&self, key: &K) -> &M {
        &self.pin.shards[self.pin.partition.shard_of(key)].1
    }

    /// The global epoch this snapshot was pinned at.
    pub fn epoch(&self) -> u64 {
        self.pin.epoch
    }

    /// The publication counter shard `index` was pinned at (what a
    /// validated commit re-checks).
    pub fn shard_version(&self, index: usize) -> u64 {
        self.pin.shards[index].0
    }

    /// The shard a key routes to.
    pub fn shard_of(&self, key: &K) -> usize {
        self.pin.partition.shard_of(key)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.pin.shards.len()
    }

    /// Borrow of one shard's frozen trie (e.g. to run per-shard analytics).
    pub fn shard(&self, index: usize) -> &M {
        &self.pin.shards[index].1
    }

    /// Total number of tuples.
    pub fn tuple_count(&self) -> usize {
        self.pin.shards.iter().map(|(_, m)| m.tuple_count()).sum()
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.pin.shards.iter().map(|(_, m)| m.key_count()).sum()
    }

    /// True if the snapshot holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuple_count() == 0
    }

    /// True if `key` maps to at least one value.
    pub fn contains_key(&self, key: &K) -> bool {
        self.shard_for(key).contains_key(key)
    }

    /// True if the exact tuple `(key, value)` is present.
    pub fn contains_tuple(&self, key: &K, value: &V) -> bool {
        self.shard_for(key).contains_tuple(key, value)
    }

    /// Number of values associated with `key` (0 if absent).
    pub fn value_count(&self, key: &K) -> usize {
        self.shard_for(key).value_count(key)
    }

    /// Iterates the values bound to `key` (nothing if absent).
    pub fn values_of<'a>(&'a self, key: &K) -> M::ValuesOf<'a> {
        self.shard_for(key).values_of(key)
    }

    /// Iterates all `(key, value)` tuples, shard by shard.
    pub fn tuples(&self) -> SnapshotTuples<'_, K, V, M> {
        SnapshotTuples {
            rest: self.pin.shards.iter(),
            current: None,
            _tuple: PhantomData,
        }
    }
}

/// Flattened tuple iterator over every shard of a [`MultiMapSnapshot`].
pub struct SnapshotTuples<'a, K, V, M>
where
    M: MultiMapOps<K, V> + 'a,
    K: 'a,
    V: 'a,
{
    rest: std::slice::Iter<'a, (u64, Arc<M>)>,
    current: Option<M::Tuples<'a>>,
    _tuple: PhantomData<fn() -> (K, V)>,
}

impl<'a, K, V, M> Iterator for SnapshotTuples<'a, K, V, M>
where
    M: MultiMapOps<K, V>,
{
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<(&'a K, &'a V)> {
        loop {
            if let Some(tuples) = &mut self.current {
                if let Some(t) = tuples.next() {
                    return Some(t);
                }
            }
            self.current = Some(self.rest.next()?.1.tuples());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    type Mm = ShardedMultiMap<u32, u32>;

    #[test]
    fn routing_and_point_ops() {
        let mm = Mm::with_shards(8);
        assert!(mm.is_empty());
        assert!(mm.insert(1, 10));
        assert!(mm.insert(1, 11));
        assert!(!mm.insert(1, 10)); // duplicate tuple
        assert!(mm.insert(2, 20));
        assert_eq!(mm.tuple_count(), 3);
        assert_eq!(mm.key_count(), 2);
        assert_eq!(mm.value_count(&1), 2);
        assert!(mm.contains_tuple(&1, &11));
        assert!(mm.remove_tuple(&1, &11));
        assert!(!mm.remove_tuple(&1, &11));
        assert_eq!(mm.remove_key(&1), 1);
        assert_eq!(mm.tuple_count(), 1);
    }

    #[test]
    fn snapshots_are_frozen() {
        let mm = Mm::with_shards(4);
        mm.apply((0..100).map(|i| MultiMapEdit::Insert(i, i)));
        let snap = mm.snapshot();
        assert_eq!(snap.tuple_count(), 100);
        mm.apply((0..50).map(MultiMapEdit::RemoveKey));
        assert_eq!(mm.tuple_count(), 50);
        assert_eq!(snap.tuple_count(), 100); // unmoved
        let seen: BTreeSet<u32> = snap.tuples().map(|(k, _)| *k).collect();
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn apply_returns_tuple_delta() {
        let mm = Mm::with_shards(2);
        let delta = mm.apply([
            MultiMapEdit::Insert(1, 1),
            MultiMapEdit::Insert(1, 2),
            MultiMapEdit::Insert(2, 1),
            MultiMapEdit::RemoveTuple(1, 2),
            MultiMapEdit::RemoveTuple(9, 9), // absent: no effect
        ]);
        assert_eq!(delta, 2);
        assert_eq!(mm.tuple_count(), 2);
        assert_eq!(mm.apply([MultiMapEdit::RemoveKey(1)]), -1);
    }

    #[test]
    fn multi_shard_apply_is_one_epoch() {
        let mm = Mm::with_shards(8);
        let before = mm.current_epoch();
        mm.apply((0..64).map(|i| MultiMapEdit::Insert(i, i)));
        assert_eq!(mm.current_epoch(), before + 1);
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let tuples: Vec<(u32, u32)> = (0..5000).map(|i| (i / 3, i)).collect();
        let sharded = Mm::build_parallel(8, tuples.iter().copied());
        let reference = AxiomMultiMap::<u32, u32>::built_from(tuples.iter().copied());
        assert_eq!(sharded.tuple_count(), reference.tuple_count());
        assert_eq!(sharded.key_count(), reference.key_count());
        let snap = sharded.snapshot();
        for (k, v) in &tuples {
            assert!(snap.contains_tuple(k, v));
        }
        assert_eq!(snap.tuples().count(), reference.tuple_count());
    }

    #[test]
    fn skewed_parallel_build_leaves_empty_shards_valid() {
        // One single key routes to one shard; the other 7 stay empty.
        let sharded = Mm::build_parallel(8, std::iter::repeat_n((42u32, 1u32), 3));
        assert_eq!(sharded.tuple_count(), 1); // duplicate tuples collapse
        assert_eq!(sharded.key_count(), 1);
        assert_eq!(sharded.snapshot().tuples().count(), 1);
    }

    #[test]
    fn extend_parallel_grows_in_place() {
        let mm = Mm::build_parallel(4, (0..100u32).map(|i| (i, i)));
        let snap = mm.snapshot();
        let grew = mm.extend_parallel((0..200u32).map(|i| (i, i + 1)));
        assert_eq!(grew, 200);
        assert_eq!(mm.tuple_count(), 300);
        assert_eq!(snap.tuple_count(), 100); // pre-extend snapshot frozen
    }

    #[test]
    fn works_over_other_tries() {
        use idiomatic::NestedChampMultiMap;
        let mm: ShardedMultiMap<u32, u32, NestedChampMultiMap<u32, u32>> =
            ShardedMultiMap::build_parallel(2, (0..500u32).map(|i| (i % 100, i)));
        assert_eq!(mm.tuple_count(), 500);
        assert_eq!(mm.key_count(), 100);
        mm.apply([MultiMapEdit::RemoveKey(5)]);
        assert_eq!(mm.key_count(), 99);
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<Mm>();
        check::<MultiMapSnapshot<u32, u32>>();
    }
}
