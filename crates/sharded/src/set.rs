//! The concurrent sharded set (see the [crate documentation](crate); same
//! architecture as [`crate::ShardedMultiMap`], set semantics).

use std::hash::Hash;
use std::marker::PhantomData;
use std::sync::Arc;

use axiom::AxiomSet;
use trie_common::ops::{Builder, SetAlgebraOps, SetDiff, SetEdit, SetMutOps, SetOps, TransientOps};

use crate::default_shard_count;
use crate::partition::Partition;
use crate::publish::{EpochConflict, EpochCore};
use crate::shards::ShardSet;

/// A concurrent set: `N` persistent trie sets published under one global
/// epoch sequence. Defaults to [`AxiomSet`] shards.
///
/// # Examples
///
/// ```
/// use sharded::ShardedSet;
///
/// let s: ShardedSet<u32> = ShardedSet::with_shards(2);
/// s.insert(7);
/// let snap = s.snapshot();
/// s.remove(&7);
/// assert!(snap.contains(&7)); // the snapshot is unaffected
/// assert!(s.is_empty());
/// ```
pub struct ShardedSet<T, S = AxiomSet<T>> {
    core: ShardSet<S>,
    _elem: PhantomData<fn() -> T>,
}

impl<T, S> ShardedSet<T, S> {
    /// Wraps a pre-built shard set (the restore path in `snapshot.rs`).
    pub(crate) fn from_core(core: ShardSet<S>) -> Self {
        ShardedSet {
            core,
            _elem: PhantomData,
        }
    }
}

impl<T, S> ShardedSet<T, S>
where
    T: Hash,
    S: SetOps<T>,
{
    /// Creates an empty sharded set with one shard per available CPU
    /// (rounded up to a power of two).
    pub fn new() -> Self {
        Self::with_shards(default_shard_count())
    }

    /// Creates an empty sharded set over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics unless `shards` is a power of two in
    /// `1..=`[`crate::MAX_SHARDS`].
    pub fn with_shards(shards: usize) -> Self {
        ShardedSet {
            core: ShardSet::filled(Partition::new(shards), S::empty),
            _elem: PhantomData,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.core.count()
    }

    /// The shard an element routes to (top bits of its 32-bit trie hash).
    pub fn shard_of(&self, value: &T) -> usize {
        self.core.shard_of(value)
    }

    /// Pins the current epoch: every shard at one global publication point.
    /// All queries on the snapshot are lock-free and mutually consistent,
    /// including across shards.
    pub fn snapshot(&self) -> SetSnapshot<T, S> {
        SetSnapshot {
            pin: self.core.pin(),
            _elem: PhantomData,
        }
    }

    /// Blocks until the published epoch advances past `epoch`, then returns
    /// the new pinned snapshot (the long-poll/subscription primitive).
    pub fn snapshot_after(&self, epoch: u64) -> SetSnapshot<T, S> {
        SetSnapshot {
            pin: self.core.pin_after(epoch),
            _elem: PhantomData,
        }
    }

    /// The global publication epoch (bumps once per commit, however many
    /// shards the commit touched).
    pub fn current_epoch(&self) -> u64 {
        self.core.epoch_now()
    }

    /// Number of elements (over one pinned epoch).
    pub fn len(&self) -> usize {
        self.core.sum_pinned(S::len)
    }

    /// True if no shard holds an element.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test against the current shard snapshot.
    pub fn contains(&self, value: &T) -> bool {
        self.core.load_for(value).contains(value)
    }

    /// Captures the current epoch: every shard's publication counter plus
    /// its frozen snapshot. Feed it to [`ShardedSet::changes_since`] later
    /// to get the element-level delta without rescanning unchanged shards.
    pub fn epoch(&self) -> SetEpoch<T, S> {
        SetEpoch {
            core: self.core.pin(),
            _elem: PhantomData,
        }
    }
}

impl<T, S> ShardedSet<T, S>
where
    T: Hash + Clone + Send,
    S: SetAlgebraOps<T> + Send + Sync,
{
    /// The element-level delta since `epoch` (`epoch` old, current state
    /// new). Shards whose publication counter is unchanged are skipped
    /// outright; each changed shard is diffed structurally on its own
    /// scoped worker thread, so the cost is O(changed shards × changed
    /// elements), not O(set size).
    ///
    /// # Panics
    ///
    /// Panics if `epoch` was captured from a set with a different partition.
    pub fn changes_since(&self, epoch: &SetEpoch<T, S>) -> SetDiff<T> {
        let parts = self
            .core
            .diff_since_parallel(&epoch.core, |old, current| old.diff(current));
        let mut out = SetDiff::new();
        for d in parts {
            out.added.extend(d.added);
            out.removed.extend(d.removed);
        }
        out
    }

    /// Pairwise shard union with `other`, one scoped worker per shard pair,
    /// each running the underlying trie's structural (sharing-aware) union.
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different shard counts.
    pub fn union_with(&self, other: &Self) -> Self {
        Self::from_core(self.core.combine_parallel(&other.core, |a, b| a.union(b)))
    }

    /// Pairwise shard intersection with `other` (see
    /// [`ShardedSet::union_with`]).
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different shard counts.
    pub fn intersect_with(&self, other: &Self) -> Self {
        Self::from_core(
            self.core
                .combine_parallel(&other.core, |a, b| a.intersect(b)),
        )
    }

    /// Pairwise shard difference with `other` (see
    /// [`ShardedSet::union_with`]).
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different shard counts.
    pub fn difference_with(&self, other: &Self) -> Self {
        Self::from_core(
            self.core
                .combine_parallel(&other.core, |a, b| a.difference(b)),
        )
    }
}

/// A captured epoch of a [`ShardedSet`]: per-shard publication counters and
/// frozen snapshots. Created by [`ShardedSet::epoch`], consumed by
/// [`ShardedSet::changes_since`].
pub struct SetEpoch<T, S = AxiomSet<T>> {
    core: Arc<EpochCore<S>>,
    _elem: PhantomData<fn() -> T>,
}

impl<T, S> Clone for SetEpoch<T, S> {
    fn clone(&self) -> Self {
        SetEpoch {
            core: Arc::clone(&self.core),
            _elem: PhantomData,
        }
    }
}

impl<T, S> std::fmt::Debug for SetEpoch<T, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SetEpoch")
            .field("epoch", &self.core.epoch)
            .finish()
    }
}

impl<T, S> ShardedSet<T, S>
where
    T: Hash,
    S: SetOps<T> + SetMutOps<T> + Clone,
{
    /// Inserts `value`. Returns true if the set grew.
    pub fn insert(&self, value: T) -> bool {
        let shard = self.core.shard_of(&value);
        self.core.update_at(shard, |s| {
            let mut next = s.clone();
            let grew = next.insert_mut(value);
            (next, grew)
        })
    }

    /// Removes `value`. Returns true if the set shrank.
    pub fn remove(&self, value: &T) -> bool {
        self.core.update_for(value, |s| s.remove_mut(value))
    }

    /// Applies a batch of edits grouped by shard; all touched shards
    /// publish as **one** epoch. Returns the element-count delta.
    pub fn apply<I: IntoIterator<Item = SetEdit<T>>>(&self, batch: I) -> isize {
        self.core
            .apply_grouped(batch, |e| self.core.shard_of(e.key()), S::apply_mut)
    }

    /// Optimistically applies `batch` against the epoch pinned by `base`:
    /// the commit succeeds only if every shard the batch writes — plus
    /// every shard in `read_shards` — is still at the version `base`
    /// pinned. On conflict nothing is staged; re-pin and retry.
    pub fn apply_validated<I: IntoIterator<Item = SetEdit<T>>>(
        &self,
        base: &SetSnapshot<T, S>,
        read_shards: &[usize],
        batch: I,
    ) -> Result<isize, EpochConflict> {
        self.core.apply_grouped_validated(
            batch,
            |e| self.core.shard_of(e.key()),
            S::apply_mut,
            Some((&base.pin, read_shards)),
        )
    }
}

impl<T, S> ShardedSet<T, S>
where
    T: Hash + Send,
    S: SetOps<T> + TransientOps<T> + Send,
{
    /// Bulk-builds a sharded set: partition, then one scoped builder thread
    /// per non-empty shard through the transient protocol.
    pub fn build_parallel(shards: usize, elems: impl IntoIterator<Item = T>) -> Self {
        let partition = Partition::new(shards);
        let parts = crate::partition_by(shards, elems, |v| v);
        ShardedSet {
            core: ShardSet::build_parallel(partition, parts, S::built_from),
            _elem: PhantomData,
        }
    }

    /// Bulk-extends in place, one scoped worker per touched shard. Returns
    /// how many insertions reported growth.
    pub fn extend_parallel(&self, elems: impl IntoIterator<Item = T>) -> usize
    where
        S: Clone + Sync,
    {
        let parts = crate::partition_by(self.core.count(), elems, |v| v);
        self.core.extend_parallel(parts, |s, part| {
            let mut t = s.clone().transient();
            let grew = t.insert_all_mut(part);
            (t.build(), grew)
        })
    }
}

impl<T, S> Default for ShardedSet<T, S>
where
    T: Hash,
    S: SetOps<T>,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<T, S> std::fmt::Debug for ShardedSet<T, S>
where
    T: Hash,
    S: SetOps<T>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSet")
            .field("shards", &self.core.count())
            .field("len", &self.len())
            .finish()
    }
}

/// An immutable pinned epoch of a [`ShardedSet`]: one frozen persistent
/// trie per shard, all captured at a single global publication point.
pub struct SetSnapshot<T, S = AxiomSet<T>> {
    pin: Arc<EpochCore<S>>,
    _elem: PhantomData<fn() -> T>,
}

impl<T, S> Clone for SetSnapshot<T, S> {
    fn clone(&self) -> Self {
        SetSnapshot {
            pin: Arc::clone(&self.pin),
            _elem: PhantomData,
        }
    }
}

impl<T, S> SetSnapshot<T, S>
where
    T: Hash,
    S: SetOps<T>,
{
    /// The global epoch this snapshot was pinned at.
    pub fn epoch(&self) -> u64 {
        self.pin.epoch
    }

    /// The publication counter shard `index` was pinned at (what a
    /// validated commit re-checks).
    pub fn shard_version(&self, index: usize) -> u64 {
        self.pin.shards[index].0
    }

    /// The shard an element routes to.
    pub fn shard_of(&self, value: &T) -> usize {
        self.pin.partition.shard_of(value)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.pin.shards.len()
    }

    /// Borrow of one shard's frozen trie.
    pub fn shard(&self, index: usize) -> &S {
        &self.pin.shards[index].1
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.pin.shards.iter().map(|(_, s)| s.len()).sum()
    }

    /// True if the snapshot holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test.
    pub fn contains(&self, value: &T) -> bool {
        self.pin.shards[self.pin.partition.shard_of(value)]
            .1
            .contains(value)
    }

    /// Iterates all elements, shard by shard.
    pub fn iter(&self) -> SnapshotElems<'_, T, S> {
        SnapshotElems {
            rest: self.pin.shards.iter(),
            current: None,
            _elem: PhantomData,
        }
    }
}

/// Flattened element iterator over every shard of a [`SetSnapshot`].
pub struct SnapshotElems<'a, T, S>
where
    S: SetOps<T> + 'a,
    T: 'a,
{
    rest: std::slice::Iter<'a, (u64, Arc<S>)>,
    current: Option<S::Elems<'a>>,
    _elem: PhantomData<fn() -> T>,
}

impl<'a, T, S> Iterator for SnapshotElems<'a, T, S>
where
    S: SetOps<T>,
{
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        loop {
            if let Some(elems) = &mut self.current {
                if let Some(e) = elems.next() {
                    return Some(e);
                }
            }
            self.current = Some(self.rest.next()?.1.iter());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_semantics_across_shards() {
        let s: ShardedSet<u32> = ShardedSet::with_shards(4);
        assert!(s.insert(1));
        assert!(!s.insert(1));
        assert!(s.contains(&1));
        assert_eq!(
            s.apply([SetEdit::Insert(2), SetEdit::Insert(3), SetEdit::Remove(1)]),
            1
        );
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn parallel_build_and_frozen_snapshots() {
        let s: ShardedSet<u32> = ShardedSet::build_parallel(8, 0..2000);
        assert_eq!(s.len(), 2000);
        let snap = s.snapshot();
        assert_eq!(snap.iter().count(), 2000);
        assert_eq!(s.extend_parallel(2000..2500), 500);
        assert_eq!(snap.len(), 2000);
        assert_eq!(s.len(), 2500);
        for v in 0..2500 {
            assert!(s.contains(&v));
        }
    }

    #[test]
    fn validated_apply_roundtrip() {
        let s: ShardedSet<u32> = ShardedSet::with_shards(4);
        let base = s.snapshot();
        assert_eq!(s.apply_validated(&base, &[], [SetEdit::Insert(1)]), Ok(1));
        // base is now stale for shard_of(1): a second validated write to the
        // same shard must conflict.
        let shard = s.shard_of(&1);
        let err = s
            .apply_validated(&base, &[shard], [SetEdit::Insert(1)])
            .unwrap_err();
        assert_eq!(err.shard, shard);
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<ShardedSet<u32>>();
        check::<SetSnapshot<u32>>();
    }
}
