//! Durable snapshots for the sharded wrappers: `save_snapshot` /
//! `load_snapshot` over the [`trie_common::snapshot`] format.
//!
//! A sharded save serializes each shard's published `Arc` snapshot as its
//! own section of the frame — every shard encodes **in parallel** on a
//! scoped worker thread, and readers are completely unaffected (the save
//! works on frozen persistent tries; writers can keep publishing
//! mid-save, the saved cut is simply the snapshot acquired at the start).
//!
//! A load validates the framing first (shard table, payload bounds), then
//! decodes every stored section in parallel, **re-routing each element
//! through the partition function of the new shard count** and
//! bulk-building the target shards through the transient protocol. The
//! shard count is therefore a restore-time choice: a snapshot saved at 8
//! shards restores at 1, 2 or 256 — the first step toward resharding.
//! Because the wire format stores only elements (kind-tagged, not
//! topology-bound), plain collections can read sharded snapshots and vice
//! versa.

use std::hash::Hash;
use std::thread;

use serde::{Deserialize, Serialize};
use trie_common::faults::{fire as fault_point, site};
use trie_common::ops::{MapOps, MultiMapOps, SetOps, TransientOps};
use trie_common::snapshot::{
    encode_section, write_frame, Frame, FrameSection, Kind, Section, SnapshotError, SnapshotRead,
    SnapshotWrite,
};

use crate::partition::{Partition, MAX_SHARDS};
use crate::shards::ShardSet;
use crate::{MapSnapshot, MultiMapSnapshot, SetSnapshot, ShardedMap, ShardedMultiMap, ShardedSet};

// ------------------------------------------------------ shared machinery

/// Encodes one section per shard, in parallel (one scoped worker per
/// non-trivial shard; trivially-empty shards encode inline), and appends
/// the framed result to `out` (no intermediate whole-snapshot buffer).
fn save_parallel<C: Sync>(
    kind: Kind,
    shards: &[&C],
    is_empty: impl Fn(&C) -> bool,
    encode: impl Fn(&C) -> Result<Section, SnapshotError> + Sync,
    out: &mut Vec<u8>,
) -> Result<(), SnapshotError> {
    let encode = &encode;
    let sections: Vec<Result<Section, SnapshotError>> = thread::scope(|scope| {
        let workers: Vec<_> = shards
            .iter()
            .map(|&shard| {
                if is_empty(shard) {
                    None
                } else {
                    Some(scope.spawn(move || {
                        fault_point(site::SNAPSHOT_ENCODE);
                        encode(shard)
                    }))
                }
            })
            .collect();
        workers
            .into_iter()
            .map(|worker| match worker {
                // A panicked encoder fails this save with a typed error
                // instead of aborting the process; the remaining workers
                // still join (scoped threads), nothing is left running.
                Some(handle) => handle.join().unwrap_or(Err(SnapshotError::WorkerPanicked)),
                None => encode_section(std::iter::empty::<()>()),
            })
            .collect()
    });
    let sections = sections.into_iter().collect::<Result<Vec<_>, _>>()?;
    write_frame(kind, &sections, out)
}

/// Decodes every stored section in parallel, routing each element into one
/// of `new_count` buckets; returns the merged per-new-shard parts.
fn decode_and_route<Item>(
    sections: &[FrameSection<'_>],
    new_count: usize,
    route: impl Fn(&Item) -> usize + Sync,
) -> Result<Vec<Vec<Item>>, SnapshotError>
where
    Item: Send + for<'de> Deserialize<'de>,
{
    let route = &route;
    let routed: Vec<Result<Vec<Vec<Item>>, SnapshotError>> = thread::scope(|scope| {
        let workers: Vec<_> = sections
            .iter()
            .map(|&section| {
                if section.count == 0 && section.byte_len() == 0 {
                    None
                } else {
                    Some(scope.spawn(move || {
                        fault_point(site::SNAPSHOT_DECODE);
                        let mut buckets: Vec<Vec<Item>> =
                            (0..new_count).map(|_| Vec::new()).collect();
                        section.decode_each(|item| buckets[route(&item)].push(item))?;
                        Ok(buckets)
                    }))
                }
            })
            .collect();
        workers
            .into_iter()
            .map(|worker| match worker {
                // Same contract as the encode side: a panicked decoder
                // fails the restore with a typed error, never the process.
                Some(handle) => handle.join().unwrap_or(Err(SnapshotError::WorkerPanicked)),
                None => Ok((0..new_count).map(|_| Vec::new()).collect()),
            })
            .collect()
    });
    let mut parts: Vec<Vec<Item>> = (0..new_count).map(|_| Vec::new()).collect();
    for buckets in routed {
        for (part, bucket) in parts.iter_mut().zip(buckets?) {
            part.extend(bucket);
        }
    }
    Ok(parts)
}

/// Validates a *stored* shard count as a partition without panicking
/// (corrupt or foreign snapshots must error, not abort).
fn stored_partition(count: usize) -> Result<Partition, SnapshotError> {
    if count.is_power_of_two() && (1..=MAX_SHARDS).contains(&count) {
        Ok(Partition::new(count))
    } else {
        Err(SnapshotError::Codec(format!(
            "stored shard count {count} is not a power of two in 1..={MAX_SHARDS}"
        )))
    }
}

fn parse_expecting<'a>(bytes: &'a [u8], kind: Kind) -> Result<Frame<'a>, SnapshotError> {
    let frame = Frame::parse(bytes)?;
    frame.expect_kind(kind)?;
    Ok(frame)
}

// ----------------------------------------------------------- multi-map

impl<K, V, M> MultiMapSnapshot<K, V, M>
where
    K: Hash + Serialize,
    V: Serialize,
    M: MultiMapOps<K, V> + Sync,
{
    /// Serializes this frozen snapshot, one frame section per shard,
    /// encoding shards in parallel.
    pub fn save_snapshot(&self) -> Result<Vec<u8>, SnapshotError> {
        let mut out = Vec::new();
        self.write_snapshot_into(&mut out)?;
        Ok(out)
    }

    /// Appends the snapshot to `out` (the allocation-free-at-the-seam
    /// variant backing [`SnapshotWrite`]).
    fn write_snapshot_into(&self, out: &mut Vec<u8>) -> Result<(), SnapshotError> {
        let shards: Vec<&M> = (0..self.shard_count()).map(|i| self.shard(i)).collect();
        save_parallel(
            Kind::MultiMap,
            &shards,
            |m| m.is_empty(),
            |m| encode_section(m.tuples()),
            out,
        )
    }
}

impl<K, V, M> ShardedMultiMap<K, V, M>
where
    K: Hash + Serialize,
    V: Serialize,
    M: MultiMapOps<K, V> + Sync,
{
    /// Takes a consistent-per-shard snapshot and serializes it (see
    /// [`MultiMapSnapshot::save_snapshot`]). Concurrent writers are never
    /// blocked: the save works on the frozen `Arc` snapshots acquired up
    /// front.
    pub fn save_snapshot(&self) -> Result<Vec<u8>, SnapshotError> {
        self.snapshot().save_snapshot()
    }

    /// Saves a snapshot to `path` atomically (write-temp + fsync +
    /// rename): a crash mid-checkpoint leaves the previous file intact,
    /// never a torn one.
    pub fn save_snapshot_to(&self, path: impl AsRef<std::path::Path>) -> Result<(), SnapshotError> {
        trie_common::snapshot::save_atomic(path.as_ref(), &self.save_snapshot()?)
    }
}

impl<K, V, M> ShardedMultiMap<K, V, M>
where
    K: Hash + Send + for<'de> Deserialize<'de>,
    V: Send + for<'de> Deserialize<'de>,
    M: MultiMapOps<K, V> + TransientOps<(K, V)> + Send,
{
    /// Restores a snapshot at `shards` shards — any power of two in
    /// `1..=`[`crate::MAX_SHARDS`], independent of the count it was saved
    /// with. Stored sections decode in parallel, elements re-route through
    /// the new partition, and every target shard bulk-builds through the
    /// transient protocol on its own worker thread.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is not a valid partition size (same contract as
    /// [`ShardedMultiMap::with_shards`]); corrupt `bytes` never panic.
    pub fn load_snapshot(bytes: &[u8], shards: usize) -> Result<Self, SnapshotError> {
        let frame = parse_expecting(bytes, Kind::MultiMap)?;
        let partition = Partition::new(shards);
        let parts = decode_and_route(frame.sections(), partition.count(), |(k, _): &(K, V)| {
            partition.shard_of(k)
        })?;
        Ok(Self::from_core(ShardSet::build_parallel(
            partition,
            parts,
            M::built_from,
        )))
    }

    /// Reads a snapshot file (as written by
    /// [`ShardedMultiMap::save_snapshot_to`]) and restores it at `shards`
    /// shards.
    pub fn load_snapshot_from(
        path: impl AsRef<std::path::Path>,
        shards: usize,
    ) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path.as_ref()).map_err(|e| SnapshotError::Io(e.to_string()))?;
        Self::load_snapshot(&bytes, shards)
    }
}

impl<K, V, M> SnapshotWrite for ShardedMultiMap<K, V, M>
where
    K: Hash + Serialize,
    V: Serialize,
    M: MultiMapOps<K, V> + Sync,
{
    const KIND: Kind = Kind::MultiMap;

    fn write_snapshot(&self, out: &mut Vec<u8>) -> Result<(), SnapshotError> {
        self.snapshot().write_snapshot_into(out)
    }
}

impl<K, V, M> SnapshotRead for ShardedMultiMap<K, V, M>
where
    K: Hash + Send + for<'de> Deserialize<'de>,
    V: Send + for<'de> Deserialize<'de>,
    M: MultiMapOps<K, V> + TransientOps<(K, V)> + Send,
{
    /// Restores at the snapshot's stored shard count (errors — never
    /// panics — if that count is not a valid partition; use
    /// [`ShardedMultiMap::load_snapshot`] to reshard).
    fn read_snapshot(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let frame = parse_expecting(bytes, Kind::MultiMap)?;
        let partition = stored_partition(frame.sections().len())?;
        let parts = decode_and_route(frame.sections(), partition.count(), |(k, _): &(K, V)| {
            partition.shard_of(k)
        })?;
        Ok(Self::from_core(ShardSet::build_parallel(
            partition,
            parts,
            M::built_from,
        )))
    }
}

// ----------------------------------------------------------------- map

impl<K, V, M> MapSnapshot<K, V, M>
where
    K: Hash + Serialize,
    V: Serialize,
    M: MapOps<K, V> + Sync,
{
    /// Serializes this frozen snapshot, one frame section per shard,
    /// encoding shards in parallel.
    pub fn save_snapshot(&self) -> Result<Vec<u8>, SnapshotError> {
        let mut out = Vec::new();
        self.write_snapshot_into(&mut out)?;
        Ok(out)
    }

    /// Appends the snapshot to `out` (the allocation-free-at-the-seam
    /// variant backing [`SnapshotWrite`]).
    fn write_snapshot_into(&self, out: &mut Vec<u8>) -> Result<(), SnapshotError> {
        let shards: Vec<&M> = (0..self.shard_count()).map(|i| self.shard(i)).collect();
        save_parallel(
            Kind::Map,
            &shards,
            |m| m.is_empty(),
            |m| encode_section(m.entries()),
            out,
        )
    }
}

impl<K, V, M> ShardedMap<K, V, M>
where
    K: Hash + Serialize,
    V: Serialize,
    M: MapOps<K, V> + Sync,
{
    /// Takes a consistent-per-shard snapshot and serializes it (see
    /// [`MapSnapshot::save_snapshot`]).
    pub fn save_snapshot(&self) -> Result<Vec<u8>, SnapshotError> {
        self.snapshot().save_snapshot()
    }

    /// Saves a snapshot to `path` atomically (see
    /// [`ShardedMultiMap::save_snapshot_to`]).
    pub fn save_snapshot_to(&self, path: impl AsRef<std::path::Path>) -> Result<(), SnapshotError> {
        trie_common::snapshot::save_atomic(path.as_ref(), &self.save_snapshot()?)
    }
}

impl<K, V, M> ShardedMap<K, V, M>
where
    K: Hash + Send + for<'de> Deserialize<'de>,
    V: Send + for<'de> Deserialize<'de>,
    M: MapOps<K, V> + TransientOps<(K, V)> + Send,
{
    /// Restores a snapshot at `shards` shards (see
    /// [`ShardedMultiMap::load_snapshot`] for the contract).
    pub fn load_snapshot(bytes: &[u8], shards: usize) -> Result<Self, SnapshotError> {
        let frame = parse_expecting(bytes, Kind::Map)?;
        Self::load_frame(&frame, shards)
    }

    /// Reads a snapshot file and restores it at `shards` shards.
    pub fn load_snapshot_from(
        path: impl AsRef<std::path::Path>,
        shards: usize,
    ) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path.as_ref()).map_err(|e| SnapshotError::Io(e.to_string()))?;
        Self::load_snapshot(&bytes, shards)
    }

    fn load_frame(frame: &Frame<'_>, shards: usize) -> Result<Self, SnapshotError> {
        let partition = Partition::new(shards);
        let parts = decode_and_route(frame.sections(), partition.count(), |(k, _): &(K, V)| {
            partition.shard_of(k)
        })?;
        Ok(Self::from_core(ShardSet::build_parallel(
            partition,
            parts,
            M::built_from,
        )))
    }
}

impl<K, V, M> SnapshotWrite for ShardedMap<K, V, M>
where
    K: Hash + Serialize,
    V: Serialize,
    M: MapOps<K, V> + Sync,
{
    const KIND: Kind = Kind::Map;

    fn write_snapshot(&self, out: &mut Vec<u8>) -> Result<(), SnapshotError> {
        self.snapshot().write_snapshot_into(out)
    }
}

impl<K, V, M> SnapshotRead for ShardedMap<K, V, M>
where
    K: Hash + Send + for<'de> Deserialize<'de>,
    V: Send + for<'de> Deserialize<'de>,
    M: MapOps<K, V> + TransientOps<(K, V)> + Send,
{
    fn read_snapshot(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let frame = parse_expecting(bytes, Kind::Map)?;
        let partition = stored_partition(frame.sections().len())?;
        let parts = decode_and_route(frame.sections(), partition.count(), |(k, _): &(K, V)| {
            partition.shard_of(k)
        })?;
        Ok(Self::from_core(ShardSet::build_parallel(
            partition,
            parts,
            M::built_from,
        )))
    }
}

// ----------------------------------------------------------------- set

impl<T, S> SetSnapshot<T, S>
where
    T: Hash + Serialize,
    S: SetOps<T> + Sync,
{
    /// Serializes this frozen snapshot, one frame section per shard,
    /// encoding shards in parallel.
    pub fn save_snapshot(&self) -> Result<Vec<u8>, SnapshotError> {
        let mut out = Vec::new();
        self.write_snapshot_into(&mut out)?;
        Ok(out)
    }

    /// Appends the snapshot to `out` (the allocation-free-at-the-seam
    /// variant backing [`SnapshotWrite`]).
    fn write_snapshot_into(&self, out: &mut Vec<u8>) -> Result<(), SnapshotError> {
        let shards: Vec<&S> = (0..self.shard_count()).map(|i| self.shard(i)).collect();
        save_parallel(
            Kind::Set,
            &shards,
            |s| s.is_empty(),
            |s| encode_section(s.iter()),
            out,
        )
    }
}

impl<T, S> ShardedSet<T, S>
where
    T: Hash + Serialize,
    S: SetOps<T> + Sync,
{
    /// Takes a consistent-per-shard snapshot and serializes it (see
    /// [`SetSnapshot::save_snapshot`]).
    pub fn save_snapshot(&self) -> Result<Vec<u8>, SnapshotError> {
        self.snapshot().save_snapshot()
    }

    /// Saves a snapshot to `path` atomically (see
    /// [`ShardedMultiMap::save_snapshot_to`]).
    pub fn save_snapshot_to(&self, path: impl AsRef<std::path::Path>) -> Result<(), SnapshotError> {
        trie_common::snapshot::save_atomic(path.as_ref(), &self.save_snapshot()?)
    }
}

impl<T, S> ShardedSet<T, S>
where
    T: Hash + Send + for<'de> Deserialize<'de>,
    S: SetOps<T> + TransientOps<T> + Send,
{
    /// Restores a snapshot at `shards` shards (see
    /// [`ShardedMultiMap::load_snapshot`] for the contract).
    pub fn load_snapshot(bytes: &[u8], shards: usize) -> Result<Self, SnapshotError> {
        let frame = parse_expecting(bytes, Kind::Set)?;
        let partition = Partition::new(shards);
        let parts = decode_and_route(frame.sections(), partition.count(), |t: &T| {
            partition.shard_of(t)
        })?;
        Ok(Self::from_core(ShardSet::build_parallel(
            partition,
            parts,
            S::built_from,
        )))
    }

    /// Reads a snapshot file and restores it at `shards` shards.
    pub fn load_snapshot_from(
        path: impl AsRef<std::path::Path>,
        shards: usize,
    ) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path.as_ref()).map_err(|e| SnapshotError::Io(e.to_string()))?;
        Self::load_snapshot(&bytes, shards)
    }
}

impl<T, S> SnapshotWrite for ShardedSet<T, S>
where
    T: Hash + Serialize,
    S: SetOps<T> + Sync,
{
    const KIND: Kind = Kind::Set;

    fn write_snapshot(&self, out: &mut Vec<u8>) -> Result<(), SnapshotError> {
        self.snapshot().write_snapshot_into(out)
    }
}

impl<T, S> SnapshotRead for ShardedSet<T, S>
where
    T: Hash + Send + for<'de> Deserialize<'de>,
    S: SetOps<T> + TransientOps<T> + Send,
{
    fn read_snapshot(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let frame = parse_expecting(bytes, Kind::Set)?;
        let partition = stored_partition(frame.sections().len())?;
        let parts = decode_and_route(frame.sections(), partition.count(), |t: &T| {
            partition.shard_of(t)
        })?;
        Ok(Self::from_core(ShardSet::build_parallel(
            partition,
            parts,
            S::built_from,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn multimap_save_restore_across_shard_counts() {
        let tuples: Vec<(u32, u32)> = (0..3000).map(|i| (i / 3, i)).collect();
        let mm: ShardedMultiMap<u32, u32> = ShardedMultiMap::build_parallel(8, tuples.clone());
        let bytes = mm.save_snapshot().unwrap();

        for shards in [1usize, 2, 8, 32] {
            let back: ShardedMultiMap<u32, u32> =
                ShardedMultiMap::load_snapshot(&bytes, shards).unwrap();
            assert_eq!(back.shard_count(), shards);
            assert_eq!(back.tuple_count(), mm.tuple_count());
            assert_eq!(back.key_count(), mm.key_count());
            let snap = back.snapshot();
            for (k, v) in &tuples {
                assert!(snap.contains_tuple(k, v), "{shards} shards lost ({k},{v})");
            }
        }

        // SnapshotRead restores at the stored count.
        let same: ShardedMultiMap<u32, u32> = ShardedMultiMap::read_snapshot(&bytes).unwrap();
        assert_eq!(same.shard_count(), 8);
        assert_eq!(same.tuple_count(), mm.tuple_count());
    }

    #[test]
    fn map_and_set_save_restore() {
        let m: ShardedMap<u32, String> =
            ShardedMap::build_parallel(4, (0..800u32).map(|i| (i, format!("v{i}"))));
        let bytes = m.save_snapshot().unwrap();
        let back: ShardedMap<u32, String> = ShardedMap::load_snapshot(&bytes, 2).unwrap();
        assert_eq!(back.len(), 800);
        assert_eq!(back.get_cloned(&17), Some("v17".into()));

        let s: ShardedSet<u32> = ShardedSet::build_parallel(4, 0..500u32);
        let bytes = s.save_snapshot().unwrap();
        let back: ShardedSet<u32> = ShardedSet::load_snapshot(&bytes, 8).unwrap();
        assert_eq!(back.len(), 500);
        let snap = back.snapshot();
        let elems: BTreeSet<u32> = snap.iter().copied().collect();
        assert_eq!(elems.len(), 500);
    }

    #[test]
    fn empty_and_skewed_instances_roundtrip() {
        let empty: ShardedMultiMap<u32, u32> = ShardedMultiMap::with_shards(8);
        let bytes = empty.save_snapshot().unwrap();
        let back: ShardedMultiMap<u32, u32> = ShardedMultiMap::load_snapshot(&bytes, 2).unwrap();
        assert!(back.is_empty());

        // One key: 7 of 8 sections are empty.
        let skewed: ShardedMultiMap<u32, u32> =
            ShardedMultiMap::build_parallel(8, [(42u32, 1u32), (42, 2)]);
        let back: ShardedMultiMap<u32, u32> =
            ShardedMultiMap::load_snapshot(&skewed.save_snapshot().unwrap(), 1).unwrap();
        assert_eq!(back.tuple_count(), 2);
        assert_eq!(back.value_count(&42), 2);
    }

    #[test]
    fn foreign_shard_counts_error_on_read_snapshot() {
        // A plain (1-section) snapshot restores fine; a hand-built 3-section
        // frame is not a valid partition and must error, not panic.
        use trie_common::snapshot::{encode_section, write_frame};
        let sections: Vec<_> = (0..3)
            .map(|i| encode_section([(i as u32, i as u32)]).unwrap())
            .collect();
        let mut bytes = Vec::new();
        write_frame(Kind::MultiMap, &sections, &mut bytes).unwrap();
        assert!(ShardedMultiMap::<u32, u32>::read_snapshot(&bytes).is_err());
        // But an explicit reshard target accepts any frame.
        let back: ShardedMultiMap<u32, u32> = ShardedMultiMap::load_snapshot(&bytes, 2).unwrap();
        assert_eq!(back.tuple_count(), 3);
    }
}
