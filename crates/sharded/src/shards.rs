//! The shared shard-array machinery behind all three public wrappers.
//!
//! [`ShardSet`] owns the `Box<[Shard<C>]>` + [`Partition`] pair and
//! implements everything that does not depend on collection semantics: key
//! routing, snapshot acquisition, the group-by-shard batch loop, and the
//! scoped-thread parallel build/extend drivers. The multimap/map/set
//! modules stay thin delegations, so the concurrency-critical code exists
//! exactly once.

use std::hash::Hash;
use std::sync::Arc;
use std::thread;

use crate::partition::Partition;
use crate::publish::Shard;

/// A partitioned array of published shards (see the module docs).
#[derive(Debug)]
pub(crate) struct ShardSet<C> {
    shards: Box<[Shard<C>]>,
    partition: Partition,
}

impl<C> ShardSet<C> {
    /// Builds a shard set from one collection per shard.
    pub(crate) fn new(partition: Partition, parts: impl IntoIterator<Item = C>) -> Self {
        let shards: Box<[Shard<C>]> = parts.into_iter().map(Shard::new).collect();
        assert_eq!(shards.len(), partition.count(), "one collection per shard");
        ShardSet { shards, partition }
    }

    /// Builds a shard set by invoking `make` once per shard.
    pub(crate) fn filled(partition: Partition, mut make: impl FnMut() -> C) -> Self {
        let count = partition.count();
        Self::new(partition, (0..count).map(|_| make()))
    }

    pub(crate) fn count(&self) -> usize {
        self.shards.len()
    }

    pub(crate) fn partition(&self) -> Partition {
        self.partition
    }

    pub(crate) fn shard_of<K: Hash + ?Sized>(&self, key: &K) -> usize {
        self.partition.shard_of(key)
    }

    /// The publication cell a key routes to.
    pub(crate) fn shard_for<K: Hash + ?Sized>(&self, key: &K) -> &Shard<C> {
        &self.shards[self.partition.shard_of(key)]
    }

    /// Current snapshot of every shard (one `Arc` clone each).
    pub(crate) fn load_all(&self) -> Box<[Arc<C>]> {
        self.shards.iter().map(Shard::load).collect()
    }

    /// Sum of the shard publication counters.
    pub(crate) fn version(&self) -> u64 {
        self.shards.iter().map(Shard::version).sum()
    }

    /// Folds a read over every shard's current snapshot (used for the
    /// aggregate counts).
    pub(crate) fn sum_loaded(&self, f: impl Fn(&C) -> usize) -> usize {
        self.shards.iter().map(|s| f(&s.load())).sum()
    }
}

/// A point-in-time capture of every shard: the publication counter and the
/// frozen snapshot, read as a consistent pair per shard. The counters let
/// [`ShardSet::diff_since_parallel`] skip shards that have not republished
/// since the capture without touching their tries at all.
#[derive(Debug)]
pub(crate) struct EpochCore<C> {
    partition: Partition,
    shards: Box<[(u64, Arc<C>)]>,
}

impl<C> Clone for EpochCore<C> {
    fn clone(&self) -> Self {
        EpochCore {
            partition: self.partition,
            shards: self.shards.clone(),
        }
    }
}

impl<C> ShardSet<C> {
    /// Captures the current epoch: each shard's `(version, snapshot)` pair.
    /// Like `load_all`, this is a consistent cut per shard, not a global
    /// serialization point.
    pub(crate) fn epoch(&self) -> EpochCore<C> {
        EpochCore {
            partition: self.partition,
            shards: self.shards.iter().map(Shard::load_versioned).collect(),
        }
    }
}

impl<C: Send + Sync> ShardSet<C> {
    /// Diffs the current state against a captured epoch, one scoped worker
    /// per shard whose publication counter advanced. Version-unchanged
    /// shards are skipped without loading or walking their tries; `diff`
    /// receives `(captured, current)` and its per-shard results come back in
    /// shard order.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` was captured from a shard set with a different
    /// partition.
    pub(crate) fn diff_since_parallel<D: Send>(
        &self,
        epoch: &EpochCore<C>,
        diff: impl Fn(&C, &C) -> D + Sync,
    ) -> Vec<D> {
        assert_eq!(
            self.partition, epoch.partition,
            "epoch captured from a shard set with a different partition"
        );
        let changed: Vec<(Arc<C>, Arc<C>)> = self
            .shards
            .iter()
            .zip(epoch.shards.iter())
            .filter_map(|(shard, (old_version, old))| {
                let (version, current) = shard.load_versioned();
                (version != *old_version).then(|| (Arc::clone(old), current))
            })
            .collect();
        let diff = &diff;
        thread::scope(|scope| {
            let workers: Vec<_> = changed
                .iter()
                .map(|(old, current)| scope.spawn(move || diff(old, current)))
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("shard differ panicked"))
                .collect()
        })
    }

    /// Combines two shard sets pairwise into a new one, one scoped worker
    /// per shard pair (the parallel drive behind the sharded set algebra).
    ///
    /// # Panics
    ///
    /// Panics if the two shard sets have different partitions.
    pub(crate) fn combine_parallel(
        &self,
        other: &ShardSet<C>,
        combine: impl Fn(&C, &C) -> C + Sync,
    ) -> ShardSet<C> {
        assert_eq!(
            self.partition, other.partition,
            "sharded algebra requires operands with the same partition"
        );
        let pairs: Vec<(Arc<C>, Arc<C>)> = self
            .shards
            .iter()
            .zip(other.shards.iter())
            .map(|(a, b)| (a.load(), b.load()))
            .collect();
        let combine = &combine;
        let combined: Vec<C> = thread::scope(|scope| {
            let workers: Vec<_> = pairs
                .iter()
                .map(|(a, b)| scope.spawn(move || combine(a, b)))
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("shard combiner panicked"))
                .collect()
        });
        ShardSet::new(self.partition, combined)
    }
}

impl<C: Clone> ShardSet<C> {
    /// One single-key read-modify-write: clone the key's shard, edit the
    /// clone, publish.
    pub(crate) fn update_for<K: Hash + ?Sized, R>(
        &self,
        key: &K,
        edit: impl FnOnce(&mut C) -> R,
    ) -> R {
        self.shard_for(key).update(|c| {
            let mut next = c.clone();
            let out = edit(&mut next);
            (next, out)
        })
    }

    /// The batched write path: groups `batch` by shard (preserving input
    /// order within each shard), stages every group on a shard-local clone
    /// through `apply`, and publishes each touched shard once. Returns the
    /// summed per-edit deltas.
    pub(crate) fn apply_grouped<E>(
        &self,
        batch: impl IntoIterator<Item = E>,
        shard_of: impl Fn(&E) -> usize,
        mut apply: impl FnMut(&mut C, E) -> isize,
    ) -> isize {
        let mut groups: Vec<Vec<E>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for edit in batch {
            groups[shard_of(&edit)].push(edit);
        }
        let mut delta = 0;
        for (shard, group) in self.shards.iter().zip(groups) {
            if group.is_empty() {
                continue;
            }
            delta += shard.update(|c| {
                let mut next = c.clone();
                let d = group
                    .into_iter()
                    .map(|e| apply(&mut next, e))
                    .sum::<isize>();
                (next, d)
            });
        }
        delta
    }
}

impl<C: Send> ShardSet<C> {
    /// The parallel bulk-build driver: one scoped worker thread per
    /// *non-empty* partition (empty shards are created inline — no point
    /// spawning a thread to build nothing).
    pub(crate) fn build_parallel<I: Send>(
        partition: Partition,
        parts: Vec<Vec<I>>,
        build: impl Fn(Vec<I>) -> C + Sync,
    ) -> Self {
        assert_eq!(parts.len(), partition.count(), "one partition per shard");
        let build = &build;
        let built: Vec<C> = thread::scope(|scope| {
            let workers: Vec<_> = parts
                .into_iter()
                .map(|part| {
                    if part.is_empty() {
                        None
                    } else {
                        Some(scope.spawn(move || build(part)))
                    }
                })
                .collect();
            workers
                .into_iter()
                .map(|worker| match worker {
                    Some(handle) => handle.join().expect("shard builder panicked"),
                    None => build(Vec::new()),
                })
                .collect()
        });
        Self::new(partition, built)
    }
}

impl<C: Send + Sync> ShardSet<C> {
    /// The parallel bulk-extend driver: one scoped worker per touched
    /// shard, each staging through `extend` and publishing. Returns the
    /// summed per-shard results.
    pub(crate) fn extend_parallel<I: Send>(
        &self,
        parts: Vec<Vec<I>>,
        extend: impl Fn(&C, Vec<I>) -> (C, usize) + Sync,
    ) -> usize {
        assert_eq!(parts.len(), self.shards.len(), "one partition per shard");
        let extend = &extend;
        thread::scope(|scope| {
            let workers: Vec<_> = self
                .shards
                .iter()
                .zip(parts)
                .filter(|(_, part)| !part.is_empty())
                .map(|(shard, part)| scope.spawn(move || shard.update(|c| extend(c, part))))
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("shard extender panicked"))
                .sum()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_parallel_skips_threads_for_empty_parts() {
        // 3 of 4 partitions empty: must still produce 4 shards, with the
        // empty ones built inline.
        let parts = vec![vec![1u32, 2, 3], Vec::new(), Vec::new(), Vec::new()];
        let set: ShardSet<Vec<u32>> = ShardSet::build_parallel(Partition::new(4), parts, |p| p);
        assert_eq!(set.count(), 4);
        let snaps = set.load_all();
        assert_eq!(snaps[0].len(), 3);
        assert!(snaps[1..].iter().all(|s| s.is_empty()));
    }

    #[test]
    fn apply_grouped_routes_and_sums() {
        let set: ShardSet<Vec<u32>> = ShardSet::filled(Partition::new(2), Vec::new);
        let delta = set.apply_grouped(
            [0usize, 1, 1, 0],
            |&target| target,
            |shard, e| {
                shard.push(e as u32);
                1
            },
        );
        assert_eq!(delta, 4);
        let snaps = set.load_all();
        assert_eq!(snaps[0].len(), 2);
        assert_eq!(snaps[1].len(), 2);
        // Order within a shard preserves input order.
        assert_eq!(&*snaps[1], &vec![1, 1]);
    }
}
