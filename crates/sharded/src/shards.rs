//! The shared shard-array machinery behind all three public wrappers.
//!
//! [`ShardSet`] owns the [`EpochCell`] + [`Partition`] pair and implements
//! everything that does not depend on collection semantics: key routing,
//! epoch pinning, the group-by-shard batch loop (with optional epoch
//! validation), and the scoped-thread parallel build/extend drivers. The
//! multimap/map/set modules stay thin delegations, so the
//! concurrency-critical code exists exactly once.

use std::hash::Hash;
use std::sync::Arc;
use std::thread;

use crate::partition::Partition;
use crate::publish::{EpochCell, EpochConflict, EpochCore};

/// A partitioned shard array published under one global epoch sequence
/// (see the module docs and [`crate::publish`]).
#[derive(Debug)]
pub(crate) struct ShardSet<C> {
    cell: EpochCell<C>,
    partition: Partition,
}

impl<C> ShardSet<C> {
    /// Builds a shard set from one collection per shard.
    pub(crate) fn new(partition: Partition, parts: impl IntoIterator<Item = C>) -> Self {
        ShardSet {
            cell: EpochCell::new(partition, parts),
            partition,
        }
    }

    /// Builds a shard set by invoking `make` once per shard.
    pub(crate) fn filled(partition: Partition, mut make: impl FnMut() -> C) -> Self {
        let count = partition.count();
        Self::new(partition, (0..count).map(|_| make()))
    }

    pub(crate) fn count(&self) -> usize {
        self.partition.count()
    }

    pub(crate) fn shard_of<K: Hash + ?Sized>(&self, key: &K) -> usize {
        self.partition.shard_of(key)
    }

    /// Pins the current epoch: one `Arc` clone covering every shard at a
    /// single publication point (the consistency statement the serving
    /// engine builds on).
    pub(crate) fn pin(&self) -> Arc<EpochCore<C>> {
        self.cell.pin()
    }

    /// Blocks until the epoch advances past `epoch`, returning the new pin
    /// (the long-poll primitive).
    pub(crate) fn pin_after(&self, epoch: u64) -> Arc<EpochCore<C>> {
        self.cell.wait_past(epoch)
    }

    /// The current snapshot of the shard `key` routes to (point reads).
    pub(crate) fn load_for<K: Hash + ?Sized>(&self, key: &K) -> Arc<C> {
        self.cell.load(self.partition.shard_of(key))
    }

    /// The global publication epoch (bumps once per commit).
    pub(crate) fn epoch_now(&self) -> u64 {
        self.cell.pin().epoch
    }

    /// Folds a read over every shard of one pinned epoch (used for the
    /// aggregate counts; consistent because the pin is).
    pub(crate) fn sum_pinned(&self, f: impl Fn(&C) -> usize) -> usize {
        self.pin().shards.iter().map(|(_, c)| f(c)).sum()
    }

    /// One single-shard read-modify-write: stage a successor for shard
    /// `index` under its write lock, publish as one epoch.
    pub(crate) fn update_at<R>(&self, index: usize, f: impl FnOnce(&C) -> (C, R)) -> R {
        self.cell.update(index, f)
    }

    /// One single-key read-modify-write: stage a successor for the key's
    /// shard under its write lock, publish as one epoch.
    pub(crate) fn update_keyed<K: Hash + ?Sized, R>(
        &self,
        key: &K,
        f: impl FnOnce(&C) -> (C, R),
    ) -> R {
        self.update_at(self.partition.shard_of(key), f)
    }
}

impl<C: Clone> ShardSet<C> {
    /// One single-key clone-edit-publish (the convenience form of
    /// [`ShardSet::update_keyed`]).
    pub(crate) fn update_for<K: Hash + ?Sized, R>(
        &self,
        key: &K,
        edit: impl FnOnce(&mut C) -> R,
    ) -> R {
        self.update_keyed(key, |c| {
            let mut next = c.clone();
            let out = edit(&mut next);
            (next, out)
        })
    }

    /// The batched write path: groups `batch` by shard (preserving input
    /// order within each shard), stages every group on a shard-local clone
    /// through `apply`, and publishes all touched shards as **one** epoch —
    /// a pinned reader observes none or all of the batch. Returns the
    /// summed per-edit deltas.
    pub(crate) fn apply_grouped<E>(
        &self,
        batch: impl IntoIterator<Item = E>,
        shard_of: impl Fn(&E) -> usize,
        apply: impl FnMut(&mut C, E) -> isize,
    ) -> isize {
        self.apply_grouped_validated(batch, shard_of, apply, None)
            .expect("unvalidated commit cannot conflict")
    }

    /// [`ShardSet::apply_grouped`] with optional optimistic validation:
    /// when `validate` carries `(base, read_shards)`, the commit succeeds
    /// only if every touched shard *and* every listed read shard still has
    /// the per-shard version recorded in `base` — otherwise nothing is
    /// staged and the conflict is reported for the caller to retry.
    pub(crate) fn apply_grouped_validated<E>(
        &self,
        batch: impl IntoIterator<Item = E>,
        shard_of: impl Fn(&E) -> usize,
        mut apply: impl FnMut(&mut C, E) -> isize,
        validate: Option<(&EpochCore<C>, &[usize])>,
    ) -> Result<isize, EpochConflict> {
        let mut groups: Vec<Vec<E>> = (0..self.count()).map(|_| Vec::new()).collect();
        for edit in batch {
            groups[shard_of(&edit)].push(edit);
        }
        let touched: Vec<usize> = groups
            .iter()
            .enumerate()
            .filter(|(_, g)| !g.is_empty())
            .map(|(i, _)| i)
            .collect();
        let mut groups: Vec<Option<Vec<E>>> = groups.into_iter().map(Some).collect();
        let deltas = self
            .cell
            .update_many(&touched, validate, |index, current| {
                let mut next = current.clone();
                let group = groups[index].take().expect("each shard staged once");
                let d = group
                    .into_iter()
                    .map(|e| apply(&mut next, e))
                    .sum::<isize>();
                (next, d)
            })?;
        Ok(deltas.into_iter().sum())
    }
}

impl<C> ShardSet<C> {
    /// Diffs the current state against a pinned epoch, one scoped worker
    /// per shard whose publication counter advanced. Version-unchanged
    /// shards are skipped without walking their tries; `diff` receives
    /// `(pinned, current)` and its per-shard results come back in shard
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` was captured from a shard set with a different
    /// partition.
    pub(crate) fn diff_since_parallel<D: Send>(
        &self,
        epoch: &EpochCore<C>,
        diff: impl Fn(&C, &C) -> D + Sync,
    ) -> Vec<D>
    where
        C: Send + Sync,
    {
        assert_eq!(
            self.partition, epoch.partition,
            "epoch captured from a shard set with a different partition"
        );
        let now = self.pin();
        let changed: Vec<(&Arc<C>, &Arc<C>)> = now
            .shards
            .iter()
            .zip(epoch.shards.iter())
            .filter_map(|((version, current), (old_version, old))| {
                (version != old_version).then_some((old, current))
            })
            .collect();
        let diff = &diff;
        thread::scope(|scope| {
            let workers: Vec<_> = changed
                .into_iter()
                .map(|(old, current)| scope.spawn(move || diff(old, current)))
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("shard differ panicked"))
                .collect()
        })
    }

    /// Combines two shard sets pairwise into a new one, one scoped worker
    /// per shard pair (the parallel drive behind the sharded set algebra).
    /// Each operand contributes one pinned epoch.
    ///
    /// # Panics
    ///
    /// Panics if the two shard sets have different partitions.
    pub(crate) fn combine_parallel(
        &self,
        other: &ShardSet<C>,
        combine: impl Fn(&C, &C) -> C + Sync,
    ) -> ShardSet<C>
    where
        C: Send + Sync,
    {
        assert_eq!(
            self.partition, other.partition,
            "sharded algebra requires operands with the same partition"
        );
        let (left, right) = (self.pin(), other.pin());
        let combine = &combine;
        let combined: Vec<C> = thread::scope(|scope| {
            let workers: Vec<_> = left
                .shards
                .iter()
                .zip(right.shards.iter())
                .map(|((_, a), (_, b))| scope.spawn(move || combine(a, b)))
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("shard combiner panicked"))
                .collect()
        });
        ShardSet::new(self.partition, combined)
    }
}

impl<C: Send> ShardSet<C> {
    /// The parallel bulk-build driver: one scoped worker thread per
    /// *non-empty* partition (empty shards are created inline — no point
    /// spawning a thread to build nothing).
    pub(crate) fn build_parallel<I: Send>(
        partition: Partition,
        parts: Vec<Vec<I>>,
        build: impl Fn(Vec<I>) -> C + Sync,
    ) -> Self {
        assert_eq!(parts.len(), partition.count(), "one partition per shard");
        let build = &build;
        let built: Vec<C> = thread::scope(|scope| {
            let workers: Vec<_> = parts
                .into_iter()
                .map(|part| {
                    if part.is_empty() {
                        None
                    } else {
                        Some(scope.spawn(move || build(part)))
                    }
                })
                .collect();
            workers
                .into_iter()
                .map(|worker| match worker {
                    Some(handle) => handle.join().expect("shard builder panicked"),
                    None => build(Vec::new()),
                })
                .collect()
        });
        Self::new(partition, built)
    }
}

impl<C: Send + Sync> ShardSet<C> {
    /// The parallel bulk-extend driver: one scoped worker per touched
    /// shard, each staging through `extend` (trie work off the publication
    /// lock) and committing its shard as its own epoch. Returns the summed
    /// per-shard results.
    pub(crate) fn extend_parallel<I: Send>(
        &self,
        parts: Vec<Vec<I>>,
        extend: impl Fn(&C, Vec<I>) -> (C, usize) + Sync,
    ) -> usize {
        assert_eq!(parts.len(), self.count(), "one partition per shard");
        let extend = &extend;
        thread::scope(|scope| {
            let workers: Vec<_> = parts
                .into_iter()
                .enumerate()
                .filter(|(_, part)| !part.is_empty())
                .map(|(index, part)| {
                    let cell = &self.cell;
                    scope.spawn(move || cell.update(index, |c| extend(c, part)))
                })
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("shard extender panicked"))
                .sum()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_parallel_skips_threads_for_empty_parts() {
        // 3 of 4 partitions empty: must still produce 4 shards, with the
        // empty ones built inline.
        let parts = vec![vec![1u32, 2, 3], Vec::new(), Vec::new(), Vec::new()];
        let set: ShardSet<Vec<u32>> = ShardSet::build_parallel(Partition::new(4), parts, |p| p);
        assert_eq!(set.count(), 4);
        let pin = set.pin();
        assert_eq!(pin.shards[0].1.len(), 3);
        assert!(pin.shards[1..].iter().all(|(_, s)| s.is_empty()));
    }

    #[test]
    fn apply_grouped_routes_sums_and_publishes_one_epoch() {
        let set: ShardSet<Vec<u32>> = ShardSet::filled(Partition::new(2), Vec::new);
        let delta = set.apply_grouped(
            [0usize, 1, 1, 0],
            |&target| target,
            |shard, e| {
                shard.push(e as u32);
                1
            },
        );
        assert_eq!(delta, 4);
        let pin = set.pin();
        assert_eq!(pin.epoch, 1, "two shards touched, one epoch");
        assert_eq!(pin.shards[0].1.len(), 2);
        // Order within a shard preserves input order.
        assert_eq!(&*pin.shards[1].1, &vec![1, 1]);
    }

    #[test]
    fn validated_apply_conflicts_on_read_shards_too() {
        let set: ShardSet<Vec<u32>> = ShardSet::filled(Partition::new(2), Vec::new);
        let base = set.pin();
        // Concurrent writer republishes shard 0.
        set.apply_grouped(
            [0usize],
            |&t| t,
            |s, _| {
                s.push(9);
                1
            },
        );
        // Writing only shard 1, but having read shard 0 at the base pin:
        // the commit must conflict.
        let err = set
            .apply_grouped_validated(
                [1usize],
                |&t| t,
                |s, _| {
                    s.push(1);
                    1
                },
                Some((&base, &[0])),
            )
            .unwrap_err();
        assert_eq!(err.shard, 0);
        // Against a fresh pin the same commit goes through.
        let fresh = set.pin();
        let delta = set
            .apply_grouped_validated(
                [1usize],
                |&t| t,
                |s, _| {
                    s.push(1);
                    1
                },
                Some((&fresh, &[0])),
            )
            .unwrap();
        assert_eq!(delta, 1);
    }
}
