//! The per-shard publication cell: atomic snapshot swap plus a write lock
//! that serializes read-modify-write batches without ever blocking readers.
//!
//! # Why not a `RwLock` around the collection?
//!
//! Rebuilding a shard (clone handle → `_mut` batch → freeze) can take
//! milliseconds for large batches. Readers must not wait on that, so the
//! shard's current value is an `Arc` snapshot: acquiring it is a single
//! reference-count bump inside a mutex held for nanoseconds, and everything
//! a reader does *with* the snapshot is lock-free on the immutable trie.
//! Writers stage their whole batch on a private successor (the persistent
//! trie's structural sharing makes the clone O(1)) and publish it with one
//! pointer swap — readers always observe either the complete old or the
//! complete new shard, never a partial edit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One shard: a versioned, atomically swappable `Arc` snapshot plus a write
/// lock serializing batch application.
#[derive(Debug)]
pub(crate) struct Shard<C> {
    /// The published snapshot. The mutex guards only the pointer swap/clone
    /// (a few nanoseconds), never a trie traversal or rebuild.
    current: Mutex<Arc<C>>,
    /// Bumped on every publication; lets cached readers detect staleness
    /// without acquiring `current`.
    version: AtomicU64,
    /// Held across a whole read-modify-write batch so concurrent writers to
    /// the same shard cannot lose updates. Readers never touch it.
    write: Mutex<()>,
}

impl<C> Shard<C> {
    pub(crate) fn new(value: C) -> Self {
        Shard {
            current: Mutex::new(Arc::new(value)),
            version: AtomicU64::new(0),
            write: Mutex::new(()),
        }
    }

    /// Acquires the current snapshot (one `Arc` clone under the swap mutex).
    pub(crate) fn load(&self) -> Arc<C> {
        self.current.lock().expect("shard cell poisoned").clone()
    }

    /// Acquires the current snapshot together with the publication counter
    /// it was published under — a consistent pair, because [`Shard::publish`]
    /// bumps the counter while still holding the swap mutex. The epoch/diff
    /// machinery relies on this: equal counters imply identical snapshots.
    pub(crate) fn load_versioned(&self) -> (u64, Arc<C>) {
        let guard = self.current.lock().expect("shard cell poisoned");
        (self.version.load(Ordering::Acquire), guard.clone())
    }

    /// The publication counter (monotonically increasing).
    pub(crate) fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Atomically replaces the snapshot and bumps the version (both under
    /// the swap mutex, so [`Shard::load_versioned`] observes a consistent
    /// pair).
    pub(crate) fn publish(&self, next: Arc<C>) {
        let mut guard = self.current.lock().expect("shard cell poisoned");
        *guard = next;
        self.version.fetch_add(1, Ordering::AcqRel);
    }

    /// Runs one read-modify-write batch under the shard's write lock: `f`
    /// sees the current value and returns the successor plus a result. The
    /// successor is published atomically; readers holding the old snapshot
    /// are unaffected.
    pub(crate) fn update<R>(&self, f: impl FnOnce(&C) -> (C, R)) -> R {
        let _batch = self.write.lock().expect("shard write lock poisoned");
        let current = self.load();
        let (next, out) = f(&current);
        self.publish(Arc::new(next));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_bumps_version_and_swaps() {
        let shard = Shard::new(1u32);
        assert_eq!(*shard.load(), 1);
        assert_eq!(shard.version(), 0);
        shard.publish(Arc::new(2));
        assert_eq!(*shard.load(), 2);
        assert_eq!(shard.version(), 1);
    }

    #[test]
    fn update_sees_current_and_returns_result() {
        let shard = Shard::new(10u32);
        let old = shard.load();
        let out = shard.update(|v| (*v + 5, *v));
        assert_eq!(out, 10);
        assert_eq!(*shard.load(), 15);
        // The pre-update snapshot is untouched.
        assert_eq!(*old, 10);
    }

    #[test]
    fn concurrent_updates_serialize() {
        let shard = Shard::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        shard.update(|v| (*v + 1, ()));
                    }
                });
            }
        });
        assert_eq!(*shard.load(), 400);
        assert_eq!(shard.version(), 400);
    }
}
