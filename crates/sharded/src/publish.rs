//! The global publication cell: every shard publishes under **one** epoch
//! sequence, and readers pin all shards at once with a single `Arc` clone.
//!
//! # Why a global bundle instead of per-shard swaps?
//!
//! Through PR 6 each shard carried its own `Mutex<Arc<M>>` cell, swapped
//! independently. That kept point reads cheap but meant two reads inside one
//! request could observe *different* shard versions: a snapshot loaded the
//! shard pointers one after another while writers kept swapping them, so a
//! cross-shard batch could see shard 3 from before a commit and shard 5 from
//! after it. The serving engine needs the MVCC guarantee instead: a reader
//! pins **one** epoch and every read in the batch is answered from that
//! consistent cut.
//!
//! The fix is to make publication itself atomic across shards. The entire
//! published state lives in a single [`EpochCore`] — the epoch number, and
//! per shard a `(version, Arc<trie>)` pair — behind one mutex. Committing a
//! batch builds the successor bundle (O(shards) `Arc` clones, no trie
//! walks) and swaps it under the mutex; pinning is one lock acquisition and
//! one `Arc` clone, after which everything the reader does is lock-free on
//! immutable tries. Writers still stage their (expensive) trie edits
//! *outside* the publication lock, serialized per shard by dedicated write
//! locks, so the global critical section stays at pointer-swap length.
//!
//! The per-shard version counters survive inside the bundle: they are what
//! lets `changes_since` skip shards that have not republished, and what the
//! serving engine's transactions validate at commit time.

use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use trie_common::faults::{fire as fault_point, site};
use trie_common::sync::{lock_recover, wait_recover};

use crate::partition::Partition;

/// A consistent cut of the whole shard array, published atomically: the
/// global epoch it was committed at, plus each shard's publication counter
/// and frozen snapshot. This is simultaneously the reader's pin, the
/// snapshot backing store, and the `changes_since` capture.
#[derive(Debug)]
pub(crate) struct EpochCore<C> {
    /// Global publication sequence number (bumped once per commit, however
    /// many shards the commit touched).
    pub(crate) epoch: u64,
    pub(crate) partition: Partition,
    /// Per shard: `(publication counter, frozen snapshot)`. The counter
    /// bumps exactly when that shard's pointer changes, so equal counters
    /// imply identical snapshots.
    pub(crate) shards: Box<[(u64, Arc<C>)]>,
}

/// A shard-version mismatch reported by a validated commit: the shard was
/// republished between the pin and the commit attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochConflict {
    /// The shard whose version moved.
    pub shard: usize,
    /// That shard's publication counter in the validating pin.
    pub pinned: u64,
    /// Its publication counter at commit time.
    pub current: u64,
}

impl std::fmt::Display for EpochConflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {} republished since the pin (version {} -> {})",
            self.shard, self.pinned, self.current
        )
    }
}

impl std::error::Error for EpochConflict {}

/// The publication cell: the pinned bundle plus per-shard write locks that
/// serialize read-modify-write staging without ever blocking readers.
#[derive(Debug)]
pub(crate) struct EpochCell<C> {
    /// The single published state. The mutex guards only pointer swaps and
    /// bundle clones (O(shards) refcount bumps), never a trie traversal.
    pinned: Mutex<Arc<EpochCore<C>>>,
    /// Notified on every commit (the long-poll/subscription hook).
    published: Condvar,
    /// Held across a whole read-modify-write batch per shard, so concurrent
    /// writers to one shard cannot lose updates. Readers never touch these.
    write_locks: Box<[Mutex<()>]>,
}

impl<C> EpochCell<C> {
    /// Builds the cell with every shard at version 0, epoch 0.
    pub(crate) fn new(partition: Partition, parts: impl IntoIterator<Item = C>) -> Self {
        let shards: Box<[(u64, Arc<C>)]> = parts.into_iter().map(|c| (0, Arc::new(c))).collect();
        assert_eq!(shards.len(), partition.count(), "one collection per shard");
        let write_locks = (0..shards.len()).map(|_| Mutex::new(())).collect();
        EpochCell {
            pinned: Mutex::new(Arc::new(EpochCore {
                epoch: 0,
                partition,
                shards,
            })),
            published: Condvar::new(),
            write_locks,
        }
    }

    /// Pins the current epoch: one lock acquisition, one `Arc` clone. The
    /// returned bundle is immutable — every read answered from it is
    /// mutually consistent, across shards, forever.
    pub(crate) fn pin(&self) -> Arc<EpochCore<C>> {
        // Poison-recovering locks throughout this cell: a worker panic
        // while publishing must degrade that one commit, not wedge every
        // future reader. Recovery is sound because the bundle is swapped
        // whole (build outside the lock, assign under it) — a poisoned
        // guard always still holds a complete, valid bundle.
        lock_recover(&self.pinned).clone()
    }

    /// The current shard snapshot for `index` (used by point reads that
    /// need only one shard).
    pub(crate) fn load(&self, index: usize) -> Arc<C> {
        Arc::clone(&lock_recover(&self.pinned).shards[index].1)
    }

    /// Blocks until the published epoch advances past `epoch` (the
    /// long-poll primitive; returns the new pin).
    pub(crate) fn wait_past(&self, epoch: u64) -> Arc<EpochCore<C>> {
        let mut guard = lock_recover(&self.pinned);
        while guard.epoch <= epoch {
            guard = wait_recover(&self.published, guard);
        }
        guard.clone()
    }

    /// Acquires the write locks for `shards` (which must be sorted
    /// ascending — the global lock order that makes multi-shard commits
    /// deadlock-free).
    fn lock_writers(&self, shards: &[usize]) -> Vec<MutexGuard<'_, ()>> {
        debug_assert!(shards.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
        shards
            .iter()
            .map(|&i| lock_recover(&self.write_locks[i]))
            .collect()
    }

    /// Atomically publishes successors for several shards as **one** epoch:
    /// clones the bundle, replaces the given slots (bumping their
    /// per-shard counters), bumps the global epoch, swaps. Callers must
    /// hold the write locks of every touched shard.
    fn commit(&self, entries: Vec<(usize, Arc<C>)>) -> u64 {
        // Fault site fires before the publication lock is taken: an
        // injected panic here aborts the commit with nothing published
        // and no lock poisoned.
        fault_point(site::PUBLISH_COMMIT);
        let mut guard = lock_recover(&self.pinned);
        let old = &**guard;
        let mut shards = old.shards.clone();
        for (index, next) in entries {
            shards[index] = (shards[index].0 + 1, next);
        }
        let epoch = old.epoch + 1;
        *guard = Arc::new(EpochCore {
            epoch,
            partition: old.partition,
            shards,
        });
        self.published.notify_all();
        epoch
    }

    /// Runs one read-modify-write batch against shard `index`: `f` sees the
    /// current value and returns the successor plus a result. Staging runs
    /// outside the publication lock (other shards commit freely meanwhile);
    /// the successor is published as its own epoch.
    pub(crate) fn update<R>(&self, index: usize, f: impl FnOnce(&C) -> (C, R)) -> R {
        let _batch = lock_recover(&self.write_locks[index]);
        let current = self.load(index);
        let (next, out) = f(&current);
        self.commit(vec![(index, Arc::new(next))]);
        out
    }

    /// The multi-shard batched write path: `stage` produces a successor for
    /// each listed shard (given its current value), and all successors are
    /// published as **one** epoch — a reader pin observes either none or
    /// all of the batch. `touched` must be sorted ascending and deduped.
    ///
    /// When `validate` carries a pin, every shard in `touched` ∪
    /// `validate.1` is checked against that pin's per-shard versions first
    /// (under the write locks, so the check cannot race another commit);
    /// any mismatch aborts with [`EpochConflict`] before staging.
    pub(crate) fn update_many<R>(
        &self,
        touched: &[usize],
        validate: Option<(&EpochCore<C>, &[usize])>,
        mut stage: impl FnMut(usize, &C) -> (C, R),
    ) -> Result<Vec<R>, EpochConflict> {
        // Lock order: the union of staged and validated shards, ascending.
        let locked: Vec<usize> = match validate {
            Some((_, reads)) => {
                let mut all: Vec<usize> = touched.iter().chain(reads).copied().collect();
                all.sort_unstable();
                all.dedup();
                all
            }
            None => touched.to_vec(),
        };
        let _guards = self.lock_writers(&locked);
        if let Some((base, _)) = validate {
            let current = self.pin();
            for &shard in &locked {
                let pinned = base.shards[shard].0;
                let now = current.shards[shard].0;
                if pinned != now {
                    return Err(EpochConflict {
                        shard,
                        pinned,
                        current: now,
                    });
                }
            }
        }
        let mut entries = Vec::with_capacity(touched.len());
        let mut results = Vec::with_capacity(touched.len());
        for &index in touched {
            let current = self.load(index);
            let (next, out) = stage(index, &current);
            entries.push((index, Arc::new(next)));
            results.push(out);
        }
        if !entries.is_empty() {
            self.commit(entries);
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(parts: Vec<u32>) -> EpochCell<u32> {
        let partition = Partition::new(parts.len());
        EpochCell::new(partition, parts)
    }

    #[test]
    fn pin_is_consistent_and_commit_bumps_epoch() {
        let c = cell(vec![1, 2]);
        let pin = c.pin();
        assert_eq!(pin.epoch, 0);
        assert_eq!(*pin.shards[0].1, 1);
        c.update(0, |v| (*v + 10, ()));
        assert_eq!(*pin.shards[0].1, 1, "old pin frozen");
        let pin = c.pin();
        assert_eq!(pin.epoch, 1);
        assert_eq!(pin.shards[0].0, 1, "touched shard's version bumped");
        assert_eq!(pin.shards[1].0, 0, "untouched shard's version kept");
        assert_eq!(*pin.shards[0].1, 11);
    }

    #[test]
    fn update_many_publishes_one_epoch() {
        let c = cell(vec![0, 0, 0, 0]);
        let out = c
            .update_many(&[1, 3], None, |i, v| (*v + i as u32, *v))
            .unwrap();
        assert_eq!(out, vec![0, 0]);
        let pin = c.pin();
        assert_eq!(pin.epoch, 1, "two shards, one epoch");
        assert_eq!((*pin.shards[1].1, *pin.shards[3].1), (1, 3));
    }

    #[test]
    fn validated_commit_detects_conflicts() {
        let c = cell(vec![0, 0]);
        let base = c.pin();
        c.update(0, |v| (*v + 1, ()));
        // Writing shard 1 is fine while validating only shard 1...
        c.update_many(&[1], Some((&base, &[])), |_, v| (*v + 1, ()))
            .unwrap();
        // ...but validating shard 0 against the stale pin conflicts.
        let base2 = c.pin();
        c.update(0, |v| (*v + 1, ()));
        let err = c
            .update_many(&[1], Some((&base2, &[0])), |_, v| (*v + 1, ()))
            .unwrap_err();
        assert_eq!(err.shard, 0);
        assert_eq!(err.current, err.pinned + 1);
    }

    #[test]
    fn concurrent_updates_serialize_per_shard() {
        let c = cell(vec![0, 0]);
        std::thread::scope(|s| {
            for shard in 0..2 {
                for _ in 0..2 {
                    let c = &c;
                    s.spawn(move || {
                        for _ in 0..100 {
                            c.update(shard, |v| (*v + 1, ()));
                        }
                    });
                }
            }
        });
        let pin = c.pin();
        assert_eq!(pin.epoch, 400, "2 shards x 2 threads x 100 commits");
        assert_eq!((*pin.shards[0].1, *pin.shards[1].1), (200, 200));
        assert_eq!((pin.shards[0].0, pin.shards[1].0), (200, 200));
    }

    #[test]
    fn panicked_writer_does_not_wedge_the_cell() {
        let c = cell(vec![0]);
        // Panic while holding the shard write lock: before the recover
        // helpers this poisoned the lock and every later writer panicked.
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.update(0, |_| -> (u32, ()) { panic!("staging panic") })
        }));
        assert!(boom.is_err());
        let pin = c.pin();
        assert_eq!(pin.epoch, 0, "aborted commit published nothing");
        c.update(0, |v| (*v + 1, ()));
        assert_eq!(c.pin().epoch, 1, "cell still commits after the panic");
        assert_eq!(*c.pin().shards[0].1, 1);
    }

    #[test]
    fn wait_past_unblocks_on_commit() {
        let c = cell(vec![0]);
        std::thread::scope(|s| {
            let waiter = s.spawn(|| c.wait_past(0));
            std::thread::sleep(std::time::Duration::from_millis(5));
            c.update(0, |v| (*v + 1, ()));
            let pin = waiter.join().unwrap();
            assert!(pin.epoch >= 1);
        });
    }
}
