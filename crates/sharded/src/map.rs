//! The concurrent sharded map (see the [crate documentation](crate); same
//! architecture as [`crate::ShardedMultiMap`], keyed map semantics).

use std::hash::Hash;
use std::marker::PhantomData;
use std::sync::Arc;

use axiom::AxiomMap;
use trie_common::ops::{Builder, MapDiff, MapEdit, MapMergeOps, MapMutOps, MapOps, TransientOps};

use crate::default_shard_count;
use crate::partition::Partition;
use crate::publish::{EpochConflict, EpochCore};
use crate::shards::ShardSet;

/// A concurrent map: `N` persistent trie maps published under one global
/// epoch sequence. Defaults to [`AxiomMap`] shards.
///
/// # Examples
///
/// ```
/// use sharded::ShardedMap;
///
/// let m: ShardedMap<u32, &str> = ShardedMap::with_shards(2);
/// m.insert(1, "one");
/// let snap = m.snapshot();
/// m.remove(&1);
/// assert_eq!(snap.get(&1), Some(&"one")); // the snapshot is unaffected
/// assert_eq!(m.len(), 0);
/// ```
pub struct ShardedMap<K, V, M = AxiomMap<K, V>> {
    core: ShardSet<M>,
    _entry: PhantomData<fn() -> (K, V)>,
}

impl<K, V, M> ShardedMap<K, V, M> {
    /// Wraps a pre-built shard set (the restore path in `snapshot.rs`).
    pub(crate) fn from_core(core: ShardSet<M>) -> Self {
        ShardedMap {
            core,
            _entry: PhantomData,
        }
    }
}

impl<K, V, M> ShardedMap<K, V, M>
where
    K: Hash,
    M: MapOps<K, V>,
{
    /// Creates an empty sharded map with one shard per available CPU
    /// (rounded up to a power of two).
    pub fn new() -> Self {
        Self::with_shards(default_shard_count())
    }

    /// Creates an empty sharded map over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics unless `shards` is a power of two in
    /// `1..=`[`crate::MAX_SHARDS`].
    pub fn with_shards(shards: usize) -> Self {
        ShardedMap {
            core: ShardSet::filled(Partition::new(shards), M::empty),
            _entry: PhantomData,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.core.count()
    }

    /// The shard a key routes to (top bits of its 32-bit trie hash).
    pub fn shard_of(&self, key: &K) -> usize {
        self.core.shard_of(key)
    }

    /// Pins the current epoch: every shard at one global publication point
    /// (one `Arc` clone, no per-shard loads). All queries on the snapshot
    /// are lock-free and mutually consistent across shards.
    pub fn snapshot(&self) -> MapSnapshot<K, V, M> {
        MapSnapshot {
            pin: self.core.pin(),
            _entry: PhantomData,
        }
    }

    /// Blocks until the published epoch advances past `epoch`, then returns
    /// the new pinned snapshot (the long-poll/subscription primitive).
    pub fn snapshot_after(&self, epoch: u64) -> MapSnapshot<K, V, M> {
        MapSnapshot {
            pin: self.core.pin_after(epoch),
            _entry: PhantomData,
        }
    }

    /// The global publication epoch (bumps once per commit, however many
    /// shards the commit touched); cheap staleness check for cached
    /// readers.
    pub fn current_epoch(&self) -> u64 {
        self.core.epoch_now()
    }

    /// Number of entries (over one pinned epoch).
    pub fn len(&self) -> usize {
        self.core.sum_pinned(M::len)
    }

    /// True if no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if `key` has a binding.
    pub fn contains_key(&self, key: &K) -> bool {
        self.core.load_for(key).contains_key(key)
    }

    /// Looks up `key`, cloning the value out of the current shard snapshot
    /// (borrowing reads go through [`ShardedMap::snapshot`]).
    pub fn get_cloned(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.core.load_for(key).get(key).cloned()
    }

    /// Captures the current epoch for [`ShardedMap::changes_since`]
    /// (identical to [`ShardedMap::snapshot`]'s pin; kept as its own type
    /// for the delta API).
    pub fn epoch(&self) -> MapEpoch<K, V, M> {
        MapEpoch {
            core: self.core.pin(),
            _entry: PhantomData,
        }
    }
}

impl<K, V, M> ShardedMap<K, V, M>
where
    K: Hash + Clone + Send,
    V: Clone + PartialEq + Send,
    M: MapMergeOps<K, V> + Send + Sync,
{
    /// The entry-level delta since `epoch` (`epoch` old, current state
    /// new). Shards whose publication counter is unchanged are skipped
    /// outright; each changed shard is diffed structurally on its own
    /// scoped worker thread.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` was captured from a map with a different partition.
    pub fn changes_since(&self, epoch: &MapEpoch<K, V, M>) -> MapDiff<K, V> {
        let parts = self
            .core
            .diff_since_parallel(&epoch.core, |old, current| old.diff(current));
        let mut out = MapDiff::new();
        for d in parts {
            out.added.extend(d.added);
            out.removed.extend(d.removed);
            out.changed.extend(d.changed);
        }
        out
    }

    /// Pairwise right-biased shard merge with `other` (`other` wins on
    /// conflicting keys), one scoped worker per shard pair.
    ///
    /// # Panics
    ///
    /// Panics if the two maps have different shard counts.
    pub fn merged_with(&self, other: &Self) -> Self {
        Self::from_core(self.core.combine_parallel(&other.core, |a, b| a.merged(b)))
    }
}

/// A captured epoch of a [`ShardedMap`]: per-shard publication counters and
/// frozen snapshots. Created by [`ShardedMap::epoch`], consumed by
/// [`ShardedMap::changes_since`].
pub struct MapEpoch<K, V, M = AxiomMap<K, V>> {
    core: Arc<EpochCore<M>>,
    _entry: PhantomData<fn() -> (K, V)>,
}

impl<K, V, M> Clone for MapEpoch<K, V, M> {
    fn clone(&self) -> Self {
        MapEpoch {
            core: Arc::clone(&self.core),
            _entry: PhantomData,
        }
    }
}

impl<K, V, M> std::fmt::Debug for MapEpoch<K, V, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MapEpoch")
            .field("epoch", &self.core.epoch)
            .finish()
    }
}

impl<K, V, M> ShardedMap<K, V, M>
where
    K: Hash,
    M: MapOps<K, V> + MapMutOps<K, V> + Clone,
{
    /// Binds `key` to `value`. Returns true if a new key was added.
    pub fn insert(&self, key: K, value: V) -> bool {
        let shard = self.core.shard_of(&key);
        self.core.update_at(shard, |m| {
            let mut next = m.clone();
            let grew = next.insert_mut(key, value);
            (next, grew)
        })
    }

    /// Removes `key`. Returns true if a binding was removed.
    pub fn remove(&self, key: &K) -> bool {
        self.core.update_for(key, |m| m.remove_mut(key))
    }

    /// Applies a batch of edits grouped by shard; all touched shards
    /// publish as **one** epoch (a pinned reader sees none or all of the
    /// batch). Returns the entry-count delta.
    pub fn apply<I: IntoIterator<Item = MapEdit<K, V>>>(&self, batch: I) -> isize {
        self.core
            .apply_grouped(batch, |e| self.core.shard_of(e.key()), M::apply_mut)
    }

    /// Optimistically applies `batch` against the epoch pinned by `base`:
    /// the commit succeeds only if every shard the batch writes — plus
    /// every shard in `read_shards` (the shards a transaction read from) —
    /// is still at the version `base` pinned. On conflict nothing is
    /// staged; re-pin and retry.
    pub fn apply_validated<I: IntoIterator<Item = MapEdit<K, V>>>(
        &self,
        base: &MapSnapshot<K, V, M>,
        read_shards: &[usize],
        batch: I,
    ) -> Result<isize, EpochConflict> {
        self.core.apply_grouped_validated(
            batch,
            |e| self.core.shard_of(e.key()),
            M::apply_mut,
            Some((&base.pin, read_shards)),
        )
    }
}

impl<K, V, M> ShardedMap<K, V, M>
where
    K: Hash + Send,
    V: Send,
    M: MapOps<K, V> + TransientOps<(K, V)> + Send,
{
    /// Bulk-builds a sharded map: partition, then one scoped builder thread
    /// per non-empty shard through the transient protocol.
    pub fn build_parallel(shards: usize, entries: impl IntoIterator<Item = (K, V)>) -> Self {
        let partition = Partition::new(shards);
        let parts = crate::partition_tuples(shards, entries);
        ShardedMap {
            core: ShardSet::build_parallel(partition, parts, M::built_from),
            _entry: PhantomData,
        }
    }

    /// Bulk-extends in place, one scoped worker per touched shard. Returns
    /// how many insertions reported growth.
    pub fn extend_parallel(&self, entries: impl IntoIterator<Item = (K, V)>) -> usize
    where
        M: Clone + Sync,
    {
        let parts = crate::partition_tuples(self.core.count(), entries);
        self.core.extend_parallel(parts, |m, part| {
            let mut t = m.clone().transient();
            let grew = t.insert_all_mut(part);
            (t.build(), grew)
        })
    }
}

impl<K, V, M> Default for ShardedMap<K, V, M>
where
    K: Hash,
    M: MapOps<K, V>,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, M> std::fmt::Debug for ShardedMap<K, V, M>
where
    K: Hash,
    M: MapOps<K, V>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMap")
            .field("shards", &self.core.count())
            .field("len", &self.len())
            .finish()
    }
}

/// An immutable pinned epoch of a [`ShardedMap`]: every shard at one global
/// publication point.
pub struct MapSnapshot<K, V, M = AxiomMap<K, V>> {
    pin: Arc<EpochCore<M>>,
    _entry: PhantomData<fn() -> (K, V)>,
}

impl<K, V, M> Clone for MapSnapshot<K, V, M> {
    fn clone(&self) -> Self {
        MapSnapshot {
            pin: Arc::clone(&self.pin),
            _entry: PhantomData,
        }
    }
}

impl<K, V, M> MapSnapshot<K, V, M>
where
    K: Hash,
    M: MapOps<K, V>,
{
    fn shard_for(&self, key: &K) -> &M {
        &self.pin.shards[self.pin.partition.shard_of(key)].1
    }

    /// The global epoch this snapshot was pinned at.
    pub fn epoch(&self) -> u64 {
        self.pin.epoch
    }

    /// The publication counter shard `index` was pinned at (what a
    /// validated commit re-checks).
    pub fn shard_version(&self, index: usize) -> u64 {
        self.pin.shards[index].0
    }

    /// The shard a key routes to.
    pub fn shard_of(&self, key: &K) -> usize {
        self.pin.partition.shard_of(key)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.pin.shards.len()
    }

    /// Borrow of one shard's frozen trie.
    pub fn shard(&self, index: usize) -> &M {
        &self.pin.shards[index].1
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.pin.shards.iter().map(|(_, m)| m.len()).sum()
    }

    /// True if the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up the value bound to `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.shard_for(key).get(key)
    }

    /// True if `key` has a binding.
    pub fn contains_key(&self, key: &K) -> bool {
        self.shard_for(key).contains_key(key)
    }

    /// Iterates all `(key, value)` entries, shard by shard.
    pub fn entries(&self) -> SnapshotEntries<'_, K, V, M> {
        SnapshotEntries {
            rest: self.pin.shards.iter(),
            current: None,
            _entry: PhantomData,
        }
    }
}

/// Flattened entry iterator over every shard of a [`MapSnapshot`].
pub struct SnapshotEntries<'a, K, V, M>
where
    M: MapOps<K, V> + 'a,
    K: 'a,
    V: 'a,
{
    rest: std::slice::Iter<'a, (u64, Arc<M>)>,
    current: Option<M::Entries<'a>>,
    _entry: PhantomData<fn() -> (K, V)>,
}

impl<'a, K, V, M> Iterator for SnapshotEntries<'a, K, V, M>
where
    M: MapOps<K, V>,
{
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<(&'a K, &'a V)> {
        loop {
            if let Some(entries) = &mut self.current {
                if let Some(e) = entries.next() {
                    return Some(e);
                }
            }
            self.current = Some(self.rest.next()?.1.entries());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_semantics_across_shards() {
        let m: ShardedMap<u32, u32> = ShardedMap::with_shards(4);
        assert!(m.insert(1, 10));
        assert!(!m.insert(1, 11)); // replacement
        assert_eq!(m.get_cloned(&1), Some(11));
        assert_eq!(m.len(), 1);
        assert_eq!(
            m.apply([
                MapEdit::Insert(2, 2),
                MapEdit::Insert(3, 3),
                MapEdit::Remove(1)
            ]),
            1
        );
        assert_eq!(m.len(), 2);
        assert!(!m.contains_key(&1));
    }

    #[test]
    fn parallel_build_and_snapshot_reads() {
        use champ::ChampMap;
        let entries: Vec<(u32, u32)> = (0..3000).map(|i| (i, i * 2)).collect();
        let m: ShardedMap<u32, u32, ChampMap<u32, u32>> =
            ShardedMap::build_parallel(8, entries.iter().copied());
        assert_eq!(m.len(), 3000);
        let snap = m.snapshot();
        for (k, v) in &entries {
            assert_eq!(snap.get(k), Some(v));
        }
        assert_eq!(snap.entries().count(), 3000);
        assert_eq!(m.extend_parallel((3000..3100).map(|i| (i, i))), 100);
        assert_eq!(m.len(), 3100);
        assert_eq!(snap.len(), 3000);
    }

    #[test]
    fn batches_commit_as_one_epoch() {
        let m: ShardedMap<u32, u32> = ShardedMap::with_shards(8);
        let e0 = m.current_epoch();
        // 64 keys spread over all 8 shards, one apply: one epoch.
        m.apply((0..64).map(|i| MapEdit::Insert(i, i)));
        assert_eq!(m.current_epoch(), e0 + 1);
        assert_eq!(m.snapshot().epoch(), e0 + 1);
    }

    #[test]
    fn validated_apply_detects_read_write_conflicts() {
        let m: ShardedMap<u32, u32> = ShardedMap::with_shards(4);
        m.apply((0..32).map(|i| MapEdit::Insert(i, 0)));
        let base = m.snapshot();
        let read_shard = base.shard_of(&7);
        // An interposed writer bumps the shard we read from.
        m.insert(7, 99);
        let err = m
            .apply_validated(&base, &[read_shard], [MapEdit::Insert(100, 1)])
            .unwrap_err();
        assert_eq!(err.shard, read_shard);
        // Retry against a fresh pin succeeds.
        let fresh = m.snapshot();
        let delta = m
            .apply_validated(&fresh, &[fresh.shard_of(&7)], [MapEdit::Insert(100, 1)])
            .unwrap();
        assert_eq!(delta, 1);
        assert_eq!(m.get_cloned(&100), Some(1));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<ShardedMap<u32, u32>>();
        check::<MapSnapshot<u32, u32>>();
    }
}
