//! Analytic JVM heap-layout model for the paper's footprint experiments.
//!
//! The paper measures footprints of JVM object graphs with Google's
//! memory-measurer. This reproduction runs on Rust, so absolute JVM numbers
//! cannot be *observed* — instead each data structure walks its own logical
//! layout and this crate computes, deterministically, the bytes its JVM
//! equivalent would occupy under a given [`JvmArch`] (the paper reports both
//! "32-bit", i.e. compressed oops, and 64-bit) and [`LayoutPolicy`]
//! (baseline, fusion, node specialization — the variants of §4.4).
//!
//! A parallel trait, [`RustFootprint`], reports the *actual* bytes the Rust
//! structures allocate, so EXPERIMENTS.md can show modeled-JVM and native
//! numbers side by side.
//!
//! # Examples
//!
//! ```
//! use heapmodel::JvmArch;
//!
//! let arch = JvmArch::COMPRESSED_OOPS;
//! // A java.lang.Integer: 12-byte header + 4-byte int = 16 bytes.
//! assert_eq!(arch.object(0, 1, 0), 16);
//! // An Object[3]: 16-byte array header + 3 * 4-byte refs, aligned to 8.
//! assert_eq!(arch.ref_array(3), 32);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alloc_counter;

/// JVM architecture parameters that determine object sizes.
///
/// The two constants mirror the paper's two footprint configurations:
/// "32-bit" (64-bit HotSpot with compressed oops, the default below 32 GB
/// heaps) and plain 64-bit (uncompressed references).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JvmArch {
    /// Bytes of an ordinary object header (mark word + class pointer).
    pub object_header: u64,
    /// Bytes of an array header (object header + length + padding).
    pub array_header: u64,
    /// Bytes of a reference (oop).
    pub reference: u64,
    /// Object alignment in bytes.
    pub alignment: u64,
    /// Human-readable label used in reports.
    pub label: &'static str,
}

impl JvmArch {
    /// 64-bit HotSpot with compressed oops — the paper's "32-bit" column.
    pub const COMPRESSED_OOPS: JvmArch = JvmArch {
        object_header: 12,
        array_header: 16,
        reference: 4,
        alignment: 8,
        label: "32-bit",
    };

    /// 64-bit HotSpot without compressed oops — the paper's "64-bit" column.
    pub const UNCOMPRESSED: JvmArch = JvmArch {
        object_header: 16,
        array_header: 24,
        reference: 8,
        alignment: 8,
        label: "64-bit",
    };

    /// Rounds `bytes` up to the architecture's object alignment.
    #[inline]
    pub fn align(&self, bytes: u64) -> u64 {
        let a = self.alignment;
        bytes.div_ceil(a) * a
    }

    /// Size of an ordinary object with `refs` reference fields, `ints`
    /// 4-byte fields and `longs` 8-byte fields.
    #[inline]
    pub fn object(&self, refs: u64, ints: u64, longs: u64) -> u64 {
        self.align(self.object_header + refs * self.reference + ints * 4 + longs * 8)
    }

    /// Size of an `Object[len]` reference array.
    #[inline]
    pub fn ref_array(&self, len: u64) -> u64 {
        self.align(self.array_header + len * self.reference)
    }

    /// Size of a boxed `java.lang.Integer`.
    ///
    /// The evaluation keys/values are random integers, which fall outside the
    /// JVM's small-integer cache, so every payload integer is a distinct box.
    #[inline]
    pub fn boxed_int(&self) -> u64 {
        self.object(0, 1, 0)
    }

    /// Size of a boxed `java.lang.Long`.
    #[inline]
    pub fn boxed_long(&self) -> u64 {
        self.object(0, 0, 1)
    }
}

/// Layout policy knobs corresponding to the paper's §4.4 footprint variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LayoutPolicy {
    /// Fusion: nested value sets are stored as bare trie roots, eliding the
    /// per-set wrapper object (size + cached-hash fields). The paper reports
    /// an average ×2.43 footprint win over Clojure/Scala with fusion alone.
    pub fuse_nested_sets: bool,
    /// Memory-layout specialization: trie nodes with at most this many
    /// content slots are emitted as fixed-field classes instead of carrying a
    /// separate heap array (GPCE'14-style specialization). `0` disables.
    /// Combined with fusion, the paper reports ×5.1.
    pub specialize_nodes_up_to: u64,
}

impl LayoutPolicy {
    /// The unoptimized baseline layout.
    pub const BASELINE: LayoutPolicy = LayoutPolicy {
        fuse_nested_sets: false,
        specialize_nodes_up_to: 0,
    };

    /// Fusion only.
    pub const FUSED: LayoutPolicy = LayoutPolicy {
        fuse_nested_sets: true,
        specialize_nodes_up_to: 0,
    };

    /// Fusion plus full memory-layout specialization: every trie node is
    /// emitted as a fixed-field class (the GPCE'14 code generator emits
    /// specializations across the whole 32-slot range), eliminating all
    /// per-node array headers — the paper's most compressed encoding.
    pub const FUSED_SPECIALIZED: LayoutPolicy = LayoutPolicy {
        fuse_nested_sets: true,
        specialize_nodes_up_to: 64,
    };

    /// Size of one trie node (node object + its content array if any) that
    /// stores `slots` physical slots and `extra_ints`/`extra_longs` scalar
    /// fields (bitmaps etc.), under this policy.
    ///
    /// Unspecialized: a node object holding one reference to a dense
    /// `Object[slots]`. Specialized (when `slots ≤ specialize_nodes_up_to`):
    /// the slots become fields of the node object itself and the array (and
    /// its header) disappears.
    pub fn node_size(&self, arch: &JvmArch, slots: u64, extra_ints: u64, extra_longs: u64) -> u64 {
        if slots <= self.specialize_nodes_up_to {
            arch.object(slots, extra_ints, extra_longs)
        } else {
            arch.object(1, extra_ints, extra_longs) + arch.ref_array(slots)
        }
    }

    /// Size of the wrapper object of a nested collection (size field plus
    /// cached hash plus root reference); zero when fusion elides it.
    pub fn set_wrapper(&self, arch: &JvmArch) -> u64 {
        if self.fuse_nested_sets {
            0
        } else {
            arch.object(1, 2, 0)
        }
    }
}

/// Modeled JVM size of a *payload* object (a key or a value).
///
/// Implemented for the payload types the evaluation uses; collection crates
/// bound their measured instantiations on this.
pub trait JvmSize {
    /// Bytes the boxed JVM representation of `self` occupies.
    fn jvm_size(&self, arch: &JvmArch) -> u64;
}

impl JvmSize for u32 {
    fn jvm_size(&self, arch: &JvmArch) -> u64 {
        arch.boxed_int()
    }
}

impl JvmSize for i32 {
    fn jvm_size(&self, arch: &JvmArch) -> u64 {
        arch.boxed_int()
    }
}

impl JvmSize for u64 {
    fn jvm_size(&self, arch: &JvmArch) -> u64 {
        arch.boxed_long()
    }
}

impl JvmSize for i64 {
    fn jvm_size(&self, arch: &JvmArch) -> u64 {
        arch.boxed_long()
    }
}

impl JvmSize for () {
    fn jvm_size(&self, _arch: &JvmArch) -> u64 {
        0
    }
}

impl JvmSize for String {
    /// `java.lang.String` (compact strings): String object + byte[] body.
    fn jvm_size(&self, arch: &JvmArch) -> u64 {
        arch.object(1, 2, 0) + arch.align(arch.array_header + self.len() as u64)
    }
}

impl<T: JvmSize> JvmSize for std::sync::Arc<T> {
    /// A shared payload: on the JVM this is one object referenced from many
    /// places; callers deduplicate via [`Accounting`].
    fn jvm_size(&self, arch: &JvmArch) -> u64 {
        (**self).jvm_size(arch)
    }
}

/// Footprint accumulator separating *structure* bytes (nodes, arrays,
/// wrappers) from *payload* bytes (boxed keys/values), so per-tuple overhead
/// — the paper's headline 65.37 B vs 12.82 B — can be derived.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Bytes attributed to the data structure encoding itself.
    pub structure: u64,
    /// Bytes attributed to boxed payload objects.
    pub payload: u64,
}

impl Footprint {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.structure + self.payload
    }

    /// Structure overhead per tuple, in bytes.
    pub fn overhead_per_tuple(&self, tuples: usize) -> f64 {
        if tuples == 0 {
            0.0
        } else {
            self.structure as f64 / tuples as f64
        }
    }
}

impl std::ops::Add for Footprint {
    type Output = Footprint;
    fn add(self, rhs: Footprint) -> Footprint {
        Footprint {
            structure: self.structure + rhs.structure,
            payload: self.payload + rhs.payload,
        }
    }
}

impl std::ops::AddAssign for Footprint {
    fn add_assign(&mut self, rhs: Footprint) {
        *self = *self + rhs;
    }
}

/// Deduplicating visitor state for footprint walks.
///
/// Persistent structures may share sub-graphs (e.g. one key object referenced
/// by several versions, or `Arc`-shared nodes); each distinct heap object is
/// counted once per walk, like a real heap-graph measurement.
#[derive(Debug, Default)]
pub struct Accounting {
    seen: std::collections::HashSet<usize>,
    /// Accumulated footprint.
    pub footprint: Footprint,
}

impl Accounting {
    /// Creates an empty accounting state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns true the first time the heap object at `addr` is seen.
    pub fn first_visit<T: ?Sized>(&mut self, ptr: *const T) -> bool {
        self.seen.insert(ptr as *const u8 as usize)
    }

    /// Adds `bytes` of structure overhead.
    pub fn structure(&mut self, bytes: u64) {
        self.footprint.structure += bytes;
    }

    /// Adds `bytes` of payload.
    pub fn payload(&mut self, bytes: u64) {
        self.footprint.payload += bytes;
    }
}

/// A data structure whose JVM-equivalent footprint can be modeled.
pub trait JvmFootprint {
    /// Walks the structure, accumulating modeled bytes into `acc`.
    fn jvm_footprint(&self, arch: &JvmArch, policy: &LayoutPolicy, acc: &mut Accounting);

    /// Convenience: total modeled footprint under `arch`/`policy`.
    fn jvm_bytes(&self, arch: &JvmArch, policy: &LayoutPolicy) -> Footprint {
        let mut acc = Accounting::new();
        self.jvm_footprint(arch, policy, &mut acc);
        acc.footprint
    }
}

/// Actual bytes a Rust structure keeps alive on the native heap
/// (allocations only; inline stack/struct bytes excluded).
pub trait RustFootprint {
    /// Accumulates native heap bytes into `acc` (deduplicated via `acc`).
    fn rust_footprint(&self, acc: &mut Accounting);

    /// Convenience: total native heap bytes.
    fn rust_bytes(&self) -> u64 {
        let mut acc = Accounting::new();
        self.rust_footprint(&mut acc);
        acc.footprint.total()
    }
}

/// Heap bytes of an `Arc<T>` allocation: two reference counters plus the
/// value itself.
pub fn arc_alloc_bytes<T>() -> u64 {
    (std::mem::size_of::<T>() + 2 * std::mem::size_of::<usize>()) as u64
}

/// Heap bytes of a `Box<[T]>` with `len` elements.
pub fn boxed_slice_bytes<T>(len: usize) -> u64 {
    (std::mem::size_of::<T>() * len) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_jvm_sizes_compressed() {
        let a = JvmArch::COMPRESSED_OOPS;
        assert_eq!(a.boxed_int(), 16); // 12 + 4
        assert_eq!(a.object(0, 0, 0), 16); // bare Object: 12 -> align 16
        assert_eq!(a.object(2, 0, 1), 32); // 12 + 8 + 8 = 28 -> 32
        assert_eq!(a.ref_array(0), 16);
        assert_eq!(a.ref_array(4), 32);
    }

    #[test]
    fn known_jvm_sizes_uncompressed() {
        let a = JvmArch::UNCOMPRESSED;
        assert_eq!(a.boxed_int(), 24); // 16 + 4 -> 24
        assert_eq!(a.boxed_long(), 24); // 16 + 8
        assert_eq!(a.ref_array(2), 40); // 24 + 16
    }

    #[test]
    fn alignment_rounds_up_to_multiple_of_eight() {
        let a = JvmArch::COMPRESSED_OOPS;
        for bytes in 1..64 {
            let aligned = a.align(bytes);
            assert_eq!(aligned % 8, 0);
            assert!(aligned >= bytes);
            assert!(aligned - bytes < 8);
        }
    }

    #[test]
    fn specialization_elides_the_array() {
        let a = JvmArch::COMPRESSED_OOPS;
        let plain = LayoutPolicy::BASELINE;
        let spec = LayoutPolicy {
            specialize_nodes_up_to: 4,
            ..LayoutPolicy::BASELINE
        };
        // 3-slot node: baseline pays node object + array header.
        let baseline = plain.node_size(&a, 3, 0, 1);
        let specialized = spec.node_size(&a, 3, 0, 1);
        assert!(specialized < baseline);
        // Above the threshold both layouts agree.
        assert_eq!(spec.node_size(&a, 9, 0, 1), plain.node_size(&a, 9, 0, 1));
    }

    #[test]
    fn fusion_elides_set_wrappers() {
        let a = JvmArch::COMPRESSED_OOPS;
        assert!(LayoutPolicy::BASELINE.set_wrapper(&a) > 0);
        assert_eq!(LayoutPolicy::FUSED.set_wrapper(&a), 0);
    }

    #[test]
    fn accounting_deduplicates_shared_objects() {
        let mut acc = Accounting::new();
        let x = 5u32;
        assert!(acc.first_visit(&x as *const u32));
        assert!(!acc.first_visit(&x as *const u32));
    }

    #[test]
    fn footprint_overhead_per_tuple() {
        let fp = Footprint {
            structure: 128,
            payload: 64,
        };
        assert_eq!(fp.total(), 192);
        assert!((fp.overhead_per_tuple(4) - 32.0).abs() < 1e-9);
    }

    #[test]
    fn string_payload_grows_with_length() {
        let a = JvmArch::COMPRESSED_OOPS;
        let short = "ab".to_string().jvm_size(&a);
        let long = "abcdefghijklmnop".to_string().jvm_size(&a);
        assert!(long > short);
    }
}
