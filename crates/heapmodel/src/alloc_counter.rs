//! A counting global allocator for allocation-behaviour assertions.
//!
//! The transient in-place editing paths promise *zero* heap allocations for
//! spine-preserving edits on uniquely-owned tries (no `Arc` node copies, no
//! slot-array rebuilds). Modeled byte counts ([`crate::RustFootprint`])
//! cannot observe that — only the allocator can — so this module provides a
//! wrapper that counts every `alloc`/`realloc` passing through it.
//!
//! Opt in per test binary:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: heapmodel::alloc_counter::CountingAlloc =
//!     heapmodel::alloc_counter::CountingAlloc::system();
//!
//! let (result, allocs) = heapmodel::alloc_counter::measure(|| do_work());
//! assert_eq!(allocs, 0);
//! ```
//!
//! The counters are process-global atomics: measurements are only meaningful
//! while no other thread allocates (run such assertions in a test binary
//! with a single test).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`GlobalAlloc`] wrapper that counts allocations (including `realloc`)
/// before delegating to the system allocator.
#[derive(Debug, Default)]
pub struct CountingAlloc {
    inner: System,
}

impl CountingAlloc {
    /// A counting wrapper around [`std::alloc::System`], usable in a
    /// `#[global_allocator]` static.
    pub const fn system() -> CountingAlloc {
        CountingAlloc { inner: System }
    }
}

// SAFETY: delegates verbatim to the wrapped allocator; the counters have no
// effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { self.inner.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { self.inner.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { self.inner.realloc(ptr, layout, new_size) }
    }
}

/// Total allocations observed so far (0 unless a [`CountingAlloc`] is
/// installed as the global allocator).
pub fn total_allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Total bytes requested so far.
pub fn total_allocated_bytes() -> u64 {
    ALLOCATED_BYTES.load(Ordering::Relaxed)
}

/// Runs `f` and returns its result together with the number of allocations
/// performed while it ran (single-threaded measurements only).
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = total_allocations();
    let result = f();
    (result, total_allocations() - before)
}

/// Like [`measure`], also reporting the bytes requested.
pub fn measure_bytes<R>(f: impl FnOnce() -> R) -> (R, u64, u64) {
    let (before, before_bytes) = (total_allocations(), total_allocated_bytes());
    let result = f();
    (
        result,
        total_allocations() - before,
        total_allocated_bytes() - before_bytes,
    )
}
