//! Generic collection-construction paths, written once against the
//! [`trie_common::ops`] traits.
//!
//! Every experiment needs its structures built before it can measure them,
//! and the *way* they are built is itself a measured dimension:
//!
//! * the **persistent** path — a fold of `inserted` calls, allocating one
//!   new root per tuple — is what the paper times in its insertion
//!   benchmarks;
//! * the **transient** path — persistent → builder → bulk `insert_mut`
//!   batches → freeze — is the cheap bulk-construction protocol
//!   ([`trie_common::ops::TransientOps`]).
//!
//! Centralizing both here deletes the per-implementation glue the bench
//! harness and case studies used to duplicate.

use trie_common::ops::{MapOps, MultiMapOps, TransientOps};

/// Builds a multi-map through the persistent insertion path (fold of
/// `inserted`; the construction the paper measures).
pub fn multimap_persistent<M: MultiMapOps<u32, u32>>(tuples: &[(u32, u32)]) -> M {
    tuples
        .iter()
        .fold(M::empty(), |mm, &(k, v)| mm.inserted(k, v))
}

/// Builds a multi-map through the transient builder protocol (bulk
/// `insert_mut` batches, one freeze).
pub fn multimap_transient<M>(tuples: &[(u32, u32)]) -> M
where
    M: MultiMapOps<u32, u32> + TransientOps<(u32, u32)>,
{
    M::built_from(tuples.iter().copied())
}

/// Builds a map through the persistent insertion path.
pub fn map_persistent<M: MapOps<u32, u32>>(entries: &[(u32, u32)]) -> M {
    entries
        .iter()
        .fold(M::empty(), |m, &(k, v)| m.inserted(k, v))
}

/// Builds a map through the transient builder protocol.
pub fn map_transient<M>(entries: &[(u32, u32)]) -> M
where
    M: MapOps<u32, u32> + TransientOps<(u32, u32)>,
{
    M::built_from(entries.iter().copied())
}

#[cfg(test)]
mod tests {
    use super::*;
    use trie_common::ops::{Builder, EditInPlace};

    // A tiny association-list multi-map: enough trait surface to prove the
    // construction paths agree without depending on the real impl crates
    // (which sit above `workloads` in the crate graph).
    #[derive(Clone, Default, PartialEq, Debug)]
    struct VecMm(Vec<(u32, u32)>);

    impl EditInPlace<(u32, u32)> for VecMm {
        fn edit_insert(&mut self, t: (u32, u32)) -> bool {
            if self.0.contains(&t) {
                false
            } else {
                self.0.push(t);
                true
            }
        }
    }

    impl MultiMapOps<u32, u32> for VecMm {
        const NAME: &'static str = "vec-mm";
        type Tuples<'a> = TupleRefs<'a>;
        type Keys<'a> = Box<dyn Iterator<Item = &'a u32> + 'a>;
        type ValuesOf<'a> = Box<dyn Iterator<Item = &'a u32> + 'a>;

        fn empty() -> Self {
            VecMm::default()
        }
        fn tuple_count(&self) -> usize {
            self.0.len()
        }
        fn key_count(&self) -> usize {
            let mut ks: Vec<u32> = self.0.iter().map(|t| t.0).collect();
            ks.sort_unstable();
            ks.dedup();
            ks.len()
        }
        fn contains_key(&self, key: &u32) -> bool {
            self.0.iter().any(|(k, _)| k == key)
        }
        fn contains_tuple(&self, key: &u32, value: &u32) -> bool {
            self.0.contains(&(*key, *value))
        }
        fn value_count(&self, key: &u32) -> usize {
            self.0.iter().filter(|(k, _)| k == key).count()
        }
        fn inserted(&self, key: u32, value: u32) -> Self {
            let mut next = self.clone();
            next.edit_insert((key, value));
            next
        }
        fn tuple_removed(&self, key: &u32, value: &u32) -> Self {
            VecMm(
                self.0
                    .iter()
                    .filter(|t| *t != &(*key, *value))
                    .copied()
                    .collect(),
            )
        }
        fn key_removed(&self, key: &u32) -> Self {
            VecMm(self.0.iter().filter(|(k, _)| k != key).copied().collect())
        }
        fn tuples(&self) -> Self::Tuples<'_> {
            TupleRefs(self.0.iter())
        }
        fn keys(&self) -> Self::Keys<'_> {
            // Dedup on the fly against the already-yielded prefix.
            let seen = &self.0;
            Box::new(self.0.iter().enumerate().filter_map(move |(i, (k, _))| {
                if seen[..i].iter().any(|(k2, _)| k2 == k) {
                    None
                } else {
                    Some(k)
                }
            }))
        }
        fn values_of<'a>(&'a self, key: &u32) -> Self::ValuesOf<'a> {
            let key = *key;
            Box::new(
                self.0
                    .iter()
                    .filter(move |(k, _)| *k == key)
                    .map(|(_, v)| v),
            )
        }
    }

    struct TupleRefs<'a>(std::slice::Iter<'a, (u32, u32)>);
    impl<'a> Iterator for TupleRefs<'a> {
        type Item = (&'a u32, &'a u32);
        fn next(&mut self) -> Option<Self::Item> {
            self.0.next().map(|(k, v)| (k, v))
        }
    }

    #[test]
    fn persistent_and_transient_paths_agree() {
        let tuples: Vec<(u32, u32)> = (0..100).map(|i| (i / 3, i)).collect();
        let p: VecMm = multimap_persistent(&tuples);
        let t: VecMm = multimap_transient(&tuples);
        assert_eq!(p, t);
        assert_eq!(p.tuple_count(), 100);

        // Batch extension on top of an existing persistent version.
        let mut builder = p.clone().transient();
        assert_eq!(builder.insert_all_mut([(1000, 1), (1000, 2)]), 2);
        let grown = builder.build();
        assert_eq!(grown.tuple_count(), 102);
        assert_eq!(p.tuple_count(), 100); // old handle untouched
    }
}
