//! Markdown table emission for the figure/table binaries.
//!
//! Every experiment binary prints (a) one row per size data point and (b) a
//! summary block that puts our measured medians next to the paper's reported
//! numbers, so EXPERIMENTS.md can be regenerated mechanically.

/// A simple markdown table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&fmt_row(&dashes));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a nanosecond quantity with a human unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Formats a byte quantity with a human unit.
pub fn fmt_bytes(bytes: u64) -> String {
    const KB: f64 = 1024.0;
    let b = bytes as f64;
    if b < KB {
        format!("{bytes} B")
    } else if b < KB * KB {
        format!("{:.1} KB", b / KB)
    } else {
        format!("{:.2} MB", b / (KB * KB))
    }
}

/// One comparison line for the paper-vs-measured summary blocks.
pub fn expectation_line(metric: &str, paper: &str, measured: f64) -> String {
    format!("  {metric:<28} paper: {paper:<18} measured: x{measured:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new(&["size", "ratio"]);
        t.row(vec!["16".into(), "x1.50".into()]);
        t.row(vec!["1024".into(), "x2.00".into()]);
        let s = t.render();
        assert!(s.starts_with("| size"));
        assert!(s.contains("| 1024"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(2_500.0), "2.50 us");
        assert_eq!(fmt_ns(3_000_000.0), "3.00 ms");
        assert_eq!(fmt_ns(1_500_000_000.0), "1.50 s");
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00 MB");
    }
}
