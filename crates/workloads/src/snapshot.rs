//! Scenario generation for the snapshot persistence experiments.
//!
//! A snapshot scenario is a sized multi-map relation (the §4.3 50 %/50 %
//! `1:1`/`1:2` shape) plus the probe sets a restore must answer correctly
//! — present tuples, partial matches (key present, value absent) and
//! misses — and the shard counts the restore sweep exercises. The probes
//! double as the correctness oracle: a restored instance that fails any
//! probe is corrupt no matter how fast it loaded.

use trie_common::ops::MultiMapOps;

use crate::data::{multimap_workload, MultiMapWorkload};

/// One snapshot save/restore scenario.
#[derive(Debug, Clone)]
pub struct SnapshotWorkload {
    /// Distinct key count (tuple count is ~1.5×).
    pub keys: usize,
    /// The relation to build, save and restore.
    pub tuples: Vec<(u32, u32)>,
    /// Probes that must hit after restore.
    pub probe_hits: Vec<(u32, u32)>,
    /// Probes whose key exists but value does not.
    pub probe_partial: Vec<(u32, u32)>,
    /// Probes that must miss entirely.
    pub probe_misses: Vec<(u32, u32)>,
    /// Shard counts the restore sweep exercises (always includes 1).
    pub restore_shards: Vec<usize>,
}

/// Builds the scenario for one `(size, seed)` data point. The save side
/// always runs at [`SAVE_SHARDS`]; restores sweep `restore_shards`.
pub fn snapshot_workload(keys: usize, seed: u64) -> SnapshotWorkload {
    let MultiMapWorkload {
        tuples,
        hit_tuples,
        partial_tuples,
        miss_tuples,
        ..
    } = multimap_workload(keys, seed);
    SnapshotWorkload {
        keys,
        tuples,
        probe_hits: hit_tuples,
        probe_partial: partial_tuples,
        probe_misses: miss_tuples,
        restore_shards: vec![1, 2, SAVE_SHARDS],
    }
}

/// Shard count every scenario saves at (the restore side re-routes, so
/// this is a property of the writer deployment, not of the snapshot).
pub const SAVE_SHARDS: usize = 8;

/// Checks a restored relation against the scenario's probes and expected
/// tuple count; returns a description of the first divergence.
pub fn verify_restore<M: MultiMapOps<u32, u32>>(
    restored: &M,
    scenario: &SnapshotWorkload,
) -> Result<(), String> {
    if restored.tuple_count() != scenario.tuples.len() {
        return Err(format!(
            "tuple count {} != expected {}",
            restored.tuple_count(),
            scenario.tuples.len()
        ));
    }
    for (k, v) in &scenario.probe_hits {
        if !restored.contains_tuple(k, v) {
            return Err(format!("lost tuple ({k}, {v})"));
        }
    }
    for (k, v) in &scenario.probe_partial {
        if !restored.contains_key(k) {
            return Err(format!("lost key {k}"));
        }
        if restored.contains_tuple(k, v) {
            return Err(format!("invented tuple ({k}, {v})"));
        }
    }
    for (k, v) in &scenario.probe_misses {
        if restored.contains_key(k) || restored.contains_tuple(k, v) {
            return Err(format!("invented key {k}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_probes_are_consistent_with_the_relation() {
        let w = snapshot_workload(256, 11);
        assert_eq!(w.keys, 256);
        assert!(w.restore_shards.contains(&1));
        // The tuples themselves satisfy the oracle when built directly.
        let tuples: std::collections::BTreeSet<(u32, u32)> = w.tuples.iter().copied().collect();
        assert_eq!(tuples.len(), w.tuples.len(), "workload tuples are distinct");
        for (k, v) in &w.probe_hits {
            assert!(tuples.contains(&(*k, *v)));
        }
        for (k, v) in &w.probe_partial {
            assert!(!tuples.contains(&(*k, *v)));
            assert!(tuples.iter().any(|(tk, _)| tk == k));
        }
        for (k, _) in &w.probe_misses {
            assert!(!tuples.iter().any(|(tk, _)| tk == k));
        }
    }
}
