//! Workload generation for the concurrent sharded layer: parallel bulk
//! builds and mixed read/write traffic.
//!
//! Two scenario shapes, both deterministic per seed (same discipline as
//! [`crate::data`]):
//!
//! * **parallel build** — the [`crate::data::multimap_workload`] tuple sets
//!   reused at larger sizes; the sharded harness partitions them and builds
//!   shard-locally, so no extra generation is needed beyond sizing;
//! * **mixed read/write** — a base relation plus writer batch scripts
//!   ([`MultiMapEdit`] sequences skewed toward inserts) and a read probe
//!   sequence mixing present and absent keys, modelling a query-heavy
//!   service taking a steady trickle of updates;
//! * **serving traffic** — request batches for the serving engine:
//!   Zipf-skewed key popularity, hot-key storm phases, and fan-out
//!   timeline reads ([`serving_workload`]). Probes are expressed in the
//!   neutral [`ReadProbe`] vocabulary so this crate stays independent of
//!   the engine; the bench maps them onto its typed ops.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trie_common::ops::MultiMapEdit;

use crate::data::multimap_workload;

/// A generated mixed read/write scenario over one `(size, seed)` point.
#[derive(Debug, Clone)]
pub struct ConcurrentWorkload {
    /// The tuples the relation is bulk-loaded with before traffic starts.
    pub base: Vec<(u32, u32)>,
    /// Writer traffic: batches of edits, to be applied in order (per
    /// writer). Inserts dominate; tuple and key removals keep the relation
    /// from growing without bound.
    pub batches: Vec<Vec<MultiMapEdit<u32, u32>>>,
    /// Reader traffic: key probes, 3:1 present-to-absent.
    pub read_keys: Vec<u32>,
}

/// Share of batch operations that are inserts (the rest split between
/// tuple and key removals).
pub const INSERT_SHARE: f64 = 0.6;

/// Number of read probes generated per scenario.
pub const READ_PROBES: usize = 256;

/// Generates a mixed read/write scenario: a `size`-key base relation (the
/// paper's 50 %/50 % `1:1`/`1:2` shape), `batches` writer batches of
/// `batch_len` edits each, and [`READ_PROBES`] read probes.
pub fn concurrent_workload(
    size: usize,
    batches: usize,
    batch_len: usize,
    seed: u64,
) -> ConcurrentWorkload {
    let w = multimap_workload(size, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc0c0_11ec);

    let edit_batches: Vec<Vec<MultiMapEdit<u32, u32>>> = (0..batches)
        .map(|_| {
            (0..batch_len)
                .map(|_| {
                    let roll = rng.gen::<f64>();
                    if roll < INSERT_SHARE {
                        // Fresh value on an existing key: exercises 1:n
                        // promotion without unbounded key growth.
                        let k = w.keys[rng.gen_range(0..w.keys.len())];
                        MultiMapEdit::Insert(k, rng.gen())
                    } else if roll < INSERT_SHARE + 0.25 {
                        let (k, v) = w.tuples[rng.gen_range(0..w.tuples.len())];
                        MultiMapEdit::RemoveTuple(k, v)
                    } else {
                        MultiMapEdit::RemoveKey(w.keys[rng.gen_range(0..w.keys.len())])
                    }
                })
                .collect()
        })
        .collect();

    let read_keys = (0..READ_PROBES)
        .map(|i| {
            if i % 4 == 3 {
                // Miss probe (key absent from the base relation).
                w.miss_tuples[rng.gen_range(0..w.miss_tuples.len())].0
            } else {
                w.keys[rng.gen_range(0..w.keys.len())]
            }
        })
        .collect();

    ConcurrentWorkload {
        base: w.tuples,
        batches: edit_batches,
        read_keys,
    }
}

/// A Zipf(s) sampler over ranks `0..n`: rank `r` is drawn with probability
/// proportional to `1 / (r + 1)^s`. Built once (O(n) table), sampled by
/// binary search over the precomputed CDF (O(log n) per draw) — fast
/// enough to generate millions of probes and exactly reproducible per
/// seed, unlike rejection-based samplers.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with exponent `s` (`s = 0` is
    /// uniform; `s ≈ 1` is the classic web/social popularity curve).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draws one rank in `0..n` (0 = most popular).
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u = rng.gen::<f64>();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// How request keys are drawn in a [`serving_workload`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyMix {
    /// Every key equally likely.
    Uniform,
    /// Zipf-skewed popularity with the given exponent (rank 0 hottest).
    Zipf {
        /// The Zipf exponent (`s ≈ 1` for web-like skew).
        exponent: f64,
    },
    /// Zipf background traffic plus hot-key storms: during storm batches
    /// (the middle third of the request timeline), `storm_share` of probes
    /// all target the `hot_keys` most popular keys — the "celebrity post"
    /// scenario that concentrates load on a handful of shards.
    Storm {
        /// Background Zipf exponent.
        exponent: f64,
        /// How many of the hottest keys the storm hammers.
        hot_keys: usize,
        /// Probability a storm-phase probe targets a hot key.
        storm_share: f64,
    },
}

/// One serving read probe, in engine-neutral vocabulary (the bench maps
/// these onto the serving crate's typed ops).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadProbe {
    /// Fetch all values of one key (a timeline read).
    ValuesOf(u32),
    /// Existence probe.
    ContainsKey(u32),
    /// Fetch the values of many keys at once (a feed aggregation); the
    /// whole fan-out must be answered from one consistent view.
    FanOut(Vec<u32>),
}

/// Shape parameters for a [`serving_workload`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingProfile {
    /// Distinct keys in the base relation.
    pub keys: usize,
    /// Number of read request batches.
    pub read_batches: usize,
    /// Probes per read batch.
    pub reads_per_batch: usize,
    /// Number of writer batches.
    pub write_batches: usize,
    /// Edits per writer batch.
    pub writes_per_batch: usize,
    /// Key popularity model for reads *and* writes.
    pub mix: KeyMix,
    /// Every `fanout_every`-th probe is a fan-out (0 disables them).
    pub fanout_every: usize,
    /// Keys per fan-out probe.
    pub fanout_width: usize,
}

/// A generated serving scenario: bulk-load `base`, then drive
/// `read_batches` and `write_batches` at the engine concurrently.
#[derive(Debug, Clone)]
pub struct ServingWorkload {
    /// The tuples the relation is bulk-loaded with before traffic starts.
    pub base: Vec<(u32, u32)>,
    /// Request batches for the read path, in timeline order.
    pub read_batches: Vec<Vec<ReadProbe>>,
    /// Writer batches for the admission path, in timeline order.
    pub write_batches: Vec<Vec<MultiMapEdit<u32, u32>>>,
}

/// Generates serving traffic over a `profile.keys`-key base relation,
/// deterministic per `seed`.
///
/// Popularity ranks are assigned to a seed-dependent shuffle of the key
/// set, so hot keys land on different (and multiple) shards run to run —
/// matching real deployments, where popularity is uncorrelated with hash
/// placement. Under [`KeyMix::Storm`], batches in the middle third of the
/// timeline are storm batches; the rest draw from the background mix.
pub fn serving_workload(profile: &ServingProfile, seed: u64) -> ServingWorkload {
    let w = multimap_workload(profile.keys, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5e41_11f0);

    // Rank -> key: shuffle so popularity is uncorrelated with key value.
    let mut ranked = w.keys.clone();
    for i in (1..ranked.len()).rev() {
        ranked.swap(i, rng.gen_range(0..=i));
    }

    let (background, storm): (Zipf, Option<(usize, f64)>) = match profile.mix {
        KeyMix::Uniform => (Zipf::new(ranked.len(), 0.0), None),
        KeyMix::Zipf { exponent } => (Zipf::new(ranked.len(), exponent), None),
        KeyMix::Storm {
            exponent,
            hot_keys,
            storm_share,
        } => (
            Zipf::new(ranked.len(), exponent),
            Some((hot_keys.clamp(1, ranked.len()), storm_share)),
        ),
    };
    let storm_window = (profile.read_batches / 3)..(2 * profile.read_batches / 3);

    let draw_key = |rng: &mut StdRng, stormy: bool| -> u32 {
        if let (true, Some((hot, share))) = (stormy, storm) {
            if rng.gen::<f64>() < share {
                return ranked[rng.gen_range(0..hot)];
            }
        }
        ranked[background.sample(rng)]
    };

    let mut probe_no = 0usize;
    let read_batches: Vec<Vec<ReadProbe>> = (0..profile.read_batches)
        .map(|b| {
            let stormy = storm_window.contains(&b);
            (0..profile.reads_per_batch)
                .map(|_| {
                    probe_no += 1;
                    if profile.fanout_every > 0 && probe_no.is_multiple_of(profile.fanout_every) {
                        ReadProbe::FanOut(
                            (0..profile.fanout_width)
                                .map(|_| draw_key(&mut rng, stormy))
                                .collect(),
                        )
                    } else if probe_no % 5 == 4 {
                        ReadProbe::ContainsKey(draw_key(&mut rng, stormy))
                    } else {
                        ReadProbe::ValuesOf(draw_key(&mut rng, stormy))
                    }
                })
                .collect()
        })
        .collect();

    let storm_writes = (profile.write_batches / 3)..(2 * profile.write_batches / 3);
    let write_batches: Vec<Vec<MultiMapEdit<u32, u32>>> = (0..profile.write_batches)
        .map(|b| {
            let stormy = storm_writes.contains(&b);
            (0..profile.writes_per_batch)
                .map(|_| {
                    let k = draw_key(&mut rng, stormy);
                    let roll = rng.gen::<f64>();
                    if roll < INSERT_SHARE {
                        MultiMapEdit::Insert(k, rng.gen())
                    } else if roll < INSERT_SHARE + 0.25 {
                        let (k, v) = w.tuples[rng.gen_range(0..w.tuples.len())];
                        MultiMapEdit::RemoveTuple(k, v)
                    } else {
                        MultiMapEdit::RemoveKey(k)
                    }
                })
                .collect()
        })
        .collect();

    ServingWorkload {
        base: w.tuples,
        read_batches,
        write_batches,
    }
}

/// Deals `items` round-robin across `lanes` queues, preserving relative
/// order within each lane — how a bench or driver splits one generated
/// batch timeline across N concurrent client connections without skewing
/// any lane toward one phase of the timeline (a contiguous-chunk split
/// would give one client all the storm batches, say).
///
/// Always returns exactly `max(lanes, 1)` lanes; with fewer items than
/// lanes, the trailing lanes are empty.
pub fn round_robin<T>(items: impl IntoIterator<Item = T>, lanes: usize) -> Vec<Vec<T>> {
    let lanes = lanes.max(1);
    let mut out: Vec<Vec<T>> = (0..lanes).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        out[i % lanes].push(item);
    }
    out
}

/// Interleaves two batch timelines into one pipelined script, preserving
/// relative order within each: after every `reads_per_write` read
/// batches, one write batch is spliced in, and whichever timeline runs
/// out first lets the other drain in order. This is how a wire driver
/// turns a [`ServingWorkload`]'s separate read/write timelines into a
/// single connection's script (`Client::pipeline` in the serving crate),
/// where the server's per-connection write→read barrier makes every
/// spliced write visible to the reads behind it.
///
/// `reads_per_write == 0` is treated as 1. The mapping closures lift the
/// two batch types into the caller's script-op type.
pub fn interleave_script<R, W, S>(
    reads: impl IntoIterator<Item = R>,
    writes: impl IntoIterator<Item = W>,
    reads_per_write: usize,
    mut read_op: impl FnMut(R) -> S,
    mut write_op: impl FnMut(W) -> S,
) -> Vec<S> {
    let stride = reads_per_write.max(1);
    let mut reads = reads.into_iter();
    let mut writes = writes.into_iter();
    let mut script = Vec::new();
    loop {
        let mut drained = true;
        for read in reads.by_ref().take(stride) {
            script.push(read_op(read));
            drained = false;
        }
        match writes.next() {
            Some(write) => script.push(write_op(write)),
            None if drained => break,
            None => {}
        }
    }
    script
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn shapes_are_as_requested() {
        let w = concurrent_workload(500, 8, 32, 7);
        assert_eq!(w.base.len(), 750); // 50% 1:1, 50% 1:2
        assert_eq!(w.batches.len(), 8);
        assert!(w.batches.iter().all(|b| b.len() == 32));
        assert_eq!(w.read_keys.len(), READ_PROBES);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = concurrent_workload(100, 4, 16, 3);
        let b = concurrent_workload(100, 4, 16, 3);
        assert_eq!(a.base, b.base);
        assert_eq!(a.batches, b.batches);
        assert_eq!(a.read_keys, b.read_keys);
        let c = concurrent_workload(100, 4, 16, 4);
        assert_ne!(a.batches, c.batches);
    }

    #[test]
    fn batch_mix_has_all_op_kinds_and_valid_keys() {
        let w = concurrent_workload(300, 6, 64, 11);
        let base_keys: HashSet<u32> = w.base.iter().map(|(k, _)| *k).collect();
        let (mut ins, mut rt, mut rk) = (0, 0, 0);
        for op in w.batches.iter().flatten() {
            match op {
                MultiMapEdit::Insert(k, _) => {
                    assert!(base_keys.contains(k));
                    ins += 1;
                }
                MultiMapEdit::RemoveTuple(k, _) => {
                    assert!(base_keys.contains(k));
                    rt += 1;
                }
                MultiMapEdit::RemoveKey(k) => {
                    assert!(base_keys.contains(k));
                    rk += 1;
                }
            }
        }
        assert!(ins > rt && rt > 0 && rk > 0, "{ins}/{rt}/{rk}");
    }

    fn probe_keys(batch: &[ReadProbe]) -> Vec<u32> {
        batch
            .iter()
            .flat_map(|p| match p {
                ReadProbe::ValuesOf(k) | ReadProbe::ContainsKey(k) => vec![*k],
                ReadProbe::FanOut(ks) => ks.clone(),
            })
            .collect()
    }

    fn small_profile(mix: KeyMix) -> ServingProfile {
        ServingProfile {
            keys: 400,
            read_batches: 30,
            reads_per_batch: 64,
            write_batches: 9,
            writes_per_batch: 32,
            mix,
            fanout_every: 10,
            fanout_width: 8,
        }
    }

    #[test]
    fn zipf_mass_concentrates_on_low_ranks() {
        let z = Zipf::new(10_000, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let draws = 20_000;
        let hot = (0..draws).filter(|_| z.sample(&mut rng) < 100).count();
        // Top 1% of ranks carries H(100)/H(10000) ≈ 53% of the mass.
        let share = hot as f64 / draws as f64;
        assert!((0.45..0.60).contains(&share), "hot share {share}");
        // Uniform (s = 0) gives the same 1% about 1%.
        let u = Zipf::new(10_000, 0.0);
        let hot = (0..draws).filter(|_| u.sample(&mut rng) < 100).count();
        assert!((hot as f64 / draws as f64) < 0.05);
    }

    #[test]
    fn serving_workload_is_deterministic_and_shaped() {
        let p = small_profile(KeyMix::Zipf { exponent: 1.0 });
        let a = serving_workload(&p, 5);
        let b = serving_workload(&p, 5);
        assert_eq!(a.read_batches, b.read_batches);
        assert_eq!(a.write_batches, b.write_batches);
        assert_eq!(a.base, b.base);
        assert_ne!(
            a.read_batches,
            serving_workload(&p, 6).read_batches,
            "seed must matter"
        );
        assert_eq!(a.read_batches.len(), p.read_batches);
        assert!(a.read_batches.iter().all(|b| b.len() == p.reads_per_batch));
        assert_eq!(a.write_batches.len(), p.write_batches);
        let fanouts = a
            .read_batches
            .iter()
            .flatten()
            .filter(|p| matches!(p, ReadProbe::FanOut(_)))
            .count();
        assert!(fanouts > 0, "fan-out probes present");
    }

    #[test]
    fn storm_batches_concentrate_on_hot_keys() {
        let p = small_profile(KeyMix::Storm {
            exponent: 0.0, // uniform background isolates the storm effect
            hot_keys: 4,
            storm_share: 0.9,
        });
        let w = serving_workload(&p, 17);
        // Hottest keys = the 4 most frequent keys inside the storm window.
        let storm_keys: Vec<u32> = (10..20)
            .flat_map(|b| probe_keys(&w.read_batches[b]))
            .collect();
        let calm_keys: Vec<u32> = (0..10)
            .flat_map(|b| probe_keys(&w.read_batches[b]))
            .collect();
        let mut freq = std::collections::HashMap::new();
        for k in &storm_keys {
            *freq.entry(*k).or_insert(0usize) += 1;
        }
        let mut counts: Vec<_> = freq.into_iter().collect();
        counts.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        let hot: HashSet<u32> = counts.iter().take(4).map(|&(k, _)| k).collect();
        let storm_hot = storm_keys.iter().filter(|k| hot.contains(k)).count();
        let calm_hot = calm_keys.iter().filter(|k| hot.contains(k)).count();
        let storm_share = storm_hot as f64 / storm_keys.len() as f64;
        let calm_share = calm_hot as f64 / calm_keys.len() as f64;
        assert!(storm_share > 0.7, "storm share {storm_share}");
        assert!(calm_share < 0.2, "calm share {calm_share}");
    }

    #[test]
    fn serving_write_batches_follow_the_mix() {
        let p = small_profile(KeyMix::Zipf { exponent: 1.1 });
        let w = serving_workload(&p, 23);
        let base_keys: HashSet<u32> = w.base.iter().map(|(k, _)| *k).collect();
        let mut ins = 0;
        for e in w.write_batches.iter().flatten() {
            match e {
                MultiMapEdit::Insert(k, _) => {
                    assert!(base_keys.contains(k));
                    ins += 1;
                }
                MultiMapEdit::RemoveTuple(k, _) | MultiMapEdit::RemoveKey(k) => {
                    assert!(base_keys.contains(k));
                }
            }
        }
        let total = p.write_batches * p.writes_per_batch;
        assert!(ins * 10 > total * 4, "inserts dominate: {ins}/{total}");
    }

    #[test]
    fn round_robin_deals_in_order() {
        let lanes = round_robin(0..10, 3);
        assert_eq!(lanes.len(), 3);
        assert_eq!(lanes[0], vec![0, 3, 6, 9]);
        assert_eq!(lanes[1], vec![1, 4, 7]);
        assert_eq!(lanes[2], vec![2, 5, 8]);
        // Degenerate shapes stay well-formed.
        assert_eq!(round_robin(0..2, 0), vec![vec![0, 1]]);
        assert_eq!(round_robin(std::iter::empty::<u32>(), 4).len(), 4);
    }

    #[test]
    fn interleave_script_splices_and_drains_in_order() {
        #[derive(Debug, PartialEq)]
        enum Op {
            R(u32),
            W(u32),
        }
        // Three reads per write, both timelines ordered.
        let script = interleave_script(0..7u32, 0..2u32, 3, Op::R, Op::W);
        assert_eq!(
            script,
            vec![
                Op::R(0),
                Op::R(1),
                Op::R(2),
                Op::W(0),
                Op::R(3),
                Op::R(4),
                Op::R(5),
                Op::W(1),
                Op::R(6),
            ]
        );
        // Either timeline may run out first; the other drains in order.
        let only_writes = interleave_script(std::iter::empty(), 0..3u32, 2, Op::R, Op::W);
        assert_eq!(only_writes, vec![Op::W(0), Op::W(1), Op::W(2)]);
        let only_reads = interleave_script(0..3u32, std::iter::empty(), 0, Op::R, Op::W);
        assert_eq!(only_reads, vec![Op::R(0), Op::R(1), Op::R(2)]);
    }

    #[test]
    fn read_probes_mix_hits_and_misses() {
        let w = concurrent_workload(200, 1, 1, 9);
        let base_keys: HashSet<u32> = w.base.iter().map(|(k, _)| *k).collect();
        let hits = w.read_keys.iter().filter(|k| base_keys.contains(k)).count();
        let misses = w.read_keys.len() - hits;
        assert!(hits > misses, "{hits} hits vs {misses} misses");
        assert!(misses > 0);
    }
}
