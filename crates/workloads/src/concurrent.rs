//! Workload generation for the concurrent sharded layer: parallel bulk
//! builds and mixed read/write traffic.
//!
//! Two scenario shapes, both deterministic per seed (same discipline as
//! [`crate::data`]):
//!
//! * **parallel build** — the [`crate::data::multimap_workload`] tuple sets
//!   reused at larger sizes; the sharded harness partitions them and builds
//!   shard-locally, so no extra generation is needed beyond sizing;
//! * **mixed read/write** — a base relation plus writer batch scripts
//!   ([`MultiMapEdit`] sequences skewed toward inserts) and a read probe
//!   sequence mixing present and absent keys, modelling a query-heavy
//!   service taking a steady trickle of updates.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trie_common::ops::MultiMapEdit;

use crate::data::multimap_workload;

/// A generated mixed read/write scenario over one `(size, seed)` point.
#[derive(Debug, Clone)]
pub struct ConcurrentWorkload {
    /// The tuples the relation is bulk-loaded with before traffic starts.
    pub base: Vec<(u32, u32)>,
    /// Writer traffic: batches of edits, to be applied in order (per
    /// writer). Inserts dominate; tuple and key removals keep the relation
    /// from growing without bound.
    pub batches: Vec<Vec<MultiMapEdit<u32, u32>>>,
    /// Reader traffic: key probes, 3:1 present-to-absent.
    pub read_keys: Vec<u32>,
}

/// Share of batch operations that are inserts (the rest split between
/// tuple and key removals).
pub const INSERT_SHARE: f64 = 0.6;

/// Number of read probes generated per scenario.
pub const READ_PROBES: usize = 256;

/// Generates a mixed read/write scenario: a `size`-key base relation (the
/// paper's 50 %/50 % `1:1`/`1:2` shape), `batches` writer batches of
/// `batch_len` edits each, and [`READ_PROBES`] read probes.
pub fn concurrent_workload(
    size: usize,
    batches: usize,
    batch_len: usize,
    seed: u64,
) -> ConcurrentWorkload {
    let w = multimap_workload(size, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc0c0_11ec);

    let edit_batches: Vec<Vec<MultiMapEdit<u32, u32>>> = (0..batches)
        .map(|_| {
            (0..batch_len)
                .map(|_| {
                    let roll = rng.gen::<f64>();
                    if roll < INSERT_SHARE {
                        // Fresh value on an existing key: exercises 1:n
                        // promotion without unbounded key growth.
                        let k = w.keys[rng.gen_range(0..w.keys.len())];
                        MultiMapEdit::Insert(k, rng.gen())
                    } else if roll < INSERT_SHARE + 0.25 {
                        let (k, v) = w.tuples[rng.gen_range(0..w.tuples.len())];
                        MultiMapEdit::RemoveTuple(k, v)
                    } else {
                        MultiMapEdit::RemoveKey(w.keys[rng.gen_range(0..w.keys.len())])
                    }
                })
                .collect()
        })
        .collect();

    let read_keys = (0..READ_PROBES)
        .map(|i| {
            if i % 4 == 3 {
                // Miss probe (key absent from the base relation).
                w.miss_tuples[rng.gen_range(0..w.miss_tuples.len())].0
            } else {
                w.keys[rng.gen_range(0..w.keys.len())]
            }
        })
        .collect();

    ConcurrentWorkload {
        base: w.tuples,
        batches: edit_batches,
        read_keys,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn shapes_are_as_requested() {
        let w = concurrent_workload(500, 8, 32, 7);
        assert_eq!(w.base.len(), 750); // 50% 1:1, 50% 1:2
        assert_eq!(w.batches.len(), 8);
        assert!(w.batches.iter().all(|b| b.len() == 32));
        assert_eq!(w.read_keys.len(), READ_PROBES);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = concurrent_workload(100, 4, 16, 3);
        let b = concurrent_workload(100, 4, 16, 3);
        assert_eq!(a.base, b.base);
        assert_eq!(a.batches, b.batches);
        assert_eq!(a.read_keys, b.read_keys);
        let c = concurrent_workload(100, 4, 16, 4);
        assert_ne!(a.batches, c.batches);
    }

    #[test]
    fn batch_mix_has_all_op_kinds_and_valid_keys() {
        let w = concurrent_workload(300, 6, 64, 11);
        let base_keys: HashSet<u32> = w.base.iter().map(|(k, _)| *k).collect();
        let (mut ins, mut rt, mut rk) = (0, 0, 0);
        for op in w.batches.iter().flatten() {
            match op {
                MultiMapEdit::Insert(k, _) => {
                    assert!(base_keys.contains(k));
                    ins += 1;
                }
                MultiMapEdit::RemoveTuple(k, _) => {
                    assert!(base_keys.contains(k));
                    rt += 1;
                }
                MultiMapEdit::RemoveKey(k) => {
                    assert!(base_keys.contains(k));
                    rk += 1;
                }
            }
        }
        assert!(ins > rt && rt > 0 && rk > 0, "{ins}/{rt}/{rk}");
    }

    #[test]
    fn read_probes_mix_hits_and_misses() {
        let w = concurrent_workload(200, 1, 1, 9);
        let base_keys: HashSet<u32> = w.base.iter().map(|(k, _)| *k).collect();
        let hits = w.read_keys.iter().filter(|k| base_keys.contains(k)).count();
        let misses = w.read_keys.len() - hits;
        assert!(hits > misses, "{hits} hits vs {misses} misses");
        assert!(misses > 0);
    }
}
