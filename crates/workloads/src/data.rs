//! Random test-data generation following the paper's §4.3 methodology.
//!
//! * collections of size `2^x`; random `u32` keys model the hash-code
//!   distribution (a uniform distribution models a good `hashCode`);
//! * for multi-map benchmarks, 50 % of keys carry one value and 50 % carry
//!   two (the fixed `1:2` size isolates the singleton case, promotions and
//!   demotions; §4.1);
//! * for map benchmarks, 100 % `1:1` (§5.1);
//! * every experiment is repeated over multiple seeds — "each time we use a
//!   different input tree generated from a unique seed" — to protect
//!   against accidental trie shapes;
//! * operations run in bursts of 8 parameters: full matches, partial
//!   matches (key present, value absent) and no matches (§4.1, footnote 8:
//!   for sizes < 8 the samples are duplicated until 8 are reached).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of parameters per operation burst (paper §4.1).
pub const BURST: usize = 8;

/// A generated multi-map workload for one `(size, seed)` data point.
#[derive(Debug, Clone)]
pub struct MultiMapWorkload {
    /// Distinct keys (`size` of them).
    pub keys: Vec<u32>,
    /// The tuples to build the collection from: every key maps to one value,
    /// every even-indexed key to a second one (50 % / 50 %).
    pub tuples: Vec<(u32, u32)>,
    /// Burst: present `(key, value)` tuples (full matches).
    pub hit_tuples: Vec<(u32, u32)>,
    /// Burst: present key with absent value (partial matches).
    pub partial_tuples: Vec<(u32, u32)>,
    /// Burst: absent keys (no matches).
    pub miss_tuples: Vec<(u32, u32)>,
}

fn distinct_values(rng: &mut StdRng, n: usize, forbidden: impl Fn(u32) -> bool) -> Vec<u32> {
    let mut seen = std::collections::HashSet::with_capacity(n * 2);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let v = rng.gen::<u32>();
        if !forbidden(v) && seen.insert(v) {
            out.push(v);
        }
    }
    out
}

fn burst_from(rng: &mut StdRng, pool: &[(u32, u32)]) -> Vec<(u32, u32)> {
    // Paper footnote 8: duplicate samples until BURST are reached.
    (0..BURST)
        .map(|_| pool[rng.gen_range(0..pool.len())])
        .collect()
}

/// Distribution of values-per-key for multi-map workload generation.
///
/// The paper fixes nested sets to size 2 ("the effect of larger value sets
/// on memory usage and time can be inferred from that"); the extra variants
/// measure that inference directly (the `valuesets` experiment binary).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueDist {
    /// The paper's §4.1 shape: 50 % of keys with one value, 50 % with two.
    HalfOneHalfTwo,
    /// Every key carries exactly `n` values.
    Fixed(usize),
    /// Geometric tail: `P(count = k) ∝ (1-p)^(k-1)`, capped at 64. Models
    /// the skewed distributions of program-dependence graphs (§1).
    Geometric(f64),
}

impl ValueDist {
    fn sample(&self, rng: &mut StdRng) -> usize {
        match self {
            ValueDist::HalfOneHalfTwo => unreachable!("handled positionally"),
            ValueDist::Fixed(n) => (*n).max(1),
            ValueDist::Geometric(p) => {
                let mut count = 1usize;
                while count < 64 && !rng.gen_bool(p.clamp(0.01, 1.0)) {
                    count += 1;
                }
                count
            }
        }
    }
}

/// Generates a multi-map workload with a custom values-per-key distribution.
pub fn multimap_workload_with(size: usize, seed: u64, dist: ValueDist) -> MultiMapWorkload {
    assert!(size >= 1);
    if dist == ValueDist::HalfOneHalfTwo {
        return multimap_workload(size, seed);
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0f00);
    let keys = distinct_values(&mut rng, size, |_| false);
    let key_set: std::collections::HashSet<u32> = keys.iter().copied().collect();

    let mut tuples = Vec::new();
    for &k in &keys {
        let n = dist.sample(&mut rng);
        let mut seen = std::collections::HashSet::with_capacity(n);
        while seen.len() < n {
            seen.insert(rng.gen::<u32>());
        }
        tuples.extend(seen.into_iter().map(|v| (k, v)));
    }

    let hit_tuples = burst_from(&mut rng, &tuples);
    let partial_pool: Vec<(u32, u32)> = keys.iter().map(|&k| (k, 0xdead_0000 ^ k)).collect();
    let partial_tuples = burst_from(&mut rng, &partial_pool);
    let missing_keys = distinct_values(&mut rng, BURST, |v| key_set.contains(&v));
    let miss_tuples = missing_keys.into_iter().map(|k| (k, k)).collect();

    MultiMapWorkload {
        keys,
        tuples,
        hit_tuples,
        partial_tuples,
        miss_tuples,
    }
}

/// Generates the multi-map workload for `size` keys under `seed`.
pub fn multimap_workload(size: usize, seed: u64) -> MultiMapWorkload {
    assert!(size >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let keys = distinct_values(&mut rng, size, |_| false);
    let key_set: std::collections::HashSet<u32> = keys.iter().copied().collect();

    let mut tuples = Vec::with_capacity(size + size / 2);
    for (i, &k) in keys.iter().enumerate() {
        let v1 = rng.gen::<u32>();
        tuples.push((k, v1));
        if i % 2 == 0 {
            // 1:2 mapping: second distinct value.
            let mut v2 = rng.gen::<u32>();
            while v2 == v1 {
                v2 = rng.gen::<u32>();
            }
            tuples.push((k, v2));
        }
    }

    let hit_tuples = burst_from(&mut rng, &tuples);
    let partial_pool: Vec<(u32, u32)> = keys
        .iter()
        .map(|&k| (k, 0xdead_0000 ^ k)) // value extremely unlikely to collide
        .collect();
    let partial_tuples = burst_from(&mut rng, &partial_pool);
    let missing_keys = distinct_values(&mut rng, BURST, |v| key_set.contains(&v));
    let miss_tuples = missing_keys.into_iter().map(|k| (k, k)).collect();

    MultiMapWorkload {
        keys,
        tuples,
        hit_tuples,
        partial_tuples,
        miss_tuples,
    }
}

/// A generated map workload (100 % `1:1`) for one `(size, seed)` point.
#[derive(Debug, Clone)]
pub struct MapWorkload {
    /// The entries to build the map from.
    pub entries: Vec<(u32, u32)>,
    /// Burst: present keys.
    pub hit_keys: Vec<u32>,
    /// Burst: absent keys.
    pub miss_keys: Vec<u32>,
    /// Burst: fresh entries to insert (absent keys).
    pub insert_entries: Vec<(u32, u32)>,
}

/// Generates the map workload for `size` entries under `seed`.
pub fn map_workload(size: usize, seed: u64) -> MapWorkload {
    assert!(size >= 1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd_ef01);
    let keys = distinct_values(&mut rng, size, |_| false);
    let key_set: std::collections::HashSet<u32> = keys.iter().copied().collect();
    let entries: Vec<(u32, u32)> = keys.iter().map(|&k| (k, rng.gen())).collect();
    let hit_keys = (0..BURST)
        .map(|_| keys[rng.gen_range(0..keys.len())])
        .collect();
    let fresh = distinct_values(&mut rng, 2 * BURST, |v| key_set.contains(&v));
    let miss_keys = fresh[..BURST].to_vec();
    let insert_entries = fresh[BURST..].iter().map(|&k| (k, k ^ 0xffff)).collect();
    MapWorkload {
        entries,
        hit_keys,
        miss_keys,
        insert_entries,
    }
}

/// The size sweep used by the paper: `2^x for x ∈ [1, 23]`, optionally
/// truncated for quicker runs.
pub fn size_sweep(max_exp: u32) -> Vec<usize> {
    (1..=max_exp).map(|x| 1usize << x).collect()
}

/// The paper repeats each data point with five distinct seeds.
pub const SEEDS: [u64; 5] = [11, 23, 47, 89, 178];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn multimap_workload_has_paper_shape() {
        let w = multimap_workload(1000, 7);
        assert_eq!(w.keys.len(), 1000);
        assert_eq!(w.tuples.len(), 1500); // 50% 1:1, 50% 1:2
        let mut per_key: HashMap<u32, usize> = HashMap::new();
        for (k, _) in &w.tuples {
            *per_key.entry(*k).or_default() += 1;
        }
        let singles = per_key.values().filter(|&&c| c == 1).count();
        let doubles = per_key.values().filter(|&&c| c == 2).count();
        assert_eq!(singles, 500);
        assert_eq!(doubles, 500);
    }

    #[test]
    fn bursts_have_eight_parameters() {
        let w = multimap_workload(4, 3);
        assert_eq!(w.hit_tuples.len(), BURST);
        assert_eq!(w.partial_tuples.len(), BURST);
        assert_eq!(w.miss_tuples.len(), BURST);
    }

    #[test]
    fn miss_keys_are_truly_absent() {
        let w = multimap_workload(512, 9);
        let keys: HashSet<u32> = w.keys.iter().copied().collect();
        for (k, _) in &w.miss_tuples {
            assert!(!keys.contains(k));
        }
        // Partial tuples have present keys but absent values.
        let tuples: HashSet<(u32, u32)> = w.tuples.iter().copied().collect();
        for t in &w.partial_tuples {
            assert!(keys.contains(&t.0));
            assert!(!tuples.contains(t));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = multimap_workload(64, 5);
        let b = multimap_workload(64, 5);
        assert_eq!(a.tuples, b.tuples);
        let c = multimap_workload(64, 6);
        assert_ne!(a.tuples, c.tuples);
    }

    #[test]
    fn map_workload_sane() {
        let w = map_workload(256, 1);
        assert_eq!(w.entries.len(), 256);
        let keys: HashSet<u32> = w.entries.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys.len(), 256);
        for k in &w.miss_keys {
            assert!(!keys.contains(k));
        }
        for (k, _) in &w.insert_entries {
            assert!(!keys.contains(k));
        }
    }

    #[test]
    fn sweep_is_powers_of_two() {
        assert_eq!(size_sweep(4), vec![2, 4, 8, 16]);
        assert_eq!(size_sweep(23).len(), 23);
    }

    #[test]
    fn fixed_value_dist_shapes() {
        for n in [1usize, 3, 8] {
            let w = multimap_workload_with(100, 5, ValueDist::Fixed(n));
            assert_eq!(w.keys.len(), 100);
            assert_eq!(w.tuples.len(), 100 * n);
            let mut per_key: HashMap<u32, usize> = HashMap::new();
            for (k, _) in &w.tuples {
                *per_key.entry(*k).or_default() += 1;
            }
            assert!(per_key.values().all(|&c| c == n));
        }
    }

    #[test]
    fn geometric_dist_is_skewed() {
        let w = multimap_workload_with(2000, 9, ValueDist::Geometric(0.6));
        let mut per_key: HashMap<u32, usize> = HashMap::new();
        for (k, _) in &w.tuples {
            *per_key.entry(*k).or_default() += 1;
        }
        let singles = per_key.values().filter(|&&c| c == 1).count();
        let multi = per_key.values().filter(|&&c| c > 2).count();
        // Majority singletons with a real tail of larger sets.
        assert!(singles > 1000, "singles: {singles}");
        assert!(multi > 50, "multi: {multi}");
        assert!(per_key.values().all(|&c| c <= 64));
    }

    #[test]
    fn custom_dist_falls_back_to_paper_shape() {
        let a = multimap_workload_with(64, 3, ValueDist::HalfOneHalfTwo);
        let b = multimap_workload(64, 3);
        assert_eq!(a.tuples, b.tuples);
    }

    #[test]
    fn custom_dist_bursts_are_consistent() {
        let w = multimap_workload_with(128, 7, ValueDist::Fixed(4));
        let tuples: HashSet<(u32, u32)> = w.tuples.iter().copied().collect();
        for t in &w.hit_tuples {
            assert!(tuples.contains(t));
        }
        let keys: HashSet<u32> = w.keys.iter().copied().collect();
        for (k, _) in &w.miss_tuples {
            assert!(!keys.contains(k));
        }
    }
}
