//! **workloads** — paper-faithful workload generation and measurement.
//!
//! Four pieces drive every experiment in `paper-bench`:
//!
//! * [`data`] — the §4.3 random-data methodology: `2^x` sizes, five seeds
//!   per data point, skewed 50 %/50 % `1:1`/`1:2` multi-map distributions,
//!   100 % `1:1` map distributions, and 8-parameter operation bursts with
//!   full/partial/no matches;
//! * [`build`] — generic construction of the structures under test
//!   (persistent fold vs transient builder), written once against the
//!   [`trie_common::ops`] traits;
//! * [`concurrent`] — scenarios for the sharded layer: parallel bulk-build
//!   sizing and mixed read/write traffic (writer batch scripts + read
//!   probes);
//! * [`snapshot`] — save/restore scenarios for the persistence layer
//!   (sized relations plus hit/partial/miss probe oracles);
//! * [`faults`] (behind the `fault-injection` feature) — seeded chaos-plan
//!   generation for the fault-injection harness, so panic/delay storms are
//!   reproducible from a seed;
//! * [`timing`] — JMH-like warmup + measurement iterations with median/MAD
//!   statistics and box-plot-style ratio summaries;
//! * [`report`] — markdown table emission so the binaries regenerate the
//!   tables recorded in EXPERIMENTS.md.
//!
//! # Examples
//!
//! ```
//! use workloads::data::multimap_workload;
//! use workloads::timing::{measure, BenchOptions};
//!
//! let w = multimap_workload(64, 11);
//! let stats = measure(&BenchOptions::QUICK, || w.tuples.iter().count());
//! assert!(stats.median_ns >= 0.0);
//! ```

#![warn(missing_docs)]

pub mod build;
pub mod concurrent;
pub mod data;
#[cfg(feature = "fault-injection")]
pub mod faults;
pub mod report;
pub mod snapshot;
pub mod timing;

pub use build::{map_persistent, map_transient, multimap_persistent, multimap_transient};
pub use concurrent::{
    concurrent_workload, round_robin, serving_workload, ConcurrentWorkload, KeyMix, ReadProbe,
    ServingProfile, ServingWorkload, Zipf,
};
pub use data::{
    map_workload, multimap_workload, multimap_workload_with, size_sweep, MapWorkload,
    MultiMapWorkload, ValueDist, BURST, SEEDS,
};
pub use report::{expectation_line, fmt_bytes, fmt_ns, Table};
pub use snapshot::{snapshot_workload, verify_restore, SnapshotWorkload};
pub use timing::{measure, BenchOptions, RatioSummary, Stats};
