//! Seeded chaos-plan generation for the fault-injection harness.
//!
//! [`trie_common::faults`] installs a [`FaultPlan`] mapping `(site, hit)`
//! to a panic or delay; this module *generates* such plans from a seed, so
//! a chaos test run is fully reproducible: same seed, same faults, same
//! surviving replies. The generators only pick hit numbers and fault kinds
//! — which sites participate is the caller's choice, keeping each chaos
//! scenario explicit about what it degrades.
//!
//! Only compiled with the `fault-injection` feature (like the registry it
//! feeds).

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trie_common::faults::{Fault, FaultPlan};

/// Tuning for [`chaos_plan`].
#[derive(Debug, Clone)]
pub struct ChaosProfile {
    /// Sites to inject at, e.g. [`trie_common::faults::site::APPLIER_APPLY`].
    pub sites: Vec<&'static str>,
    /// Faults injected per site.
    pub faults_per_site: usize,
    /// Hit indices are drawn uniformly from `0..max_hit` (the registry
    /// counts hits 0-based): sized to the traffic the scenario will push
    /// through each site.
    pub max_hit: u64,
    /// Probability that an injected fault is a panic; the rest are delays.
    pub panic_ratio: f64,
    /// Upper bound for injected delays.
    pub max_delay: Duration,
}

impl ChaosProfile {
    /// Panic-only faults at the given sites: `faults_per_site` panics each,
    /// scattered over the first `max_hit` executions.
    pub fn panics(sites: Vec<&'static str>, faults_per_site: usize, max_hit: u64) -> Self {
        ChaosProfile {
            sites,
            faults_per_site,
            max_hit,
            panic_ratio: 1.0,
            max_delay: Duration::ZERO,
        }
    }
}

/// Generates a deterministic chaos [`FaultPlan`] from `seed`: for each site
/// in the profile, `faults_per_site` faults at distinct random hits.
///
/// Determinism contract: the plan depends only on `(profile, seed)`. What
/// the plan *does* to a run also depends on scheduling (which worker
/// reaches hit N), so chaos tests assert outcome *invariants* (acked data
/// survives, engine keeps answering), not exact schedules.
pub fn chaos_plan(profile: &ChaosProfile, seed: u64) -> FaultPlan {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut plan = FaultPlan::new();
    for &site in &profile.sites {
        let mut hits = Vec::with_capacity(profile.faults_per_site);
        while hits.len() < profile.faults_per_site {
            let hit = rng.gen_range(0..profile.max_hit.max(1));
            if !hits.contains(&hit) {
                hits.push(hit);
            }
        }
        for hit in hits {
            let fault = if rng.gen_bool(profile.panic_ratio.clamp(0.0, 1.0)) {
                Fault::Panic
            } else {
                Fault::Delay(Duration::from_micros(
                    rng.gen_range(0..=profile.max_delay.as_micros().max(1) as u64),
                ))
            };
            plan = plan.fault_at(site, hit, fault);
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use trie_common::faults::site;

    #[test]
    fn plans_are_seed_deterministic() {
        let profile = ChaosProfile {
            sites: vec![site::APPLIER_APPLY, site::READ_WORKER],
            faults_per_site: 5,
            max_hit: 100,
            panic_ratio: 0.5,
            max_delay: Duration::from_millis(2),
        };
        assert_eq!(chaos_plan(&profile, 42), chaos_plan(&profile, 42));
        assert_ne!(chaos_plan(&profile, 42), chaos_plan(&profile, 43));
    }

    #[test]
    fn panic_profile_injects_only_panics() {
        let profile = ChaosProfile::panics(vec![site::PUBLISH_COMMIT], 3, 10);
        let plan = chaos_plan(&profile, 7);
        assert!(!plan.is_empty());
    }
}
