//! JMH-like timing: warmup iterations, measurement iterations, and robust
//! statistics (median + Median Absolute Deviation), per the paper's §4.3
//! methodology (Georges et al. / Kalibera & Jones best practices, scaled to
//! a harness that runs in minutes rather than hours).

use std::time::Instant;

/// Measurement configuration.
#[derive(Debug, Clone, Copy)]
pub struct BenchOptions {
    /// Warmup iterations (discarded).
    pub warmup_iters: usize,
    /// Measured iterations.
    pub measure_iters: usize,
    /// Inner repetitions per iteration (amortizes timer overhead for
    /// nanosecond-scale operations).
    pub inner_reps: usize,
}

impl BenchOptions {
    /// Quick profile used by the table-printing binaries. The inner
    /// repetitions amortize timer overhead: a burst of 8 operations runs in
    /// hundreds of nanoseconds, far below `Instant::now` resolution.
    pub const QUICK: BenchOptions = BenchOptions {
        warmup_iters: 5,
        measure_iters: 11,
        inner_reps: 32,
    };

    /// Thorough profile (closer to the paper's 10 + 20 iterations).
    pub const THOROUGH: BenchOptions = BenchOptions {
        warmup_iters: 10,
        measure_iters: 20,
        inner_reps: 64,
    };
}

/// Robust summary of one benchmark's iteration times, in nanoseconds per
/// *inner repetition*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Median iteration time.
    pub median_ns: f64,
    /// Median absolute deviation.
    pub mad_ns: f64,
    /// Number of measured iterations.
    pub iters: usize,
}

impl Stats {
    /// Speedup of `self` relative to `other` (> 1 means `other` is faster…
    /// no: > 1 means `self` is the baseline time and `other` is faster).
    /// Concretely: `other_median / self_median`.
    pub fn ratio_to(&self, baseline: &Stats) -> f64 {
        baseline.median_ns / self.median_ns
    }
}

fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Runs `f` under `opts` and reports robust statistics. The closure's return
/// value is passed through [`std::hint::black_box`] so its computation
/// cannot be optimized away.
pub fn measure<R>(opts: &BenchOptions, mut f: impl FnMut() -> R) -> Stats {
    for _ in 0..opts.warmup_iters {
        std::hint::black_box(f());
    }
    let mut samples = Vec::with_capacity(opts.measure_iters);
    for _ in 0..opts.measure_iters {
        let start = Instant::now();
        for _ in 0..opts.inner_reps {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed().as_nanos() as f64 / opts.inner_reps as f64;
        samples.push(elapsed);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let med = median(&samples);
    let mut deviations: Vec<f64> = samples.iter().map(|s| (s - med).abs()).collect();
    deviations.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Stats {
        median_ns: med,
        mad_ns: median(&deviations),
        iters: samples.len(),
    }
}

/// Summary of a per-size ratio series: the box-plot-style numbers the
/// paper's Figures 4-6 visualize (median, quartiles, min/max of speedups
/// across all size data points).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioSummary {
    /// Smallest observed ratio.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median ratio.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest observed ratio.
    pub max: f64,
}

impl RatioSummary {
    /// Summarizes a set of ratios (one per size/seed data point).
    ///
    /// # Panics
    ///
    /// Panics if `ratios` is empty.
    pub fn of(mut ratios: Vec<f64>) -> RatioSummary {
        assert!(!ratios.is_empty(), "no data points");
        ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q = |p: f64| -> f64 {
            let idx = p * (ratios.len() - 1) as f64;
            let lo = idx.floor() as usize;
            let hi = idx.ceil() as usize;
            if lo == hi {
                ratios[lo]
            } else {
                ratios[lo] + (ratios[hi] - ratios[lo]) * (idx - lo as f64)
            }
        };
        RatioSummary {
            min: ratios[0],
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            max: *ratios.last().unwrap(),
        }
    }
}

impl std::fmt::Display for RatioSummary {
    /// Formats like the paper's prose: `×1.47 (q1 ×1.31, q3 ×1.62)`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "x{:.2} [min x{:.2}, q1 x{:.2}, q3 x{:.2}, max x{:.2}]",
            self.median, self.min, self.q1, self.q3, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_positive_times() {
        let stats = measure(&BenchOptions::QUICK, || (0..1000u64).sum::<u64>());
        assert!(stats.median_ns > 0.0);
        assert_eq!(stats.iters, BenchOptions::QUICK.measure_iters);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn ratio_direction() {
        let fast = Stats {
            median_ns: 100.0,
            mad_ns: 0.0,
            iters: 1,
        };
        let slow = Stats {
            median_ns: 200.0,
            mad_ns: 0.0,
            iters: 1,
        };
        // fast relative to slow baseline: 2x speedup.
        assert!((fast.ratio_to(&slow) - 2.0).abs() < 1e-9);
        assert!((slow.ratio_to(&fast) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn ratio_summary_quartiles() {
        let s = RatioSummary::of(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        let single = RatioSummary::of(vec![1.5]);
        assert_eq!(single.median, 1.5);
    }

    #[test]
    #[should_panic(expected = "no data points")]
    fn empty_summary_panics() {
        let _ = RatioSummary::of(vec![]);
    }
}
