//! HAMT sets: Clojure-flavoured [`HamtSet`] and Scala-flavoured
//! [`MemoHamtSet`].
//!
//! Clojure's `PersistentHashSet` is a thin wrapper around its hash map with
//! the element stored as both key and value; [`HamtSet`] mirrors that as a
//! newtype over [`HamtMap<T, ()>`], and the JVM heap model accounts for the
//! doubled slot (the value slot references the same element object, so no
//! extra payload box is counted). [`MemoHamtSet`] wraps [`MemoHamtMap`] and
//! inherits its memoized hashes (Scala `HashSet` leaves store their hash).

use std::borrow::Borrow;
use std::hash::Hash;

use crate::map::HamtMap;
use crate::memo::MemoHamtMap;

/// A persistent hash set over the Clojure-flavoured HAMT.
///
/// # Examples
///
/// ```
/// use hamt::HamtSet;
///
/// let s: HamtSet<u32> = (0..5).collect();
/// assert!(s.contains(&3));
/// assert_eq!(s.inserted(9).len(), 6);
/// assert_eq!(s.len(), 5); // persistent
/// ```
#[derive(Clone)]
pub struct HamtSet<T> {
    pub(crate) map: HamtMap<T, ()>,
}

impl<T> HamtSet<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the set holds no elements.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates the elements in unspecified (trie) order.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            inner: self.map.keys(),
        }
    }
}

impl<T: Clone + Eq + Hash> HamtSet<T> {
    /// Creates an empty set.
    pub fn new() -> Self {
        HamtSet {
            map: HamtMap::new(),
        }
    }

    /// Membership test.
    pub fn contains<Q>(&self, value: &Q) -> bool
    where
        T: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.map.contains_key(value)
    }

    /// Returns a set including `value`; `self` is unchanged.
    pub fn inserted(&self, value: T) -> Self {
        HamtSet {
            map: self.map.inserted(value, ()),
        }
    }

    /// Inserts `value` in place. Returns true if the set grew.
    pub fn insert_mut(&mut self, value: T) -> bool {
        self.map.insert_mut(value, ())
    }

    /// Returns a set excluding `value`; `self` is unchanged.
    pub fn removed<Q>(&self, value: &Q) -> Self
    where
        T: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        HamtSet {
            map: self.map.removed(value),
        }
    }

    /// Removes `value` in place. Returns true if the set shrank.
    pub fn remove_mut<Q>(&mut self, value: &Q) -> bool
    where
        T: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.map.remove_mut(value)
    }

    /// The sole element of a singleton set.
    ///
    /// # Panics
    ///
    /// Panics if the set does not hold exactly one element.
    pub fn sole(&self) -> &T {
        assert_eq!(self.len(), 1, "sole() requires a singleton set");
        self.iter().next().expect("len == 1")
    }

    /// What changed between `self` (old) and `other` (new), via the inner
    /// map's lockstep structural walk (pointer-shared subtrees are skipped;
    /// non-canonical shapes fall back to content recursion).
    pub fn diff(&self, other: &Self) -> trie_common::ops::SetDiff<T> {
        let d = self.map.diff(&other.map);
        let mut out = trie_common::ops::SetDiff::new();
        out.added.extend(d.added.into_iter().map(|(k, ())| k));
        out.removed.extend(d.removed.into_iter().map(|(k, ())| k));
        out
    }

    pub(crate) fn inner(&self) -> &HamtMap<T, ()> {
        &self.map
    }

    /// Structural sanity checks (see [`HamtMap::assert_invariants`]).
    ///
    /// # Panics
    ///
    /// Panics if any structural invariant is violated.
    #[doc(hidden)]
    pub fn assert_invariants(&self) {
        self.map.assert_invariants();
    }
}

impl<T: Clone + Eq + Hash> Default for HamtSet<T> {
    fn default() -> Self {
        HamtSet::new()
    }
}

impl<T: Clone + Eq + Hash> PartialEq for HamtSet<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().all(|v| other.contains(v))
    }
}

impl<T: Clone + Eq + Hash> Eq for HamtSet<T> {}

impl<T: std::fmt::Debug> std::fmt::Debug for HamtSet<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<T: Clone + Eq + Hash> FromIterator<T> for HamtSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        trie_common::ops::from_iter_via(iter)
    }
}

impl<T: Clone + Eq + Hash> Extend<T> for HamtSet<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        trie_common::ops::extend_via(self, iter);
    }
}

impl<'a, T> IntoIterator for &'a HamtSet<T> {
    type Item = &'a T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

/// Iterator over a [`HamtSet`]'s elements. Created by [`HamtSet::iter`].
#[derive(Debug)]
pub struct Iter<'a, T> {
    inner: crate::map::Keys<'a, T, ()>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = &'a T;
    fn next(&mut self) -> Option<&'a T> {
        self.inner.next()
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<'a, T> ExactSizeIterator for Iter<'a, T> {}

/// A persistent hash set over the Scala-flavoured memoizing HAMT.
///
/// # Examples
///
/// ```
/// use hamt::MemoHamtSet;
///
/// let s: MemoHamtSet<&str> = ["a", "b"].into_iter().collect();
/// assert!(s.contains(&"a"));
/// ```
#[derive(Clone)]
pub struct MemoHamtSet<T> {
    pub(crate) map: MemoHamtMap<T, ()>,
}

impl<T> MemoHamtSet<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the set holds no elements.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates the elements in unspecified (trie) order.
    pub fn iter(&self) -> MemoIter<'_, T> {
        MemoIter {
            inner: self.map.keys(),
        }
    }
}

impl<T: Clone + Eq + Hash> MemoHamtSet<T> {
    /// Creates an empty set.
    pub fn new() -> Self {
        MemoHamtSet {
            map: MemoHamtMap::new(),
        }
    }

    /// Membership test (memoized-hash fast path for misses).
    pub fn contains<Q>(&self, value: &Q) -> bool
    where
        T: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.map.contains_key(value)
    }

    /// Returns a set including `value`; `self` is unchanged.
    pub fn inserted(&self, value: T) -> Self {
        MemoHamtSet {
            map: self.map.inserted(value, ()),
        }
    }

    /// Inserts `value` in place. Returns true if the set grew.
    pub fn insert_mut(&mut self, value: T) -> bool {
        self.map.insert_mut(value, ())
    }

    /// Returns a set excluding `value`; `self` is unchanged.
    pub fn removed<Q>(&self, value: &Q) -> Self
    where
        T: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        MemoHamtSet {
            map: self.map.removed(value),
        }
    }

    /// Removes `value` in place. Returns true if the set shrank.
    pub fn remove_mut<Q>(&mut self, value: &Q) -> bool
    where
        T: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.map.remove_mut(value)
    }

    /// The sole element of a singleton set.
    ///
    /// # Panics
    ///
    /// Panics if the set does not hold exactly one element.
    pub fn sole(&self) -> &T {
        assert_eq!(self.len(), 1, "sole() requires a singleton set");
        self.iter().next().expect("len == 1")
    }

    pub(crate) fn inner(&self) -> &MemoHamtMap<T, ()> {
        &self.map
    }

    /// Structural checks (see [`MemoHamtMap::assert_invariants`]).
    ///
    /// # Panics
    ///
    /// Panics if any structural invariant is violated.
    #[doc(hidden)]
    pub fn assert_invariants(&self) {
        self.map.assert_invariants();
    }
}

impl<T: Clone + Eq + Hash> Default for MemoHamtSet<T> {
    fn default() -> Self {
        MemoHamtSet::new()
    }
}

impl<T: Clone + Eq + Hash> PartialEq for MemoHamtSet<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().all(|v| other.contains(v))
    }
}

impl<T: Clone + Eq + Hash> Eq for MemoHamtSet<T> {}

impl<T: std::fmt::Debug> std::fmt::Debug for MemoHamtSet<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<T: Clone + Eq + Hash> FromIterator<T> for MemoHamtSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        trie_common::ops::from_iter_via(iter)
    }
}

impl<T: Clone + Eq + Hash> Extend<T> for MemoHamtSet<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        trie_common::ops::extend_via(self, iter);
    }
}

impl<'a, T> IntoIterator for &'a MemoHamtSet<T> {
    type Item = &'a T;
    type IntoIter = MemoIter<'a, T>;
    fn into_iter(self) -> MemoIter<'a, T> {
        self.iter()
    }
}

/// Iterator over a [`MemoHamtSet`]'s elements. Created by
/// [`MemoHamtSet::iter`].
#[derive(Debug)]
pub struct MemoIter<'a, T> {
    inner: crate::memo::Keys<'a, T, ()>,
}

impl<'a, T> Iterator for MemoIter<'a, T> {
    type Item = &'a T;
    fn next(&mut self) -> Option<&'a T> {
        self.inner.next()
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<'a, T> ExactSizeIterator for MemoIter<'a, T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn hamt_set_roundtrip() {
        let mut s: HamtSet<u32> = (0..300).collect();
        assert_eq!(s.len(), 300);
        s.assert_invariants();
        for i in 0..300 {
            assert!(s.contains(&i));
            assert!(s.remove_mut(&i));
        }
        assert!(s.is_empty());
    }

    #[test]
    fn memo_set_roundtrip() {
        let mut s: MemoHamtSet<u32> = (0..300).collect();
        assert_eq!(s.len(), 300);
        s.assert_invariants();
        for i in (0..300).rev() {
            assert!(s.remove_mut(&i));
            s.assert_invariants();
        }
        assert!(s.is_empty());
    }

    #[test]
    fn equality_and_iteration() {
        let a: HamtSet<u32> = (0..50).collect();
        let b: HamtSet<u32> = (0..50).rev().collect();
        assert_eq!(a, b);
        let elems: BTreeSet<u32> = a.iter().copied().collect();
        assert_eq!(elems, (0..50).collect());
        assert_ne!(a, b.inserted(99));
    }

    #[test]
    fn sole_elements() {
        let s: HamtSet<u32> = std::iter::once(4).collect();
        assert_eq!(*s.sole(), 4);
        let m: MemoHamtSet<u32> = std::iter::once(6).collect();
        assert_eq!(*m.sole(), 6);
    }
}
