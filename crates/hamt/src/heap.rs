//! Footprint walkers for the HAMT collections (see `heapmodel`).
//!
//! Modeled JVM layouts follow the libraries each flavour stands in for:
//!
//! * **Clojure** `BitmapIndexedNode`: node object (1 int bitmap, 1 array ref)
//!   plus an `Object[2·arity]` — entries occupy `(key, value)` pairs and
//!   sub-nodes occupy `(null, node)` pairs, so *every* branch costs two
//!   slots. Sets store the element in both slots (one payload box).
//! * **Scala** `HashTrieMap`: node object (1 int bitmap, 1 int size, 1 array
//!   ref) plus `Object[arity]`, where each payload branch references a
//!   separate `HashMap1` leaf object (hash int + key/value refs + cached
//!   tuple ref) — the leaf objects are what make Scala's maps heavy.

use std::hash::Hash;
use std::sync::Arc;

use heapmodel::{
    arc_alloc_bytes, boxed_slice_bytes, Accounting, JvmArch, JvmFootprint, JvmSize, LayoutPolicy,
    RustFootprint,
};

use crate::map::{self, HamtMap};
use crate::memo::{self, MemoHamtMap};
use crate::set::{HamtSet, MemoHamtSet};

/// Per-entry payload accounting callback used by the `*_with` walkers so
/// composite structures (multi-maps with structured values) can recurse.
pub type EntryAccount<'a, K, V> = &'a mut dyn FnMut(&K, &V, &mut Accounting);

fn hamt_nodes_jvm_with<K, V>(
    node: &map::Node<K, V>,
    arch: &JvmArch,
    policy: &LayoutPolicy,
    acc: &mut Accounting,
    entry: EntryAccount<'_, K, V>,
) {
    match node {
        map::Node::Bitmap(b) => {
            let arity = b.slots.len() as u64;
            if arity > 16 {
                // Clojure converts nodes past 16 branches into an ArrayNode:
                // a fixed Object[32] of child references *with empty cells*
                // (the paper's Hypothesis 3: "Clojure's simple compression
                // may contain empty array cells"). Inlined entries at this
                // level are pushed down into single-pair BitmapIndexedNodes.
                acc.structure(arch.object(1, 1, 0) + arch.ref_array(32));
                for slot in b.slots.iter() {
                    match slot {
                        map::Slot::Entry(k, v) => {
                            acc.structure(arch.object(1, 1, 0) + arch.ref_array(2));
                            entry(k, v, acc);
                        }
                        map::Slot::Child(child) => {
                            hamt_nodes_jvm_with(child, arch, policy, acc, entry)
                        }
                    }
                }
            } else {
                // BitmapIndexedNode: two array slots per branch, whatever it
                // holds ((key, value) pairs or (null, node) pairs).
                acc.structure(policy.node_size(arch, 2 * arity, 1, 0));
                for slot in b.slots.iter() {
                    match slot {
                        map::Slot::Entry(k, v) => entry(k, v, acc),
                        map::Slot::Child(child) => {
                            hamt_nodes_jvm_with(child, arch, policy, acc, entry)
                        }
                    }
                }
            }
        }
        map::Node::Collision(c) => {
            acc.structure(arch.object(1, 1, 0) + arch.ref_array(2 * c.entries.len() as u64));
            for (k, v) in &c.entries {
                entry(k, v, acc);
            }
        }
    }
}

/// Walks a [`HamtMap`]'s modeled JVM structure, delegating per-entry payload
/// accounting to `entry` (for composite values like nested collections).
pub fn hamt_map_jvm_with<K, V>(
    map: &HamtMap<K, V>,
    arch: &JvmArch,
    policy: &LayoutPolicy,
    acc: &mut Accounting,
    entry: EntryAccount<'_, K, V>,
) where
    K: Clone + Eq + Hash,
    V: Clone + PartialEq,
{
    acc.structure(arch.object(1, 2, 0));
    hamt_nodes_jvm_with(map.root_node(), arch, policy, acc, entry);
}

fn hamt_nodes_jvm<K: JvmSize, V: JvmSize>(
    node: &map::Node<K, V>,
    arch: &JvmArch,
    policy: &LayoutPolicy,
    acc: &mut Accounting,
    is_set: bool,
) {
    hamt_nodes_jvm_with(node, arch, policy, acc, &mut |k, v, acc| {
        acc.payload(k.jvm_size(arch));
        if !is_set {
            acc.payload(v.jvm_size(arch));
        }
    });
}

impl<K, V> JvmFootprint for HamtMap<K, V>
where
    K: Clone + Eq + Hash + JvmSize,
    V: Clone + PartialEq + JvmSize,
{
    fn jvm_footprint(&self, arch: &JvmArch, policy: &LayoutPolicy, acc: &mut Accounting) {
        acc.structure(arch.object(1, 2, 0));
        hamt_nodes_jvm(self.root_node(), arch, policy, acc, false);
    }
}

impl<T> JvmFootprint for HamtSet<T>
where
    T: Clone + Eq + Hash + JvmSize,
{
    fn jvm_footprint(&self, arch: &JvmArch, policy: &LayoutPolicy, acc: &mut Accounting) {
        acc.structure(arch.object(1, 2, 0));
        hamt_nodes_jvm(self.inner().root_node(), arch, policy, acc, true);
    }
}

/// Nested-set measurement without the outer wrapper (for composite
/// multi-maps whose wrapper is governed by the enclosing [`LayoutPolicy`]).
pub fn nested_hamt_set_jvm<T: Clone + Eq + Hash + JvmSize>(
    set: &HamtSet<T>,
    arch: &JvmArch,
    policy: &LayoutPolicy,
    acc: &mut Accounting,
) {
    hamt_nodes_jvm(set.inner().root_node(), arch, policy, acc, true);
}

fn hamt_nodes_rust_with<K, V>(
    node: &Arc<map::Node<K, V>>,
    acc: &mut Accounting,
    entry: EntryAccount<'_, K, V>,
) {
    if !acc.first_visit(Arc::as_ptr(node)) {
        return;
    }
    acc.structure(arc_alloc_bytes::<map::Node<K, V>>());
    match &**node {
        map::Node::Bitmap(b) => {
            acc.structure(boxed_slice_bytes::<map::Slot<K, V>>(b.slots.len()));
            for slot in b.slots.iter() {
                match slot {
                    map::Slot::Child(child) => hamt_nodes_rust_with(child, acc, entry),
                    map::Slot::Entry(k, v) => entry(k, v, acc),
                }
            }
        }
        map::Node::Collision(c) => {
            acc.structure(boxed_slice_bytes::<(K, V)>(c.entries.len()));
            for (k, v) in &c.entries {
                entry(k, v, acc);
            }
        }
    }
}

/// Native-allocation walk with per-entry recursion hook.
pub fn hamt_map_rust_with<K, V>(
    map: &HamtMap<K, V>,
    acc: &mut Accounting,
    entry: EntryAccount<'_, K, V>,
) where
    K: Clone + Eq + Hash,
    V: Clone + PartialEq,
{
    hamt_nodes_rust_with(&map.root, acc, entry);
}

fn hamt_nodes_rust<K, V>(node: &Arc<map::Node<K, V>>, acc: &mut Accounting) {
    hamt_nodes_rust_with(node, acc, &mut |_, _, _| {});
}

impl<K, V> RustFootprint for HamtMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + PartialEq,
{
    fn rust_footprint(&self, acc: &mut Accounting) {
        hamt_nodes_rust(&self.root, acc);
    }
}

impl<T: Clone + Eq + Hash> RustFootprint for HamtSet<T> {
    fn rust_footprint(&self, acc: &mut Accounting) {
        hamt_nodes_rust(&self.inner().root, acc);
    }
}

/// Native-allocation counterpart of [`nested_hamt_set_jvm`].
pub fn nested_hamt_set_rust<T: Clone + Eq + Hash>(set: &HamtSet<T>, acc: &mut Accounting) {
    hamt_nodes_rust(&set.inner().root, acc);
}

fn memo_nodes_jvm_with<K, V>(
    node: &memo::Node<K, V>,
    arch: &JvmArch,
    policy: &LayoutPolicy,
    acc: &mut Accounting,
    entry: EntryAccount<'_, K, V>,
) {
    match node {
        memo::Node::Bitmap(b) => {
            // Scala HashTrieMap: node object (bitmap + size + array ref) and
            // one array slot per branch; payload branches reference separate
            // leaf objects whose size the `entry` callback accounts.
            acc.structure(policy.node_size(arch, b.slots.len() as u64, 2, 0));
            for slot in b.slots.iter() {
                match slot {
                    memo::Slot::Entry(_, k, v) => entry(k, v, acc),
                    memo::Slot::Child(child) => {
                        memo_nodes_jvm_with(child, arch, policy, acc, entry)
                    }
                }
            }
        }
        memo::Node::Collision(c) => {
            acc.structure(arch.object(2, 1, 0) + arch.ref_array(2 * c.entries.len() as u64));
            for (k, v) in &c.entries {
                entry(k, v, acc);
            }
        }
    }
}

/// Walks a [`MemoHamtMap`]'s modeled JVM structure with a per-entry payload
/// callback. The callback must also account for the per-entry leaf object
/// (Scala's `HashMap1`): `arch.object(3, 1, 0)` for plain map entries.
pub fn memo_map_jvm_with<K, V>(
    map: &MemoHamtMap<K, V>,
    arch: &JvmArch,
    policy: &LayoutPolicy,
    acc: &mut Accounting,
    entry: EntryAccount<'_, K, V>,
) where
    K: Clone + Eq + Hash,
    V: Clone + PartialEq,
{
    acc.structure(arch.object(1, 2, 0));
    memo_nodes_jvm_with(map.root_node(), arch, policy, acc, entry);
}

fn memo_nodes_jvm<K: JvmSize, V: JvmSize>(
    node: &memo::Node<K, V>,
    arch: &JvmArch,
    policy: &LayoutPolicy,
    acc: &mut Accounting,
    is_set: bool,
) {
    memo_nodes_jvm_with(node, arch, policy, acc, &mut |k, v, acc| {
        // A HashMap1 leaf: hash int + key + value + cached tuple ref
        // (HashSet1 for sets: hash int + elem).
        if is_set {
            acc.structure(arch.object(1, 1, 0));
            acc.payload(k.jvm_size(arch));
        } else {
            acc.structure(arch.object(3, 1, 0));
            acc.payload(k.jvm_size(arch));
            acc.payload(v.jvm_size(arch));
        }
    });
}

impl<K, V> JvmFootprint for MemoHamtMap<K, V>
where
    K: Clone + Eq + Hash + JvmSize,
    V: Clone + PartialEq + JvmSize,
{
    fn jvm_footprint(&self, arch: &JvmArch, policy: &LayoutPolicy, acc: &mut Accounting) {
        acc.structure(arch.object(1, 2, 0));
        memo_nodes_jvm(self.root_node(), arch, policy, acc, false);
    }
}

impl<T> JvmFootprint for MemoHamtSet<T>
where
    T: Clone + Eq + Hash + JvmSize,
{
    fn jvm_footprint(&self, arch: &JvmArch, policy: &LayoutPolicy, acc: &mut Accounting) {
        acc.structure(arch.object(1, 2, 0));
        memo_nodes_jvm(self.inner().root_node(), arch, policy, acc, true);
    }
}

/// Nested-set measurement without the outer wrapper.
pub fn nested_memo_set_jvm<T: Clone + Eq + Hash + JvmSize>(
    set: &MemoHamtSet<T>,
    arch: &JvmArch,
    policy: &LayoutPolicy,
    acc: &mut Accounting,
) {
    memo_nodes_jvm(set.inner().root_node(), arch, policy, acc, true);
}

fn memo_nodes_rust_with<K, V>(
    node: &Arc<memo::Node<K, V>>,
    acc: &mut Accounting,
    entry: EntryAccount<'_, K, V>,
) {
    if !acc.first_visit(Arc::as_ptr(node)) {
        return;
    }
    acc.structure(arc_alloc_bytes::<memo::Node<K, V>>());
    match &**node {
        memo::Node::Bitmap(b) => {
            acc.structure(boxed_slice_bytes::<memo::Slot<K, V>>(b.slots.len()));
            for slot in b.slots.iter() {
                match slot {
                    memo::Slot::Child(child) => memo_nodes_rust_with(child, acc, entry),
                    memo::Slot::Entry(_, k, v) => entry(k, v, acc),
                }
            }
        }
        memo::Node::Collision(c) => {
            acc.structure(boxed_slice_bytes::<(K, V)>(c.entries.len()));
            for (k, v) in &c.entries {
                entry(k, v, acc);
            }
        }
    }
}

/// Native-allocation walk with per-entry recursion hook.
pub fn memo_map_rust_with<K, V>(
    map: &MemoHamtMap<K, V>,
    acc: &mut Accounting,
    entry: EntryAccount<'_, K, V>,
) where
    K: Clone + Eq + Hash,
    V: Clone + PartialEq,
{
    memo_nodes_rust_with(&map.root, acc, entry);
}

fn memo_nodes_rust<K, V>(node: &Arc<memo::Node<K, V>>, acc: &mut Accounting) {
    memo_nodes_rust_with(node, acc, &mut |_, _, _| {});
}

impl<K, V> RustFootprint for MemoHamtMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + PartialEq,
{
    fn rust_footprint(&self, acc: &mut Accounting) {
        memo_nodes_rust(&self.root, acc);
    }
}

impl<T: Clone + Eq + Hash> RustFootprint for MemoHamtSet<T> {
    fn rust_footprint(&self, acc: &mut Accounting) {
        memo_nodes_rust(&self.inner().root, acc);
    }
}

/// Native-allocation counterpart of [`nested_memo_set_jvm`].
pub fn nested_memo_set_rust<T: Clone + Eq + Hash>(set: &MemoHamtSet<T>, acc: &mut Accounting) {
    memo_nodes_rust(&set.inner().root, acc);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scala_style_leaves_cost_more_than_clojure_pairs() {
        // The per-entry leaf objects make the memoizing layout heavier for
        // maps of the same content (paper §4.4 Discussion).
        let clj: HamtMap<u32, u32> = (0..256).map(|i| (i, i)).collect();
        let scala: MemoHamtMap<u32, u32> = (0..256).map(|i| (i, i)).collect();
        let arch = JvmArch::COMPRESSED_OOPS;
        let c = clj.jvm_bytes(&arch, &LayoutPolicy::BASELINE);
        let s = scala.jvm_bytes(&arch, &LayoutPolicy::BASELINE);
        assert!(s.structure > c.structure, "scala {s:?} vs clojure {c:?}");
    }

    #[test]
    fn set_counts_single_payload_box() {
        let s: HamtSet<u32> = (0..100).collect();
        let fp = s.jvm_bytes(&JvmArch::COMPRESSED_OOPS, &LayoutPolicy::BASELINE);
        assert_eq!(fp.payload, 100 * 16);
    }

    #[test]
    fn rust_footprints_nonzero_and_scale() {
        let small: HamtMap<u32, u32> = (0..10).map(|i| (i, i)).collect();
        let large: HamtMap<u32, u32> = (0..1000).map(|i| (i, i)).collect();
        assert!(large.rust_bytes() > small.rust_bytes());
        let ms: MemoHamtSet<u32> = (0..50).collect();
        assert!(ms.rust_bytes() > 0);
    }
}
