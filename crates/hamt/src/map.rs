//! A classic HAMT persistent map (Bagwell 2001), Clojure-flavoured.
//!
//! One 32-bit bitmap marks occupied branches; a dense array stores an
//! **untyped mix** of inlined entries and sub-tries, so every access performs
//! a dynamic slot-type check (the Rust `match` below stands in for the JVM's
//! `instanceof`, paper Figure 2a). Deletion does **not** canonicalize:
//! like Clojure's `PersistentHashMap`, removing entries can leave degenerate
//! single-entry paths in place — one of the differences CHAMP/AXIOM exploit.
//!
//! # Examples
//!
//! ```
//! use hamt::HamtMap;
//!
//! let m = HamtMap::<u32, &str>::new().inserted(1, "a").inserted(2, "b");
//! assert_eq!(m.get(&2), Some(&"b"));
//! assert_eq!(m.removed(&1).len(), 1);
//! ```

use std::borrow::Borrow;
use std::hash::Hash;
use std::sync::Arc;

use trie_common::bits::{bit_pos, hash_exhausted, index_in, mask, next_shift};
use trie_common::hash::hash32;
use trie_common::slices::{
    inserted_at as slice_inserted, inserted_at_owned, migrate_map, removed_at as slice_removed,
    removed_at_owned, replaced_at as slice_replaced,
};

/// One slot: an inlined entry or a sub-trie, dynamically discriminated.
#[derive(Debug, Clone)]
pub(crate) enum Slot<K, V> {
    Entry(K, V),
    Child(Arc<Node<K, V>>),
}

/// A HAMT node: one bitmap, mixed slots in mask order.
#[derive(Debug, Clone)]
pub(crate) struct BitmapNode<K, V> {
    pub(crate) bitmap: u32,
    pub(crate) slots: Box<[Slot<K, V>]>,
}

/// Hash-collision overflow node. Unlike CHAMP/AXIOM, it may degenerate to a
/// single entry after deletions (no canonicalization).
#[derive(Debug, Clone)]
pub(crate) struct CollisionNode<K, V> {
    pub(crate) hash: u32,
    pub(crate) entries: Vec<(K, V)>,
}

/// A trie node.
#[derive(Debug, Clone)]
pub(crate) enum Node<K, V> {
    Bitmap(BitmapNode<K, V>),
    Collision(CollisionNode<K, V>),
}

pub(crate) enum Inserted<K, V> {
    Unchanged,
    Replaced(Node<K, V>),
    Added(Node<K, V>),
}

pub(crate) enum Removed<K, V> {
    NotFound,
    Node(Node<K, V>),
    /// The node lost its last slot; the parent drops the branch.
    Empty,
}

/// In-place insertion outcome (the node is edited where it stands).
pub(crate) enum EditInserted {
    Unchanged,
    Replaced,
    Added,
}

/// In-place removal outcome. Mirrors [`Removed`] without carrying nodes:
/// edited nodes stay where they stand, and `Empty` tells the parent to drop
/// the branch (the emptied node is left consumed).
pub(crate) enum EditRemoved {
    NotFound,
    Removed,
    Empty,
}

impl<K: Clone + Eq + Hash, V: Clone + PartialEq> Node<K, V> {
    fn empty() -> Node<K, V> {
        Node::Bitmap(BitmapNode {
            bitmap: 0,
            slots: Box::new([]),
        })
    }

    fn pair(h1: u32, k1: K, v1: V, h2: u32, k2: K, v2: V, shift: u32) -> Node<K, V> {
        if hash_exhausted(shift) {
            debug_assert_eq!(h1, h2);
            return Node::Collision(CollisionNode {
                hash: h1,
                entries: vec![(k1, v1), (k2, v2)],
            });
        }
        let m1 = mask(h1, shift);
        let m2 = mask(h2, shift);
        if m1 == m2 {
            let child = Node::pair(h1, k1, v1, h2, k2, v2, next_shift(shift));
            Node::Bitmap(BitmapNode {
                bitmap: bit_pos(m1),
                slots: Box::new([Slot::Child(Arc::new(child))]),
            })
        } else {
            let slots: Box<[Slot<K, V>]> = if m1 < m2 {
                Box::new([Slot::Entry(k1, v1), Slot::Entry(k2, v2)])
            } else {
                Box::new([Slot::Entry(k2, v2), Slot::Entry(k1, v1)])
            };
            Node::Bitmap(BitmapNode {
                bitmap: bit_pos(m1) | bit_pos(m2),
                slots,
            })
        }
    }

    fn get<Q>(&self, hash: u32, shift: u32, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Eq + ?Sized,
    {
        match self {
            Node::Collision(c) => c
                .entries
                .iter()
                .find(|(k, _)| k.borrow() == key)
                .map(|(_, v)| v),
            Node::Bitmap(b) => {
                let bit = bit_pos(mask(hash, shift));
                if b.bitmap & bit == 0 {
                    return None;
                }
                // Dynamic slot-type dispatch — the HAMT's `instanceof`.
                match &b.slots[index_in(b.bitmap, bit)] {
                    Slot::Entry(k, v) => (k.borrow() == key).then_some(v),
                    Slot::Child(child) => child.get(hash, next_shift(shift), key),
                }
            }
        }
    }

    fn inserted(&self, hash: u32, shift: u32, key: &K, value: &V) -> Inserted<K, V> {
        match self {
            Node::Collision(c) => {
                debug_assert_eq!(c.hash, hash);
                match c.entries.iter().position(|(k, _)| k == key) {
                    Some(pos) => {
                        if c.entries[pos].1 == *value {
                            return Inserted::Unchanged;
                        }
                        let mut entries = c.entries.clone();
                        entries[pos].1 = value.clone();
                        Inserted::Replaced(Node::Collision(CollisionNode {
                            hash: c.hash,
                            entries,
                        }))
                    }
                    None => {
                        let mut entries = c.entries.clone();
                        entries.push((key.clone(), value.clone()));
                        Inserted::Added(Node::Collision(CollisionNode {
                            hash: c.hash,
                            entries,
                        }))
                    }
                }
            }
            Node::Bitmap(b) => {
                let m = mask(hash, shift);
                let bit = bit_pos(m);
                if b.bitmap & bit == 0 {
                    let bitmap = b.bitmap | bit;
                    let idx = index_in(bitmap, bit);
                    return Inserted::Added(Node::Bitmap(BitmapNode {
                        bitmap,
                        slots: slice_inserted(
                            &b.slots,
                            idx,
                            Slot::Entry(key.clone(), value.clone()),
                        ),
                    }));
                }
                let idx = index_in(b.bitmap, bit);
                match &b.slots[idx] {
                    Slot::Entry(ek, ev) => {
                        if ek == key {
                            if ev == value {
                                return Inserted::Unchanged;
                            }
                            return Inserted::Replaced(Node::Bitmap(BitmapNode {
                                bitmap: b.bitmap,
                                slots: slice_replaced(
                                    &b.slots,
                                    idx,
                                    Slot::Entry(key.clone(), value.clone()),
                                ),
                            }));
                        }
                        let child = Node::pair(
                            hash32(ek),
                            ek.clone(),
                            ev.clone(),
                            hash,
                            key.clone(),
                            value.clone(),
                            next_shift(shift),
                        );
                        // In-place slot replacement: the mixed layout keeps
                        // the entry's position (no migration needed).
                        Inserted::Added(Node::Bitmap(BitmapNode {
                            bitmap: b.bitmap,
                            slots: slice_replaced(&b.slots, idx, Slot::Child(Arc::new(child))),
                        }))
                    }
                    Slot::Child(child) => {
                        let rebuild = |n: Node<K, V>| {
                            Node::Bitmap(BitmapNode {
                                bitmap: b.bitmap,
                                slots: slice_replaced(&b.slots, idx, Slot::Child(Arc::new(n))),
                            })
                        };
                        match child.inserted(hash, next_shift(shift), key, value) {
                            Inserted::Unchanged => Inserted::Unchanged,
                            Inserted::Replaced(n) => Inserted::Replaced(rebuild(n)),
                            Inserted::Added(n) => Inserted::Added(rebuild(n)),
                        }
                    }
                }
            }
        }
    }

    /// In-place insert driven by `Arc` uniqueness: a uniquely-owned node is
    /// edited directly, a shared node falls back to the persistent path copy
    /// for its whole subtree.
    fn insert_in_place(
        this: &mut Arc<Node<K, V>>,
        hash: u32,
        shift: u32,
        key: K,
        value: V,
    ) -> EditInserted {
        match Arc::get_mut(this) {
            Some(Node::Collision(c)) => {
                debug_assert_eq!(c.hash, hash);
                match c.entries.iter().position(|(k, _)| *k == key) {
                    Some(pos) => {
                        if c.entries[pos].1 == value {
                            return EditInserted::Unchanged;
                        }
                        c.entries[pos].1 = value;
                        EditInserted::Replaced
                    }
                    None => {
                        c.entries.push((key, value));
                        EditInserted::Added
                    }
                }
            }
            Some(Node::Bitmap(b)) => {
                let m = mask(hash, shift);
                let bit = bit_pos(m);
                if b.bitmap & bit == 0 {
                    b.bitmap |= bit;
                    let idx = index_in(b.bitmap, bit);
                    b.slots = inserted_at_owned(
                        std::mem::take(&mut b.slots),
                        idx,
                        Slot::Entry(key, value),
                    );
                    return EditInserted::Added;
                }
                let idx = index_in(b.bitmap, bit);
                match &mut b.slots[idx] {
                    Slot::Entry(ek, ev) => {
                        if *ek == key {
                            if *ev == value {
                                return EditInserted::Unchanged;
                            }
                            b.slots[idx] = Slot::Entry(key, value);
                            return EditInserted::Replaced;
                        }
                        // The mixed layout keeps the slot's position: a
                        // `from == to` migration transforms Entry → Child in
                        // place, moving both entries into the fresh sub-trie.
                        let existing_hash = hash32(ek);
                        migrate_map(&mut b.slots, idx, idx, |slot| {
                            let Slot::Entry(ek, ev) = slot else {
                                unreachable!("just matched an entry")
                            };
                            Slot::Child(Arc::new(Node::pair(
                                existing_hash,
                                ek,
                                ev,
                                hash,
                                key,
                                value,
                                next_shift(shift),
                            )))
                        });
                        EditInserted::Added
                    }
                    Slot::Child(child) => {
                        Node::insert_in_place(child, hash, next_shift(shift), key, value)
                    }
                }
            }
            None => match this.inserted(hash, shift, &key, &value) {
                Inserted::Unchanged => EditInserted::Unchanged,
                Inserted::Replaced(n) => {
                    *this = Arc::new(n);
                    EditInserted::Replaced
                }
                Inserted::Added(n) => {
                    *this = Arc::new(n);
                    EditInserted::Added
                }
            },
        }
    }

    /// In-place removal (same `Arc`-uniqueness discipline as
    /// [`Node::insert_in_place`]): uniquely-owned nodes are edited where
    /// they stand, shared subtrees fall back to the persistent path copy.
    /// Deletion stays non-canonical, exactly like [`Node::removed`].
    fn remove_in_place<Q>(this: &mut Arc<Node<K, V>>, hash: u32, shift: u32, key: &Q) -> EditRemoved
    where
        K: Borrow<Q>,
        Q: Eq + ?Sized,
    {
        match Arc::get_mut(this) {
            Some(Node::Collision(c)) => {
                let Some(pos) = c.entries.iter().position(|(k, _)| k.borrow() == key) else {
                    return EditRemoved::NotFound;
                };
                if c.entries.len() == 1 {
                    return EditRemoved::Empty;
                }
                // Non-canonical: a 1-entry collision node may survive.
                c.entries.swap_remove(pos);
                EditRemoved::Removed
            }
            Some(Node::Bitmap(b)) => {
                let m = mask(hash, shift);
                let bit = bit_pos(m);
                if b.bitmap & bit == 0 {
                    return EditRemoved::NotFound;
                }
                let idx = index_in(b.bitmap, bit);
                match &mut b.slots[idx] {
                    Slot::Entry(k, _) => {
                        if (*k).borrow() != key {
                            return EditRemoved::NotFound;
                        }
                        if b.slots.len() == 1 {
                            return EditRemoved::Empty;
                        }
                        // Non-canonical: no inlining of a surviving single
                        // entry into the parent.
                        b.bitmap &= !bit;
                        b.slots = removed_at_owned(std::mem::take(&mut b.slots), idx);
                        EditRemoved::Removed
                    }
                    Slot::Child(child) => {
                        match Node::remove_in_place(child, hash, next_shift(shift), key) {
                            EditRemoved::NotFound => EditRemoved::NotFound,
                            EditRemoved::Removed => EditRemoved::Removed,
                            EditRemoved::Empty => {
                                if b.slots.len() == 1 {
                                    return EditRemoved::Empty;
                                }
                                // Drop the emptied branch.
                                b.bitmap &= !bit;
                                b.slots = removed_at_owned(std::mem::take(&mut b.slots), idx);
                                EditRemoved::Removed
                            }
                        }
                    }
                }
            }
            None => match this.removed(hash, shift, key) {
                Removed::NotFound => EditRemoved::NotFound,
                Removed::Node(n) => {
                    *this = Arc::new(n);
                    EditRemoved::Removed
                }
                Removed::Empty => EditRemoved::Empty,
            },
        }
    }

    fn removed<Q>(&self, hash: u32, shift: u32, key: &Q) -> Removed<K, V>
    where
        K: Borrow<Q>,
        Q: Eq + ?Sized,
    {
        match self {
            Node::Collision(c) => {
                let Some(pos) = c.entries.iter().position(|(k, _)| k.borrow() == key) else {
                    return Removed::NotFound;
                };
                if c.entries.len() == 1 {
                    return Removed::Empty;
                }
                // Non-canonical: a 1-entry collision node may survive.
                let mut entries = c.entries.clone();
                entries.remove(pos);
                Removed::Node(Node::Collision(CollisionNode {
                    hash: c.hash,
                    entries,
                }))
            }
            Node::Bitmap(b) => {
                let m = mask(hash, shift);
                let bit = bit_pos(m);
                if b.bitmap & bit == 0 {
                    return Removed::NotFound;
                }
                let idx = index_in(b.bitmap, bit);
                match &b.slots[idx] {
                    Slot::Entry(k, _) => {
                        if k.borrow() != key {
                            return Removed::NotFound;
                        }
                        if b.slots.len() == 1 {
                            return Removed::Empty;
                        }
                        // Non-canonical: no inlining of a surviving single
                        // entry into the parent.
                        Removed::Node(Node::Bitmap(BitmapNode {
                            bitmap: b.bitmap & !bit,
                            slots: slice_removed(&b.slots, idx),
                        }))
                    }
                    Slot::Child(child) => match child.removed(hash, next_shift(shift), key) {
                        Removed::NotFound => Removed::NotFound,
                        Removed::Node(n) => Removed::Node(Node::Bitmap(BitmapNode {
                            bitmap: b.bitmap,
                            slots: slice_replaced(&b.slots, idx, Slot::Child(Arc::new(n))),
                        })),
                        Removed::Empty => {
                            if b.slots.len() == 1 {
                                return Removed::Empty;
                            }
                            Removed::Node(Node::Bitmap(BitmapNode {
                                bitmap: b.bitmap & !bit,
                                slots: slice_removed(&b.slots, idx),
                            }))
                        }
                    },
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Structural diff: a lockstep walk that skips pointer-shared subtrees.
//
// The HAMT is NOT canonical (deletion leaves degenerate single-entry paths
// and 1-entry collision nodes in place), so `Arc::ptr_eq` is only a one-way
// short-circuit here: identical pointers imply identical content, but equal
// content need not be pointer-identical — those subtrees fall back to
// content recursion, which emits nothing when entries match. Node kinds
// still align at equal depth (collision nodes exist only past hash
// exhaustion), but a defensive unstructured compare guards the mix anyway.
// ---------------------------------------------------------------------------

/// What one lockstep walk found at a mask position.
enum At<'a, K, V> {
    Nothing,
    Entry(&'a K, &'a V),
    Sub(&'a Arc<Node<K, V>>),
}

fn at<'a, K, V>(b: &'a BitmapNode<K, V>, bit: u32) -> At<'a, K, V> {
    if b.bitmap & bit == 0 {
        return At::Nothing;
    }
    // Dynamic slot-type dispatch — the HAMT's `instanceof`.
    match &b.slots[index_in(b.bitmap, bit)] {
        Slot::Entry(k, v) => At::Entry(k, v),
        Slot::Child(c) => At::Sub(c),
    }
}

fn for_each_entry_node<K, V>(node: &Node<K, V>, f: &mut impl FnMut(&K, &V)) {
    match node {
        Node::Collision(c) => c.entries.iter().for_each(|(k, v)| f(k, v)),
        Node::Bitmap(b) => {
            for s in &b.slots {
                match s {
                    Slot::Entry(k, v) => f(k, v),
                    Slot::Child(c) => for_each_entry_node(c, f),
                }
            }
        }
    }
}

/// Fallback for subtree pairs the lockstep walk cannot align (reachable only
/// through non-canonical shapes): compare entry lists outright.
fn unstructured_diff<K: Clone + Eq + Hash, V: Clone + PartialEq>(
    a: &Node<K, V>,
    b: &Node<K, V>,
    out: &mut trie_common::ops::MapDiff<K, V>,
) {
    let mut old: Vec<(K, V)> = Vec::new();
    for_each_entry_node(a, &mut |k, v| old.push((k.clone(), v.clone())));
    let mut new: Vec<(K, V)> = Vec::new();
    for_each_entry_node(b, &mut |k, v| new.push((k.clone(), v.clone())));
    for (k, v) in &old {
        match new.iter().find(|(nk, _)| nk == k) {
            None => out.removed.push((k.clone(), v.clone())),
            Some((_, nv)) if nv != v => {
                out.changed.push((k.clone(), v.clone(), nv.clone()));
            }
            Some(_) => {}
        }
    }
    for (k, v) in &new {
        if !old.iter().any(|(ok, _)| ok == k) {
            out.added.push((k.clone(), v.clone()));
        }
    }
}

/// Lockstep diff (`a` old, `b` new): pointer-identical subtrees emit
/// nothing; equal-but-not-pointer-equal subtrees recurse on content.
fn diff_nodes<K: Clone + Eq + Hash, V: Clone + PartialEq>(
    a: &Node<K, V>,
    b: &Node<K, V>,
    shift: u32,
    out: &mut trie_common::ops::MapDiff<K, V>,
) {
    match (a, b) {
        (Node::Collision(x), Node::Collision(y)) => {
            debug_assert_eq!(x.hash, y.hash, "lockstep paths fix the full hash");
            for (k, v) in &x.entries {
                match y.entries.iter().find(|(yk, _)| yk == k) {
                    None => out.removed.push((k.clone(), v.clone())),
                    Some((_, yv)) if yv != v => {
                        out.changed.push((k.clone(), v.clone(), yv.clone()));
                    }
                    Some(_) => {}
                }
            }
            for (k, v) in &y.entries {
                if !x.entries.iter().any(|(xk, _)| xk == k) {
                    out.added.push((k.clone(), v.clone()));
                }
            }
        }
        (Node::Bitmap(x), Node::Bitmap(y)) => {
            for m in 0..32u32 {
                let bit = bit_pos(m);
                match (at(x, bit), at(y, bit)) {
                    (At::Nothing, At::Nothing) => {}
                    (At::Entry(k, v), At::Nothing) => out.removed.push((k.clone(), v.clone())),
                    (At::Nothing, At::Entry(k, v)) => out.added.push((k.clone(), v.clone())),
                    (At::Sub(ac), At::Nothing) => {
                        for_each_entry_node(ac, &mut |k, v| {
                            out.removed.push((k.clone(), v.clone()));
                        });
                    }
                    (At::Nothing, At::Sub(bc)) => {
                        for_each_entry_node(bc, &mut |k, v| {
                            out.added.push((k.clone(), v.clone()));
                        });
                    }
                    (At::Entry(ka, va), At::Entry(kb, vb)) => {
                        if ka == kb {
                            if va != vb {
                                out.changed.push((ka.clone(), va.clone(), vb.clone()));
                            }
                        } else {
                            out.removed.push((ka.clone(), va.clone()));
                            out.added.push((kb.clone(), vb.clone()));
                        }
                    }
                    (At::Entry(ka, va), At::Sub(bc)) => {
                        // Degenerate single-entry subtrees are legal here, so
                        // this mix is common after deletions.
                        match bc.get(hash32(ka), next_shift(shift), ka) {
                            None => out.removed.push((ka.clone(), va.clone())),
                            Some(vb) if vb != va => {
                                out.changed.push((ka.clone(), va.clone(), vb.clone()));
                            }
                            Some(_) => {}
                        }
                        for_each_entry_node(bc, &mut |k, v| {
                            if k != ka {
                                out.added.push((k.clone(), v.clone()));
                            }
                        });
                    }
                    (At::Sub(ac), At::Entry(kb, vb)) => {
                        match ac.get(hash32(kb), next_shift(shift), kb) {
                            None => out.added.push((kb.clone(), vb.clone())),
                            Some(va) if va != vb => {
                                out.changed.push((kb.clone(), va.clone(), vb.clone()));
                            }
                            Some(_) => {}
                        }
                        for_each_entry_node(ac, &mut |k, v| {
                            if k != kb {
                                out.removed.push((k.clone(), v.clone()));
                            }
                        });
                    }
                    (At::Sub(ac), At::Sub(bc)) => {
                        if !Arc::ptr_eq(ac, bc) {
                            diff_nodes(ac, bc, next_shift(shift), out);
                        }
                    }
                }
            }
        }
        _ => unstructured_diff(a, b, out),
    }
}

/// A persistent hash map with the classic single-bitmap HAMT encoding
/// (Clojure-flavoured: dynamic slot dispatch, non-canonical deletion).
pub struct HamtMap<K, V> {
    pub(crate) root: Arc<Node<K, V>>,
    pub(crate) len: usize,
}

impl<K, V> Clone for HamtMap<K, V> {
    fn clone(&self) -> Self {
        HamtMap {
            root: Arc::clone(&self.root),
            len: self.len,
        }
    }
}

impl<K, V> HamtMap<K, V> {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates `(key, value)` entries in unspecified (trie) order.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter {
            stack: vec![cursor_of(&self.root)],
            remaining: self.len,
        }
    }

    /// Iterates the keys in unspecified order.
    pub fn keys(&self) -> Keys<'_, K, V> {
        Keys { inner: self.iter() }
    }

    /// Iterates the values in unspecified order.
    pub fn values(&self) -> Values<'_, K, V> {
        Values { inner: self.iter() }
    }
}

impl<K: Clone + Eq + Hash, V: Clone + PartialEq> HamtMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        HamtMap {
            root: Arc::new(Node::empty()),
            len: 0,
        }
    }

    /// Looks up the value bound to `key`.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.root.get(hash32(key), 0, key)
    }

    /// True if `key` has a binding.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.get(key).is_some()
    }

    /// Returns a map with `key` bound to `value`; `self` is unchanged.
    pub fn inserted(&self, key: K, value: V) -> Self {
        let mut next = self.clone();
        next.insert_mut(key, value);
        next
    }

    /// Binds `key` to `value` in place: uniquely-owned trie nodes along the
    /// spine are edited directly, shared nodes are path-copied. Returns true
    /// if a new key was added.
    pub fn insert_mut(&mut self, key: K, value: V) -> bool {
        let hash = hash32(&key);
        match Node::insert_in_place(&mut self.root, hash, 0, key, value) {
            EditInserted::Unchanged | EditInserted::Replaced => false,
            EditInserted::Added => {
                self.len += 1;
                true
            }
        }
    }

    /// Returns a map without a binding for `key`; `self` is unchanged.
    pub fn removed<Q>(&self, key: &Q) -> Self
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        let mut next = self.clone();
        next.remove_mut(key);
        next
    }

    /// Removes `key` in place: uniquely-owned trie nodes along the spine
    /// are edited directly, shared nodes are path-copied. Returns true if a
    /// binding was removed.
    pub fn remove_mut<Q>(&mut self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        match Node::remove_in_place(&mut self.root, hash32(key), 0, key) {
            EditRemoved::NotFound => false,
            EditRemoved::Removed => {
                self.len -= 1;
                true
            }
            EditRemoved::Empty => {
                self.root = Arc::new(Node::empty());
                self.len -= 1;
                true
            }
        }
    }

    /// What changed between `self` (old) and `other` (new), via a lockstep
    /// structural walk. Pointer-shared subtrees are skipped; because the
    /// HAMT is non-canonical, equal-but-not-pointer-equal subtrees fall back
    /// to content recursion (which emits nothing when entries match).
    pub fn diff(&self, other: &Self) -> trie_common::ops::MapDiff<K, V> {
        let mut out = trie_common::ops::MapDiff::new();
        if Arc::ptr_eq(&self.root, &other.root) {
            return out;
        }
        if self.is_empty() {
            out.added
                .extend(other.iter().map(|(k, v)| (k.clone(), v.clone())));
            return out;
        }
        if other.is_empty() {
            out.removed
                .extend(self.iter().map(|(k, v)| (k.clone(), v.clone())));
            return out;
        }
        diff_nodes(&self.root, &other.root, 0, &mut out);
        out
    }

    pub(crate) fn root_node(&self) -> &Node<K, V> {
        &self.root
    }

    /// Structural sanity checks (weaker than CHAMP/AXIOM: degenerate paths
    /// are legal here, but bookkeeping and branch placement must hold).
    ///
    /// # Panics
    ///
    /// Panics if any structural invariant is violated.
    #[doc(hidden)]
    pub fn assert_invariants(&self) {
        let counted = validate(&self.root, 0);
        assert_eq!(counted, self.len, "len bookkeeping");
    }
}

fn validate<K: Clone + Eq + Hash, V: Clone + PartialEq>(node: &Node<K, V>, shift: u32) -> usize {
    match node {
        Node::Collision(c) => {
            assert!(hash_exhausted(shift));
            assert!(!c.entries.is_empty());
            for (k, _) in &c.entries {
                assert_eq!(hash32(k), c.hash);
            }
            c.entries.len()
        }
        Node::Bitmap(b) => {
            assert_eq!(b.slots.len(), b.bitmap.count_ones() as usize);
            let mut total = 0;
            let mut bit_iter = (0..32).filter(|m| b.bitmap & bit_pos(*m) != 0);
            for slot in b.slots.iter() {
                let m = bit_iter.next().expect("slot without branch");
                match slot {
                    Slot::Entry(k, _) => {
                        assert_eq!(mask(hash32(k), shift), m, "entry in wrong branch");
                        total += 1;
                    }
                    Slot::Child(child) => {
                        let sub = validate(child, next_shift(shift));
                        assert!(sub >= 1, "empty child node retained");
                        total += sub;
                    }
                }
            }
            total
        }
    }
}

impl<K: Clone + Eq + Hash, V: Clone + PartialEq> Default for HamtMap<K, V> {
    fn default() -> Self {
        HamtMap::new()
    }
}

impl<K: Clone + Eq + Hash, V: Clone + PartialEq> PartialEq for HamtMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        // Non-canonical tries may encode equal maps with different shapes, so
        // equality is content-based rather than structural.
        self.len == other.len
            && self
                .iter()
                .all(|(k, v)| other.get(k).is_some_and(|w| w == v))
    }
}

impl<K: Clone + Eq + Hash, V: Clone + Eq> Eq for HamtMap<K, V> {}

impl<K, V> std::fmt::Debug for HamtMap<K, V>
where
    K: std::fmt::Debug,
    V: std::fmt::Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: Clone + Eq + Hash, V: Clone + PartialEq> FromIterator<(K, V)> for HamtMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        trie_common::ops::from_iter_via(iter)
    }
}

impl<K: Clone + Eq + Hash, V: Clone + PartialEq> Extend<(K, V)> for HamtMap<K, V> {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        trie_common::ops::extend_via(self, iter);
    }
}

impl<'a, K: Clone + Eq + Hash, V: Clone + PartialEq> IntoIterator for &'a HamtMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = Iter<'a, K, V>;
    fn into_iter(self) -> Iter<'a, K, V> {
        self.iter()
    }
}

enum Cursor<'a, K, V> {
    Bitmap { slots: &'a [Slot<K, V>], idx: usize },
    Collision { entries: &'a [(K, V)], idx: usize },
}

fn cursor_of<K, V>(node: &Node<K, V>) -> Cursor<'_, K, V> {
    match node {
        Node::Bitmap(b) => Cursor::Bitmap {
            slots: &b.slots,
            idx: 0,
        },
        Node::Collision(c) => Cursor::Collision {
            entries: &c.entries,
            idx: 0,
        },
    }
}

/// Iterator over map entries. Created by [`HamtMap::iter`].
///
/// Note the contrast with CHAMP/AXIOM: slots mix entries and children, so
/// every step re-discriminates the slot type — the per-element checks the
/// paper's grouped layouts avoid.
pub struct Iter<'a, K, V> {
    stack: Vec<Cursor<'a, K, V>>,
    remaining: usize,
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<(&'a K, &'a V)> {
        loop {
            let top = self.stack.last_mut()?;
            match top {
                Cursor::Collision { entries, idx } => {
                    if *idx < entries.len() {
                        let (k, v) = &entries[*idx];
                        *idx += 1;
                        self.remaining -= 1;
                        return Some((k, v));
                    }
                    self.stack.pop();
                }
                Cursor::Bitmap { slots, idx } => {
                    if *idx >= slots.len() {
                        self.stack.pop();
                        continue;
                    }
                    let slot = &slots[*idx];
                    *idx += 1;
                    match slot {
                        Slot::Entry(k, v) => {
                            self.remaining -= 1;
                            return Some((k, v));
                        }
                        Slot::Child(child) => self.stack.push(cursor_of(child)),
                    }
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<'a, K, V> ExactSizeIterator for Iter<'a, K, V> {}

impl<'a, K, V> std::fmt::Debug for Iter<'a, K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Iter")
            .field("remaining", &self.remaining)
            .finish()
    }
}

/// Iterator over map keys. Created by [`HamtMap::keys`].
#[derive(Debug)]
pub struct Keys<'a, K, V> {
    inner: Iter<'a, K, V>,
}

impl<'a, K, V> Iterator for Keys<'a, K, V> {
    type Item = &'a K;
    fn next(&mut self) -> Option<&'a K> {
        self.inner.next().map(|(k, _)| k)
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<'a, K, V> ExactSizeIterator for Keys<'a, K, V> {}

/// Iterator over map values. Created by [`HamtMap::values`].
#[derive(Debug)]
pub struct Values<'a, K, V> {
    inner: Iter<'a, K, V>,
}

impl<'a, K, V> Iterator for Values<'a, K, V> {
    type Item = &'a V;
    fn next(&mut self) -> Option<&'a V> {
        self.inner.next().map(|(_, v)| v)
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<'a, K, V> ExactSizeIterator for Values<'a, K, V> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::hash::Hasher;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Collide {
        bucket: u32,
        id: u32,
    }

    impl Hash for Collide {
        fn hash<H: Hasher>(&self, state: &mut H) {
            state.write_u32(self.bucket);
        }
    }

    #[test]
    fn basics() {
        let m: HamtMap<u32, u32> = (0..800).map(|i| (i, i + 1)).collect();
        assert_eq!(m.len(), 800);
        for i in 0..800 {
            assert_eq!(m.get(&i), Some(&(i + 1)));
        }
        assert_eq!(m.get(&9999), None);
        m.assert_invariants();
    }

    #[test]
    fn removal_may_leave_degenerate_paths_but_stays_correct() {
        let mut m: HamtMap<u32, u32> = (0..300).map(|i| (i, i)).collect();
        for i in 0..299 {
            assert!(m.remove_mut(&i));
            m.assert_invariants();
        }
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(&299), Some(&299));
    }

    #[test]
    fn collisions() {
        let mut m = HamtMap::new();
        for id in 0..6 {
            m.insert_mut(Collide { bucket: 1, id }, id);
        }
        assert_eq!(m.len(), 6);
        for id in 0..6 {
            assert_eq!(m.get(&Collide { bucket: 1, id }), Some(&id));
        }
        for id in 0..6 {
            assert!(m.remove_mut(&Collide { bucket: 1, id }));
            m.assert_invariants();
        }
        assert!(m.is_empty());
    }

    #[test]
    fn model_based_random_ops() {
        let mut model: HashMap<u32, u32> = HashMap::new();
        let mut m: HamtMap<u32, u32> = HamtMap::new();
        let mut state = 5u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..4000 {
            let op = next() % 3;
            let key = next() % 150;
            match op {
                0 | 1 => {
                    let val = next();
                    model.insert(key, val);
                    m.insert_mut(key, val);
                }
                _ => {
                    model.remove(&key);
                    m.remove_mut(&key);
                }
            }
            assert_eq!(m.len(), model.len());
        }
        m.assert_invariants();
        let collected: HashMap<u32, u32> = m.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(collected, model);
    }

    #[test]
    fn content_equality_across_shapes() {
        // Build one map by pure insertion and an equal one via a deletion
        // detour: shapes may differ (non-canonical), equality must not.
        let a: HamtMap<u32, u32> = (0..64).map(|i| (i, i)).collect();
        let mut b: HamtMap<u32, u32> = (0..100).map(|i| (i, i)).collect();
        for i in 64..100 {
            b.remove_mut(&i);
        }
        assert_eq!(a, b);
    }
}
