//! Harness-facing trait implementations ([`trie_common::ops`]).

use std::hash::Hash;

use trie_common::ops::{MapOps, SetOps};

use crate::{HamtMap, HamtSet, MemoHamtMap, MemoHamtSet};

impl<K, V> MapOps<K, V> for HamtMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + PartialEq,
{
    const NAME: &'static str = "hamt-map";

    fn empty() -> Self {
        HamtMap::new()
    }
    fn len(&self) -> usize {
        HamtMap::len(self)
    }
    fn get(&self, key: &K) -> Option<&V> {
        HamtMap::get(self, key)
    }
    fn inserted(&self, key: K, value: V) -> Self {
        HamtMap::inserted(self, key, value)
    }
    fn removed(&self, key: &K) -> Self {
        HamtMap::removed(self, key)
    }
    fn for_each_entry(&self, f: &mut dyn FnMut(&K, &V)) {
        for (k, v) in self.iter() {
            f(k, v);
        }
    }
    fn for_each_key(&self, f: &mut dyn FnMut(&K)) {
        for k in self.keys() {
            f(k);
        }
    }
}

impl<K, V> MapOps<K, V> for MemoHamtMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + PartialEq,
{
    const NAME: &'static str = "memo-hamt-map";

    fn empty() -> Self {
        MemoHamtMap::new()
    }
    fn len(&self) -> usize {
        MemoHamtMap::len(self)
    }
    fn get(&self, key: &K) -> Option<&V> {
        MemoHamtMap::get(self, key)
    }
    fn inserted(&self, key: K, value: V) -> Self {
        MemoHamtMap::inserted(self, key, value)
    }
    fn removed(&self, key: &K) -> Self {
        MemoHamtMap::removed(self, key)
    }
    fn for_each_entry(&self, f: &mut dyn FnMut(&K, &V)) {
        for (k, v) in self.iter() {
            f(k, v);
        }
    }
    fn for_each_key(&self, f: &mut dyn FnMut(&K)) {
        for k in self.keys() {
            f(k);
        }
    }
}

impl<T> SetOps<T> for HamtSet<T>
where
    T: Clone + Eq + Hash,
{
    const NAME: &'static str = "hamt-set";

    fn empty() -> Self {
        HamtSet::new()
    }
    fn len(&self) -> usize {
        HamtSet::len(self)
    }
    fn contains(&self, value: &T) -> bool {
        HamtSet::contains(self, value)
    }
    fn inserted(&self, value: T) -> Self {
        HamtSet::inserted(self, value)
    }
    fn removed(&self, value: &T) -> Self {
        HamtSet::removed(self, value)
    }
    fn for_each(&self, f: &mut dyn FnMut(&T)) {
        for v in self.iter() {
            f(v);
        }
    }
}

impl<T> SetOps<T> for MemoHamtSet<T>
where
    T: Clone + Eq + Hash,
{
    const NAME: &'static str = "memo-hamt-set";

    fn empty() -> Self {
        MemoHamtSet::new()
    }
    fn len(&self) -> usize {
        MemoHamtSet::len(self)
    }
    fn contains(&self, value: &T) -> bool {
        MemoHamtSet::contains(self, value)
    }
    fn inserted(&self, value: T) -> Self {
        MemoHamtSet::inserted(self, value)
    }
    fn removed(&self, value: &T) -> Self {
        MemoHamtSet::removed(self, value)
    }
    fn for_each(&self, f: &mut dyn FnMut(&T)) {
        for v in self.iter() {
            f(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<M: MapOps<u32, u32>>() {
        let m = M::empty().inserted(1, 2).inserted(3, 4).removed(&1);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(&3), Some(&4));
    }

    #[test]
    fn traits_are_wired() {
        exercise::<HamtMap<u32, u32>>();
        exercise::<MemoHamtMap<u32, u32>>();
        let s = <HamtSet<u32> as SetOps<u32>>::empty().inserted(1);
        assert!(SetOps::contains(&s, &1));
        let s = <MemoHamtSet<u32> as SetOps<u32>>::empty().inserted(1);
        assert!(SetOps::contains(&s, &1));
    }
}
