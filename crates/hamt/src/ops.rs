//! Harness-facing trait implementations ([`trie_common::ops`]).
//!
//! Thin forwarding shims: the associated iterator types are the inherent
//! iterators of the HAMT maps and sets, and the transient builder rides the
//! `Rc`-uniqueness `insert_mut` path via [`EditInPlace`].

use std::hash::Hash;

use trie_common::ops::{
    EditInPlace, MapDiff, MapMergeOps, MapMutOps, MapOps, SetAlgebraOps, SetDiff, SetMutOps, SetOps,
};

use crate::{map, memo, set, HamtMap, HamtSet, MemoHamtMap, MemoHamtSet};

impl<K, V> MapOps<K, V> for HamtMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + PartialEq,
{
    const NAME: &'static str = "hamt-map";

    type Entries<'a>
        = map::Iter<'a, K, V>
    where
        Self: 'a,
        K: 'a,
        V: 'a;
    type Keys<'a>
        = map::Keys<'a, K, V>
    where
        Self: 'a,
        K: 'a,
        V: 'a;
    type Values<'a>
        = map::Values<'a, K, V>
    where
        Self: 'a,
        K: 'a,
        V: 'a;

    fn empty() -> Self {
        HamtMap::new()
    }
    fn len(&self) -> usize {
        HamtMap::len(self)
    }
    fn get(&self, key: &K) -> Option<&V> {
        HamtMap::get(self, key)
    }
    fn inserted(&self, key: K, value: V) -> Self {
        HamtMap::inserted(self, key, value)
    }
    fn removed(&self, key: &K) -> Self {
        HamtMap::removed(self, key)
    }
    fn entries(&self) -> Self::Entries<'_> {
        HamtMap::iter(self)
    }
    fn keys(&self) -> Self::Keys<'_> {
        HamtMap::keys(self)
    }
    fn values(&self) -> Self::Values<'_> {
        HamtMap::values(self)
    }
}

impl<K, V> MapMergeOps<K, V> for HamtMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + PartialEq,
{
    fn diff(&self, other: &Self) -> MapDiff<K, V> {
        HamtMap::diff(self, other)
    }
}

impl<K, V> EditInPlace<(K, V)> for HamtMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + PartialEq,
{
    fn edit_insert(&mut self, (key, value): (K, V)) -> bool {
        self.insert_mut(key, value)
    }
}

impl<K, V> MapMutOps<K, V> for HamtMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + PartialEq,
{
    fn insert_mut(&mut self, key: K, value: V) -> bool {
        HamtMap::insert_mut(self, key, value)
    }

    fn remove_mut(&mut self, key: &K) -> bool {
        HamtMap::remove_mut(self, key)
    }
}

impl<K, V> MapOps<K, V> for MemoHamtMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + PartialEq,
{
    const NAME: &'static str = "memo-hamt-map";

    type Entries<'a>
        = memo::Iter<'a, K, V>
    where
        Self: 'a,
        K: 'a,
        V: 'a;
    type Keys<'a>
        = memo::Keys<'a, K, V>
    where
        Self: 'a,
        K: 'a,
        V: 'a;
    type Values<'a>
        = memo::Values<'a, K, V>
    where
        Self: 'a,
        K: 'a,
        V: 'a;

    fn empty() -> Self {
        MemoHamtMap::new()
    }
    fn len(&self) -> usize {
        MemoHamtMap::len(self)
    }
    fn get(&self, key: &K) -> Option<&V> {
        MemoHamtMap::get(self, key)
    }
    fn inserted(&self, key: K, value: V) -> Self {
        MemoHamtMap::inserted(self, key, value)
    }
    fn removed(&self, key: &K) -> Self {
        MemoHamtMap::removed(self, key)
    }
    fn entries(&self) -> Self::Entries<'_> {
        MemoHamtMap::iter(self)
    }
    fn keys(&self) -> Self::Keys<'_> {
        MemoHamtMap::keys(self)
    }
    fn values(&self) -> Self::Values<'_> {
        MemoHamtMap::values(self)
    }
}

// The memoized wrapper keeps no structural root of its own, so it rides the
// documented element-wise fallbacks of the algebra traits.
impl<K, V> MapMergeOps<K, V> for MemoHamtMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + PartialEq,
{
}

impl<K, V> EditInPlace<(K, V)> for MemoHamtMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + PartialEq,
{
    fn edit_insert(&mut self, (key, value): (K, V)) -> bool {
        self.insert_mut(key, value)
    }
}

impl<K, V> MapMutOps<K, V> for MemoHamtMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + PartialEq,
{
    fn insert_mut(&mut self, key: K, value: V) -> bool {
        MemoHamtMap::insert_mut(self, key, value)
    }

    fn remove_mut(&mut self, key: &K) -> bool {
        MemoHamtMap::remove_mut(self, key)
    }
}

impl<T> SetOps<T> for HamtSet<T>
where
    T: Clone + Eq + Hash,
{
    const NAME: &'static str = "hamt-set";

    type Elems<'a>
        = set::Iter<'a, T>
    where
        Self: 'a,
        T: 'a;

    fn empty() -> Self {
        HamtSet::new()
    }
    fn len(&self) -> usize {
        HamtSet::len(self)
    }
    fn contains(&self, value: &T) -> bool {
        HamtSet::contains(self, value)
    }
    fn inserted(&self, value: T) -> Self {
        HamtSet::inserted(self, value)
    }
    fn removed(&self, value: &T) -> Self {
        HamtSet::removed(self, value)
    }
    fn iter(&self) -> Self::Elems<'_> {
        HamtSet::iter(self)
    }
}

impl<T> SetAlgebraOps<T> for HamtSet<T>
where
    T: Clone + Eq + Hash,
{
    fn diff(&self, other: &Self) -> SetDiff<T> {
        HamtSet::diff(self, other)
    }
}

impl<T> EditInPlace<T> for HamtSet<T>
where
    T: Clone + Eq + Hash,
{
    fn edit_insert(&mut self, value: T) -> bool {
        self.insert_mut(value)
    }
}

impl<T> SetMutOps<T> for HamtSet<T>
where
    T: Clone + Eq + Hash,
{
    fn insert_mut(&mut self, value: T) -> bool {
        HamtSet::insert_mut(self, value)
    }

    fn remove_mut(&mut self, value: &T) -> bool {
        HamtSet::remove_mut(self, value)
    }
}

impl<T> SetOps<T> for MemoHamtSet<T>
where
    T: Clone + Eq + Hash,
{
    const NAME: &'static str = "memo-hamt-set";

    type Elems<'a>
        = set::MemoIter<'a, T>
    where
        Self: 'a,
        T: 'a;

    fn empty() -> Self {
        MemoHamtSet::new()
    }
    fn len(&self) -> usize {
        MemoHamtSet::len(self)
    }
    fn contains(&self, value: &T) -> bool {
        MemoHamtSet::contains(self, value)
    }
    fn inserted(&self, value: T) -> Self {
        MemoHamtSet::inserted(self, value)
    }
    fn removed(&self, value: &T) -> Self {
        MemoHamtSet::removed(self, value)
    }
    fn iter(&self) -> Self::Elems<'_> {
        MemoHamtSet::iter(self)
    }
}

impl<T> SetMutOps<T> for MemoHamtSet<T>
where
    T: Clone + Eq + Hash,
{
    fn insert_mut(&mut self, value: T) -> bool {
        MemoHamtSet::insert_mut(self, value)
    }

    fn remove_mut(&mut self, value: &T) -> bool {
        MemoHamtSet::remove_mut(self, value)
    }
}

// See the `MemoHamtMap` note: the memoized set uses the element-wise
// fallback defaults.
impl<T> SetAlgebraOps<T> for MemoHamtSet<T> where T: Clone + Eq + Hash {}

impl<T> EditInPlace<T> for MemoHamtSet<T>
where
    T: Clone + Eq + Hash,
{
    fn edit_insert(&mut self, value: T) -> bool {
        self.insert_mut(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trie_common::ops::{Builder, TransientOps};

    fn exercise<M: MapOps<u32, u32>>() {
        let m = M::empty().inserted(1, 2).inserted(3, 4).removed(&1);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(&3), Some(&4));
        assert_eq!(m.entries().count(), 1);
        assert_eq!(m.keys().count(), 1);
        assert_eq!(m.values().count(), 1);
    }

    #[test]
    fn traits_are_wired() {
        exercise::<HamtMap<u32, u32>>();
        exercise::<MemoHamtMap<u32, u32>>();
        let s = <HamtSet<u32> as SetOps<u32>>::empty().inserted(1);
        assert!(SetOps::contains(&s, &1));
        assert_eq!(SetOps::iter(&s).count(), 1);
        let s = <MemoHamtSet<u32> as SetOps<u32>>::empty().inserted(1);
        assert!(SetOps::contains(&s, &1));
        assert_eq!(SetOps::iter(&s).count(), 1);
    }

    #[test]
    fn transient_builders_roundtrip() {
        let m = MemoHamtMap::<u32, u32>::built_from((0..50).map(|i| (i, i)));
        assert_eq!(m.len(), 50);
        let mut t = HamtSet::<u32>::transient_builder();
        assert_eq!(t.insert_all_mut(0..20), 20);
        assert!(!t.insert_mut(0));
        assert_eq!(t.build().len(), 20);
    }
}
