//! **HAMT** — the classic hash-array-mapped-trie baselines (Bagwell 2001),
//! in the two flavours the AXIOM paper compares against.
//!
//! * [`HamtMap`] / [`HamtSet`] — Clojure-flavoured: a single 32-bit bitmap,
//!   dynamically discriminated slots (the `instanceof` of paper Figure 2a)
//!   and *non-canonicalizing* deletion. These are the substrate of the
//!   idiomatic Clojure multi-map (Figure 4's baseline).
//! * [`MemoHamtMap`] / [`MemoHamtSet`] — Scala-flavoured: entries memoize
//!   their full 32-bit hash (fast negative lookups — the reason AXIOM loses
//!   `Lookup (Fail)` in Figure 5) and deletion canonicalizes. Substrate of
//!   the idiomatic Scala multi-map.
//!
//! # Examples
//!
//! ```
//! use hamt::{HamtMap, MemoHamtMap};
//!
//! let clojure_style: HamtMap<u32, &str> = [(1, "a")].into_iter().collect();
//! let scala_style: MemoHamtMap<u32, &str> = [(1, "a")].into_iter().collect();
//! assert_eq!(clojure_style.get(&1), scala_style.get(&1));
//! ```

#![warn(missing_docs)]

pub mod map;
pub mod memo;
pub mod set;

mod heap;
mod ops;
mod snapshot;

pub use heap::{
    hamt_map_jvm_with, hamt_map_rust_with, memo_map_jvm_with, memo_map_rust_with,
    nested_hamt_set_jvm, nested_hamt_set_rust, nested_memo_set_jvm, nested_memo_set_rust,
    EntryAccount,
};
pub use map::HamtMap;
pub use memo::MemoHamtMap;
pub use set::{HamtSet, MemoHamtSet};
