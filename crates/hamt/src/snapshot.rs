//! Snapshot persistence ([`SnapshotWrite`] / [`SnapshotRead`]) for the
//! HAMT collections.
//!
//! The Clojure-flavoured [`HamtMap`]/[`HamtSet`] do *not* canonicalize
//! under deletion, so two equal maps can have different trie shapes — but
//! snapshots store only the element sequence and restore rebuilds from
//! scratch, so the decoded trie is always in build-canonical form and
//! equality (which is content-based for these types) holds regardless of
//! the source's edit history. The memoizing variants rebuild their cached
//! hashes as a side effect of reinsertion.

use std::hash::Hash;

use serde::{Deserialize, Serialize};
use trie_common::ops::{MapOps, SetOps};
use trie_common::snapshot::{self, Kind, SnapshotError, SnapshotRead, SnapshotWrite};

use crate::{HamtMap, HamtSet, MemoHamtMap, MemoHamtSet};

macro_rules! impl_map_snapshot {
    ($ty:ident) => {
        impl<K, V> SnapshotWrite for $ty<K, V>
        where
            K: Serialize + Clone + Eq + Hash,
            V: Serialize + Clone + PartialEq,
        {
            const KIND: Kind = Kind::Map;

            fn write_snapshot(&self, out: &mut Vec<u8>) -> Result<(), SnapshotError> {
                snapshot::write_collection(Kind::Map, MapOps::entries(self), out)
            }
        }

        impl<K, V> SnapshotRead for $ty<K, V>
        where
            K: for<'de> Deserialize<'de> + Clone + Eq + Hash,
            V: for<'de> Deserialize<'de> + Clone + PartialEq,
        {
            fn read_snapshot(bytes: &[u8]) -> Result<Self, SnapshotError> {
                snapshot::read_collection(Kind::Map, bytes)
            }
        }
    };
}

macro_rules! impl_set_snapshot {
    ($ty:ident) => {
        impl<T> SnapshotWrite for $ty<T>
        where
            T: Serialize + Clone + Eq + Hash,
        {
            const KIND: Kind = Kind::Set;

            fn write_snapshot(&self, out: &mut Vec<u8>) -> Result<(), SnapshotError> {
                snapshot::write_collection(Kind::Set, SetOps::iter(self), out)
            }
        }

        impl<T> SnapshotRead for $ty<T>
        where
            T: for<'de> Deserialize<'de> + Clone + Eq + Hash,
        {
            fn read_snapshot(bytes: &[u8]) -> Result<Self, SnapshotError> {
                snapshot::read_collection(Kind::Set, bytes)
            }
        }
    };
}

impl_map_snapshot!(HamtMap);
impl_map_snapshot!(MemoHamtMap);
impl_set_snapshot!(HamtSet);
impl_set_snapshot!(MemoHamtSet);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamt_collections_roundtrip() {
        let map: HamtMap<u32, u32> = (0..300).map(|i| (i, i + 1)).collect();
        assert_eq!(
            HamtMap::read_snapshot(&map.snapshot_bytes().unwrap()).unwrap(),
            map
        );

        let memo: MemoHamtMap<String, u32> = (0..150).map(|i| (format!("k{i}"), i)).collect();
        assert_eq!(
            MemoHamtMap::read_snapshot(&memo.snapshot_bytes().unwrap()).unwrap(),
            memo
        );

        let set: HamtSet<u32> = (0..250).collect();
        assert_eq!(
            HamtSet::read_snapshot(&set.snapshot_bytes().unwrap()).unwrap(),
            set
        );

        let memo_set: MemoHamtSet<u32> = (0..250).collect();
        assert_eq!(
            MemoHamtSet::read_snapshot(&memo_set.snapshot_bytes().unwrap()).unwrap(),
            memo_set
        );
    }

    #[test]
    fn non_canonical_source_still_roundtrips() {
        // Deletions leave the Clojure-style trie non-canonical; the decoded
        // rebuild is canonical, and content equality still holds.
        let mut map: HamtMap<u32, u32> = (0..400).map(|i| (i, i)).collect();
        for i in 0..200 {
            map.remove_mut(&(i * 2));
        }
        let back = HamtMap::read_snapshot(&map.snapshot_bytes().unwrap()).unwrap();
        assert_eq!(back, map);
        assert_eq!(back.len(), 200);
    }
}
