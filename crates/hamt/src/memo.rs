//! A hash-memoizing HAMT, Scala-flavoured (`immutable.HashMap` pre-2.13).
//!
//! Two behaviours distinguish Scala's trie from Clojure's and from
//! CHAMP/AXIOM, and both matter in the paper's evaluation:
//!
//! 1. **Memoized hash codes** — every entry stores its full 32-bit hash.
//!    Lookups compare the memoized hash before calling `Eq`, which makes
//!    *negative* lookups (and collision probing) cheap. This is the paper's
//!    Hypothesis 2: AXIOM loses to Scala on `Lookup (Fail)` by a median
//!    ×1.27 precisely because AXIOM does not memoize hashes.
//! 2. **Canonicalizing deletion** — like CHAMP, collapsed sub-tries are
//!    inlined upward.
//!
//! The node layout is a single bitmap with dynamically discriminated slots
//! (Scala leaves are separate `HashMap1` objects on the JVM; the heap model
//! accounts for that).

use std::borrow::Borrow;
use std::hash::Hash;
use std::sync::Arc;

use trie_common::bits::{bit_pos, hash_exhausted, index_in, mask, next_shift};
use trie_common::hash::hash32;
use trie_common::slices::{
    inserted_at as slice_inserted, inserted_at_owned, migrate_map, removed_at as slice_removed,
    removed_at_owned, replaced_at as slice_replaced,
};

/// One slot: a leaf entry (with memoized hash) or a sub-trie.
#[derive(Debug, Clone)]
pub(crate) enum Slot<K, V> {
    /// Memoized 32-bit hash, key, value — Scala's `HashMap1`.
    Entry(u32, K, V),
    Child(Arc<Node<K, V>>),
}

/// A trie node.
#[derive(Debug, Clone)]
pub(crate) struct BitmapNode<K, V> {
    pub(crate) bitmap: u32,
    pub(crate) slots: Box<[Slot<K, V>]>,
}

/// Hash-collision overflow node (Scala's `HashMapCollision1`).
#[derive(Debug, Clone)]
pub(crate) struct CollisionNode<K, V> {
    pub(crate) hash: u32,
    pub(crate) entries: Vec<(K, V)>,
}

/// A trie node.
#[derive(Debug, Clone)]
pub(crate) enum Node<K, V> {
    Bitmap(BitmapNode<K, V>),
    Collision(CollisionNode<K, V>),
}

pub(crate) enum Inserted<K, V> {
    Unchanged,
    Replaced(Node<K, V>),
    Added(Node<K, V>),
}

pub(crate) enum Removed<K, V> {
    NotFound,
    Node(Node<K, V>),
    /// Canonicalization: a single surviving entry (with its memoized hash)
    /// is handed to the parent for inlining.
    Single(u32, K, V),
}

/// In-place insertion outcome (the node is edited where it stands).
pub(crate) enum EditInserted {
    Unchanged,
    Replaced,
    Added,
}

/// In-place removal outcome: edited nodes stay where they are, so only the
/// canonicalization payload (survivor + memoized hash) travels upward.
pub(crate) enum EditRemoved<K, V> {
    NotFound,
    Removed,
    /// The sub-tree collapsed to one entry (left in a consumed state; the
    /// parent drops it and inlines the survivor with its memoized hash).
    Single(u32, K, V),
}

impl<K: Clone + Eq + Hash, V: Clone + PartialEq> Node<K, V> {
    fn empty() -> Node<K, V> {
        Node::Bitmap(BitmapNode {
            bitmap: 0,
            slots: Box::new([]),
        })
    }

    fn pair(h1: u32, k1: K, v1: V, h2: u32, k2: K, v2: V, shift: u32) -> Node<K, V> {
        if hash_exhausted(shift) {
            debug_assert_eq!(h1, h2);
            return Node::Collision(CollisionNode {
                hash: h1,
                entries: vec![(k1, v1), (k2, v2)],
            });
        }
        let m1 = mask(h1, shift);
        let m2 = mask(h2, shift);
        if m1 == m2 {
            let child = Node::pair(h1, k1, v1, h2, k2, v2, next_shift(shift));
            Node::Bitmap(BitmapNode {
                bitmap: bit_pos(m1),
                slots: Box::new([Slot::Child(Arc::new(child))]),
            })
        } else {
            let slots: Box<[Slot<K, V>]> = if m1 < m2 {
                Box::new([Slot::Entry(h1, k1, v1), Slot::Entry(h2, k2, v2)])
            } else {
                Box::new([Slot::Entry(h2, k2, v2), Slot::Entry(h1, k1, v1)])
            };
            Node::Bitmap(BitmapNode {
                bitmap: bit_pos(m1) | bit_pos(m2),
                slots,
            })
        }
    }

    fn get<Q>(&self, hash: u32, shift: u32, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Eq + ?Sized,
    {
        match self {
            Node::Collision(c) => {
                if c.hash != hash {
                    return None;
                }
                c.entries
                    .iter()
                    .find(|(k, _)| k.borrow() == key)
                    .map(|(_, v)| v)
            }
            Node::Bitmap(b) => {
                let bit = bit_pos(mask(hash, shift));
                if b.bitmap & bit == 0 {
                    return None;
                }
                match &b.slots[index_in(b.bitmap, bit)] {
                    // Memoized-hash comparison first: failed probes usually
                    // bail before the (possibly expensive) key equality.
                    Slot::Entry(h, k, v) => (*h == hash && k.borrow() == key).then_some(v),
                    Slot::Child(child) => child.get(hash, next_shift(shift), key),
                }
            }
        }
    }

    fn inserted(&self, hash: u32, shift: u32, key: &K, value: &V) -> Inserted<K, V> {
        match self {
            Node::Collision(c) => {
                debug_assert_eq!(c.hash, hash);
                match c.entries.iter().position(|(k, _)| k == key) {
                    Some(pos) => {
                        if c.entries[pos].1 == *value {
                            return Inserted::Unchanged;
                        }
                        let mut entries = c.entries.clone();
                        entries[pos].1 = value.clone();
                        Inserted::Replaced(Node::Collision(CollisionNode {
                            hash: c.hash,
                            entries,
                        }))
                    }
                    None => {
                        let mut entries = c.entries.clone();
                        entries.push((key.clone(), value.clone()));
                        Inserted::Added(Node::Collision(CollisionNode {
                            hash: c.hash,
                            entries,
                        }))
                    }
                }
            }
            Node::Bitmap(b) => {
                let m = mask(hash, shift);
                let bit = bit_pos(m);
                if b.bitmap & bit == 0 {
                    let bitmap = b.bitmap | bit;
                    let idx = index_in(bitmap, bit);
                    return Inserted::Added(Node::Bitmap(BitmapNode {
                        bitmap,
                        slots: slice_inserted(
                            &b.slots,
                            idx,
                            Slot::Entry(hash, key.clone(), value.clone()),
                        ),
                    }));
                }
                let idx = index_in(b.bitmap, bit);
                match &b.slots[idx] {
                    Slot::Entry(eh, ek, ev) => {
                        if *eh == hash && ek == key {
                            if ev == value {
                                return Inserted::Unchanged;
                            }
                            return Inserted::Replaced(Node::Bitmap(BitmapNode {
                                bitmap: b.bitmap,
                                slots: slice_replaced(
                                    &b.slots,
                                    idx,
                                    Slot::Entry(hash, key.clone(), value.clone()),
                                ),
                            }));
                        }
                        // Memoized hash: no re-hash of the existing key here.
                        let child = Node::pair(
                            *eh,
                            ek.clone(),
                            ev.clone(),
                            hash,
                            key.clone(),
                            value.clone(),
                            next_shift(shift),
                        );
                        Inserted::Added(Node::Bitmap(BitmapNode {
                            bitmap: b.bitmap,
                            slots: slice_replaced(&b.slots, idx, Slot::Child(Arc::new(child))),
                        }))
                    }
                    Slot::Child(child) => {
                        let rebuild = |n: Node<K, V>| {
                            Node::Bitmap(BitmapNode {
                                bitmap: b.bitmap,
                                slots: slice_replaced(&b.slots, idx, Slot::Child(Arc::new(n))),
                            })
                        };
                        match child.inserted(hash, next_shift(shift), key, value) {
                            Inserted::Unchanged => Inserted::Unchanged,
                            Inserted::Replaced(n) => Inserted::Replaced(rebuild(n)),
                            Inserted::Added(n) => Inserted::Added(rebuild(n)),
                        }
                    }
                }
            }
        }
    }

    /// In-place insert driven by `Arc` uniqueness: a uniquely-owned node is
    /// edited directly, a shared node falls back to the persistent path copy
    /// for its whole subtree. The memoized hash travels with the entry, so
    /// the existing key is never re-hashed.
    fn insert_in_place(
        this: &mut Arc<Node<K, V>>,
        hash: u32,
        shift: u32,
        key: K,
        value: V,
    ) -> EditInserted {
        match Arc::get_mut(this) {
            Some(Node::Collision(c)) => {
                debug_assert_eq!(c.hash, hash);
                match c.entries.iter().position(|(k, _)| *k == key) {
                    Some(pos) => {
                        if c.entries[pos].1 == value {
                            return EditInserted::Unchanged;
                        }
                        c.entries[pos].1 = value;
                        EditInserted::Replaced
                    }
                    None => {
                        c.entries.push((key, value));
                        EditInserted::Added
                    }
                }
            }
            Some(Node::Bitmap(b)) => {
                let m = mask(hash, shift);
                let bit = bit_pos(m);
                if b.bitmap & bit == 0 {
                    b.bitmap |= bit;
                    let idx = index_in(b.bitmap, bit);
                    b.slots = inserted_at_owned(
                        std::mem::take(&mut b.slots),
                        idx,
                        Slot::Entry(hash, key, value),
                    );
                    return EditInserted::Added;
                }
                let idx = index_in(b.bitmap, bit);
                match &mut b.slots[idx] {
                    Slot::Entry(eh, ek, ev) => {
                        if *eh == hash && *ek == key {
                            if *ev == value {
                                return EditInserted::Unchanged;
                            }
                            b.slots[idx] = Slot::Entry(hash, key, value);
                            return EditInserted::Replaced;
                        }
                        // `from == to` migration: Entry → Child in place,
                        // both entries (and the memoized hash) moving into
                        // the fresh sub-trie.
                        migrate_map(&mut b.slots, idx, idx, |slot| {
                            let Slot::Entry(eh, ek, ev) = slot else {
                                unreachable!("just matched an entry")
                            };
                            Slot::Child(Arc::new(Node::pair(
                                eh,
                                ek,
                                ev,
                                hash,
                                key,
                                value,
                                next_shift(shift),
                            )))
                        });
                        EditInserted::Added
                    }
                    Slot::Child(child) => {
                        Node::insert_in_place(child, hash, next_shift(shift), key, value)
                    }
                }
            }
            None => match this.inserted(hash, shift, &key, &value) {
                Inserted::Unchanged => EditInserted::Unchanged,
                Inserted::Replaced(n) => {
                    *this = Arc::new(n);
                    EditInserted::Replaced
                }
                Inserted::Added(n) => {
                    *this = Arc::new(n);
                    EditInserted::Added
                }
            },
        }
    }

    /// In-place removal (same `Arc`-uniqueness discipline as
    /// [`Node::insert_in_place`]), canonicalizing exactly like
    /// [`Node::removed`]; the survivor's memoized hash travels with it, so
    /// no key is ever re-hashed.
    fn remove_in_place<Q>(
        this: &mut Arc<Node<K, V>>,
        hash: u32,
        shift: u32,
        key: &Q,
    ) -> EditRemoved<K, V>
    where
        K: Borrow<Q>,
        Q: Eq + ?Sized,
    {
        match Arc::get_mut(this) {
            Some(Node::Collision(c)) => {
                if c.hash != hash {
                    return EditRemoved::NotFound;
                }
                let Some(pos) = c.entries.iter().position(|(k, _)| k.borrow() == key) else {
                    return EditRemoved::NotFound;
                };
                if c.entries.len() == 2 {
                    let (k, v) = c.entries.swap_remove(1 - pos);
                    return EditRemoved::Single(c.hash, k, v);
                }
                c.entries.swap_remove(pos);
                EditRemoved::Removed
            }
            Some(Node::Bitmap(b)) => {
                let m = mask(hash, shift);
                let bit = bit_pos(m);
                if b.bitmap & bit == 0 {
                    return EditRemoved::NotFound;
                }
                let idx = index_in(b.bitmap, bit);
                match &mut b.slots[idx] {
                    Slot::Entry(eh, ek, _) => {
                        if *eh != hash || (*ek).borrow() != key {
                            return EditRemoved::NotFound;
                        }
                        // Canonicalize: a lone surviving entry moves up.
                        if shift > 0 && b.slots.len() == 2 {
                            if let Slot::Entry(..) = &b.slots[1 - idx] {
                                let mut slots = std::mem::take(&mut b.slots).into_vec();
                                let Slot::Entry(h, k, v) = slots.swap_remove(1 - idx) else {
                                    unreachable!("just matched an entry")
                                };
                                return EditRemoved::Single(h, k, v);
                            }
                        }
                        b.bitmap &= !bit;
                        b.slots = removed_at_owned(std::mem::take(&mut b.slots), idx);
                        EditRemoved::Removed
                    }
                    Slot::Child(child) => {
                        match Node::remove_in_place(child, hash, next_shift(shift), key) {
                            EditRemoved::NotFound => EditRemoved::NotFound,
                            EditRemoved::Removed => EditRemoved::Removed,
                            EditRemoved::Single(h, k, v) => {
                                if shift > 0 && b.slots.len() == 1 {
                                    // A pure chain node dissolves.
                                    return EditRemoved::Single(h, k, v);
                                }
                                // Inline: overwrite the collapsed child's
                                // slot with the surviving entry in place.
                                b.slots[idx] = Slot::Entry(h, k, v);
                                EditRemoved::Removed
                            }
                        }
                    }
                }
            }
            None => match this.removed(hash, shift, key) {
                Removed::NotFound => EditRemoved::NotFound,
                Removed::Node(n) => {
                    *this = Arc::new(n);
                    EditRemoved::Removed
                }
                Removed::Single(h, k, v) => EditRemoved::Single(h, k, v),
            },
        }
    }

    fn removed<Q>(&self, hash: u32, shift: u32, key: &Q) -> Removed<K, V>
    where
        K: Borrow<Q>,
        Q: Eq + ?Sized,
    {
        match self {
            Node::Collision(c) => {
                if c.hash != hash {
                    return Removed::NotFound;
                }
                let Some(pos) = c.entries.iter().position(|(k, _)| k.borrow() == key) else {
                    return Removed::NotFound;
                };
                if c.entries.len() == 2 {
                    let (k, v) = c.entries[1 - pos].clone();
                    return Removed::Single(c.hash, k, v);
                }
                let mut entries = c.entries.clone();
                entries.remove(pos);
                Removed::Node(Node::Collision(CollisionNode {
                    hash: c.hash,
                    entries,
                }))
            }
            Node::Bitmap(b) => {
                let m = mask(hash, shift);
                let bit = bit_pos(m);
                if b.bitmap & bit == 0 {
                    return Removed::NotFound;
                }
                let idx = index_in(b.bitmap, bit);
                match &b.slots[idx] {
                    Slot::Entry(eh, ek, _) => {
                        if *eh != hash || ek.borrow() != key {
                            return Removed::NotFound;
                        }
                        let bitmap = b.bitmap & !bit;
                        let remaining: Vec<&Slot<K, V>> = b
                            .slots
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| *i != idx)
                            .map(|(_, s)| s)
                            .collect();
                        // Canonicalize: a lone surviving entry moves up.
                        if shift > 0 && remaining.len() == 1 {
                            if let Slot::Entry(h, k, v) = remaining[0] {
                                return Removed::Single(*h, k.clone(), v.clone());
                            }
                        }
                        Removed::Node(Node::Bitmap(BitmapNode {
                            bitmap,
                            slots: slice_removed(&b.slots, idx),
                        }))
                    }
                    Slot::Child(child) => match child.removed(hash, next_shift(shift), key) {
                        Removed::NotFound => Removed::NotFound,
                        Removed::Node(n) => Removed::Node(Node::Bitmap(BitmapNode {
                            bitmap: b.bitmap,
                            slots: slice_replaced(&b.slots, idx, Slot::Child(Arc::new(n))),
                        })),
                        Removed::Single(h, k, v) => {
                            if shift > 0 && b.slots.len() == 1 {
                                return Removed::Single(h, k, v);
                            }
                            Removed::Node(Node::Bitmap(BitmapNode {
                                bitmap: b.bitmap,
                                slots: slice_replaced(&b.slots, idx, Slot::Entry(h, k, v)),
                            }))
                        }
                    },
                }
            }
        }
    }
}

/// A persistent hash map that memoizes entry hashes (Scala-flavoured). See
/// the [module documentation](self).
pub struct MemoHamtMap<K, V> {
    pub(crate) root: Arc<Node<K, V>>,
    pub(crate) len: usize,
}

impl<K, V> Clone for MemoHamtMap<K, V> {
    fn clone(&self) -> Self {
        MemoHamtMap {
            root: Arc::clone(&self.root),
            len: self.len,
        }
    }
}

impl<K, V> MemoHamtMap<K, V> {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates `(key, value)` entries in unspecified (trie) order.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter {
            stack: vec![cursor_of(&self.root)],
            remaining: self.len,
        }
    }

    /// Iterates the keys in unspecified order.
    pub fn keys(&self) -> Keys<'_, K, V> {
        Keys { inner: self.iter() }
    }

    /// Iterates the values in unspecified order.
    pub fn values(&self) -> Values<'_, K, V> {
        Values { inner: self.iter() }
    }
}

impl<K: Clone + Eq + Hash, V: Clone + PartialEq> MemoHamtMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        MemoHamtMap {
            root: Arc::new(Node::empty()),
            len: 0,
        }
    }

    /// Looks up the value bound to `key`.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.root.get(hash32(key), 0, key)
    }

    /// True if `key` has a binding.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.get(key).is_some()
    }

    /// Returns a map with `key` bound to `value`; `self` is unchanged.
    pub fn inserted(&self, key: K, value: V) -> Self {
        let mut next = self.clone();
        next.insert_mut(key, value);
        next
    }

    /// Binds `key` to `value` in place. Returns true if a new key was added.
    pub fn insert_mut(&mut self, key: K, value: V) -> bool {
        let hash = hash32(&key);
        match Node::insert_in_place(&mut self.root, hash, 0, key, value) {
            EditInserted::Unchanged | EditInserted::Replaced => false,
            EditInserted::Added => {
                self.len += 1;
                true
            }
        }
    }

    /// Returns a map without a binding for `key`; `self` is unchanged.
    pub fn removed<Q>(&self, key: &Q) -> Self
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        let mut next = self.clone();
        next.remove_mut(key);
        next
    }

    /// Removes `key` in place: uniquely-owned trie nodes along the spine
    /// are edited directly, shared nodes are path-copied. Returns true if a
    /// binding was removed.
    pub fn remove_mut<Q>(&mut self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        match Node::remove_in_place(&mut self.root, hash32(key), 0, key) {
            EditRemoved::NotFound => false,
            EditRemoved::Removed => {
                self.len -= 1;
                true
            }
            EditRemoved::Single(h, k, v) => {
                let m = mask(h, 0);
                self.root = Arc::new(Node::Bitmap(BitmapNode {
                    bitmap: bit_pos(m),
                    slots: Box::new([Slot::Entry(h, k, v)]),
                }));
                self.len -= 1;
                true
            }
        }
    }

    pub(crate) fn root_node(&self) -> &Node<K, V> {
        &self.root
    }

    /// Structural checks: memoized hashes must match, canonical form holds.
    ///
    /// # Panics
    ///
    /// Panics if any structural invariant is violated.
    #[doc(hidden)]
    pub fn assert_invariants(&self) {
        let counted = validate(&self.root, 0);
        assert_eq!(counted, self.len, "len bookkeeping");
    }
}

fn validate<K: Clone + Eq + Hash, V: Clone + PartialEq>(node: &Node<K, V>, shift: u32) -> usize {
    match node {
        Node::Collision(c) => {
            assert!(hash_exhausted(shift));
            assert!(c.entries.len() >= 2);
            for (k, _) in &c.entries {
                assert_eq!(hash32(k), c.hash);
            }
            c.entries.len()
        }
        Node::Bitmap(b) => {
            assert_eq!(b.slots.len(), b.bitmap.count_ones() as usize);
            let mut total = 0;
            let mut payload = 0;
            let mut bit_iter = (0..32).filter(|m| b.bitmap & bit_pos(*m) != 0);
            for slot in b.slots.iter() {
                let m = bit_iter.next().expect("slot without branch");
                match slot {
                    Slot::Entry(h, k, _) => {
                        assert_eq!(*h, hash32(k), "stale memoized hash");
                        assert_eq!(mask(*h, shift), m, "entry in wrong branch");
                        total += 1;
                        payload += 1;
                    }
                    Slot::Child(child) => {
                        let sub = validate(child, next_shift(shift));
                        assert!(sub >= 2, "sub-trie with < 2 entries not inlined");
                        total += sub;
                    }
                }
            }
            if shift > 0 {
                assert!(
                    !(payload == 1 && b.slots.len() == 1),
                    "non-root singleton payload node must be inlined"
                );
            }
            total
        }
    }
}

impl<K: Clone + Eq + Hash, V: Clone + PartialEq> Default for MemoHamtMap<K, V> {
    fn default() -> Self {
        MemoHamtMap::new()
    }
}

impl<K: Clone + Eq + Hash, V: Clone + PartialEq> PartialEq for MemoHamtMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len
            && self
                .iter()
                .all(|(k, v)| other.get(k).is_some_and(|w| w == v))
    }
}

impl<K: Clone + Eq + Hash, V: Clone + Eq> Eq for MemoHamtMap<K, V> {}

impl<K, V> std::fmt::Debug for MemoHamtMap<K, V>
where
    K: std::fmt::Debug,
    V: std::fmt::Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: Clone + Eq + Hash, V: Clone + PartialEq> FromIterator<(K, V)> for MemoHamtMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        trie_common::ops::from_iter_via(iter)
    }
}

impl<K: Clone + Eq + Hash, V: Clone + PartialEq> Extend<(K, V)> for MemoHamtMap<K, V> {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        trie_common::ops::extend_via(self, iter);
    }
}

impl<'a, K: Clone + Eq + Hash, V: Clone + PartialEq> IntoIterator for &'a MemoHamtMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = Iter<'a, K, V>;
    fn into_iter(self) -> Iter<'a, K, V> {
        self.iter()
    }
}

enum Cursor<'a, K, V> {
    Bitmap { slots: &'a [Slot<K, V>], idx: usize },
    Collision { entries: &'a [(K, V)], idx: usize },
}

fn cursor_of<K, V>(node: &Node<K, V>) -> Cursor<'_, K, V> {
    match node {
        Node::Bitmap(b) => Cursor::Bitmap {
            slots: &b.slots,
            idx: 0,
        },
        Node::Collision(c) => Cursor::Collision {
            entries: &c.entries,
            idx: 0,
        },
    }
}

/// Iterator over map entries. Created by [`MemoHamtMap::iter`].
pub struct Iter<'a, K, V> {
    stack: Vec<Cursor<'a, K, V>>,
    remaining: usize,
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<(&'a K, &'a V)> {
        loop {
            let top = self.stack.last_mut()?;
            match top {
                Cursor::Collision { entries, idx } => {
                    if *idx < entries.len() {
                        let (k, v) = &entries[*idx];
                        *idx += 1;
                        self.remaining -= 1;
                        return Some((k, v));
                    }
                    self.stack.pop();
                }
                Cursor::Bitmap { slots, idx } => {
                    if *idx >= slots.len() {
                        self.stack.pop();
                        continue;
                    }
                    let slot = &slots[*idx];
                    *idx += 1;
                    match slot {
                        Slot::Entry(_, k, v) => {
                            self.remaining -= 1;
                            return Some((k, v));
                        }
                        Slot::Child(child) => self.stack.push(cursor_of(child)),
                    }
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<'a, K, V> ExactSizeIterator for Iter<'a, K, V> {}

impl<'a, K, V> std::fmt::Debug for Iter<'a, K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Iter")
            .field("remaining", &self.remaining)
            .finish()
    }
}

/// Iterator over map keys. Created by [`MemoHamtMap::keys`].
#[derive(Debug)]
pub struct Keys<'a, K, V> {
    inner: Iter<'a, K, V>,
}

impl<'a, K, V> Iterator for Keys<'a, K, V> {
    type Item = &'a K;
    fn next(&mut self) -> Option<&'a K> {
        self.inner.next().map(|(k, _)| k)
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<'a, K, V> ExactSizeIterator for Keys<'a, K, V> {}

/// Iterator over map values. Created by [`MemoHamtMap::values`].
#[derive(Debug)]
pub struct Values<'a, K, V> {
    inner: Iter<'a, K, V>,
}

impl<'a, K, V> Iterator for Values<'a, K, V> {
    type Item = &'a V;
    fn next(&mut self) -> Option<&'a V> {
        self.inner.next().map(|(_, v)| v)
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<'a, K, V> ExactSizeIterator for Values<'a, K, V> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::collections::HashMap;
    use std::hash::Hasher;

    #[test]
    fn basics_and_canonical_removal() {
        let mut m: MemoHamtMap<u32, u32> = (0..500).map(|i| (i, i)).collect();
        assert_eq!(m.len(), 500);
        m.assert_invariants();
        for i in 0..500 {
            assert_eq!(m.get(&i), Some(&i));
            assert!(m.remove_mut(&i));
            m.assert_invariants();
        }
        assert!(m.is_empty());
    }

    #[test]
    fn model_based_random_ops() {
        let mut model: HashMap<u32, u32> = HashMap::new();
        let mut m: MemoHamtMap<u32, u32> = MemoHamtMap::new();
        let mut state = 17u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..4000 {
            let op = next() % 3;
            let key = next() % 150;
            match op {
                0 | 1 => {
                    let val = next();
                    model.insert(key, val);
                    m.insert_mut(key, val);
                }
                _ => {
                    model.remove(&key);
                    m.remove_mut(&key);
                }
            }
            assert_eq!(m.len(), model.len());
        }
        m.assert_invariants();
        let collected: HashMap<u32, u32> = m.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(collected, model);
    }

    /// Key whose `Eq` counts its invocations: memoized hashes must shield
    /// negative lookups from equality calls when hashes differ.
    #[derive(Debug, Clone)]
    struct CountingKey {
        id: u32,
        eq_calls: std::rc::Rc<Cell<u32>>,
    }

    impl PartialEq for CountingKey {
        fn eq(&self, other: &Self) -> bool {
            self.eq_calls.set(self.eq_calls.get() + 1);
            other.eq_calls.set(other.eq_calls.get() + 1);
            self.id == other.id
        }
    }
    impl Eq for CountingKey {}
    impl Hash for CountingKey {
        fn hash<H: Hasher>(&self, state: &mut H) {
            state.write_u32(self.id);
        }
    }

    #[test]
    fn negative_lookup_avoids_eq_when_hash_differs() {
        let counter = std::rc::Rc::new(Cell::new(0));
        let mk = |id| CountingKey {
            id,
            eq_calls: counter.clone(),
        };
        let m: MemoHamtMap<CountingKey, u32> = (0..64).map(|i| (mk(i), i)).collect();
        counter.set(0);
        // Probing absent keys: every probe that reaches an entry slot first
        // compares the memoized hash; distinct ids imply distinct hashes
        // here, so Eq must never fire.
        for id in 1000..1100 {
            assert_eq!(m.get(&mk(id)), None);
        }
        assert_eq!(counter.get(), 0, "memoized hash should shield Eq");
    }
}
