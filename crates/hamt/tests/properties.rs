//! Property-based tests for both HAMT flavours: oracle agreement under
//! random op sequences (with and without collision-heavy hashing), the
//! Clojure flavour's tolerance of degenerate shapes, and the Scala
//! flavour's canonical form plus memoized-hash consistency.

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

use hamt::{HamtMap, HamtSet, MemoHamtMap, MemoHamtSet};
use proptest::prelude::*;

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct NarrowKey(u16);

impl Hash for NarrowKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u32((self.0 & 0x1f) as u32);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn both_flavours_match_btreemap(ops in prop::collection::vec(
        (any::<u16>(), any::<u16>(), any::<bool>()), 0..400))
    {
        let mut model = BTreeMap::new();
        let mut plain = HamtMap::<u16, u16>::new();
        let mut memo = MemoHamtMap::<u16, u16>::new();
        for (k, v, remove) in ops {
            let k = k % 128;
            if remove {
                let had = model.remove(&k).is_some();
                prop_assert_eq!(plain.remove_mut(&k), had);
                prop_assert_eq!(memo.remove_mut(&k), had);
            } else {
                let fresh = model.insert(k, v).is_none();
                prop_assert_eq!(plain.insert_mut(k, v), fresh);
                prop_assert_eq!(memo.insert_mut(k, v), fresh);
            }
        }
        plain.assert_invariants();
        memo.assert_invariants();
        prop_assert_eq!(plain.len(), model.len());
        prop_assert_eq!(memo.len(), model.len());
        for (k, v) in &model {
            prop_assert_eq!(plain.get(k), Some(v));
            prop_assert_eq!(memo.get(k), Some(v));
        }
    }

    #[test]
    fn collision_heavy_sequences(ops in prop::collection::vec(
        (any::<u16>(), any::<bool>()), 0..250))
    {
        let mut model = BTreeMap::new();
        let mut plain = HamtMap::<NarrowKey, u16>::new();
        let mut memo = MemoHamtMap::<NarrowKey, u16>::new();
        for (k, remove) in ops {
            let key = NarrowKey(k % 150);
            if remove {
                model.remove(&key);
                plain.remove_mut(&key);
                memo.remove_mut(&key);
            } else {
                model.insert(key.clone(), k);
                plain.insert_mut(key.clone(), k);
                memo.insert_mut(key, k);
            }
            plain.assert_invariants();
            memo.assert_invariants();
        }
        prop_assert_eq!(plain.len(), model.len());
        prop_assert_eq!(memo.len(), model.len());
    }

    #[test]
    fn degenerate_paths_do_not_lose_entries(keys in prop::collection::btree_set(any::<u16>(), 2..150)) {
        // Build up, remove all but one key: the plain HAMT may keep
        // degenerate single-entry paths — content must still be exact.
        let mut plain: HamtMap<u16, u16> = keys.iter().map(|k| (*k, *k)).collect();
        let keep = *keys.iter().next().unwrap();
        for k in keys.iter().skip(1) {
            prop_assert!(plain.remove_mut(k));
            plain.assert_invariants();
        }
        prop_assert_eq!(plain.len(), 1);
        prop_assert_eq!(plain.get(&keep), Some(&keep));
        // Re-inserting everything restores full content.
        for k in &keys {
            plain.insert_mut(*k, *k);
        }
        prop_assert_eq!(plain.len(), keys.len());
    }

    #[test]
    fn sets_mirror_their_maps(elems in prop::collection::btree_set(any::<u16>(), 0..200)) {
        let plain: HamtSet<u16> = elems.iter().copied().collect();
        let memo: MemoHamtSet<u16> = elems.iter().copied().collect();
        prop_assert_eq!(plain.len(), elems.len());
        prop_assert_eq!(memo.len(), elems.len());
        for e in &elems {
            prop_assert!(plain.contains(e));
            prop_assert!(memo.contains(e));
        }
        let missing = elems.iter().max().map(|m| m.wrapping_add(1)).unwrap_or(1);
        if !elems.contains(&missing) {
            prop_assert!(!plain.contains(&missing));
            prop_assert!(!memo.contains(&missing));
        }
    }

    #[test]
    fn content_equality_across_histories(
        base in prop::collection::btree_map(any::<u16>(), any::<u16>(), 0..100),
        extra in prop::collection::btree_set(any::<u16>(), 0..40),
    ) {
        // Insert extra keys then remove them again: equal content, possibly
        // different shapes (non-canonical) — equality must be content-based.
        let direct: HamtMap<u16, u16> = base.iter().map(|(k, v)| (*k, *v)).collect();
        let mut detour = direct.clone();
        for e in &extra {
            if !base.contains_key(e) {
                detour.insert_mut(*e, 0);
            }
        }
        for e in &extra {
            if !base.contains_key(e) {
                detour.remove_mut(e);
            }
        }
        prop_assert_eq!(direct, detour);
    }
}
