//! Property-based tests specific to the AXIOM encoding: bitmap laws, slot
//! grouping, collision-heavy multi-map sequences, and the canonical-form
//! invariant under adversarial hash distributions.

use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};

use axiom::bitmap::{Category, SlotBitmap};
use axiom::{AxiomFusedMultiMap, AxiomMultiMap, AxiomSet};
use proptest::prelude::*;

/// Key with only 5 effective hash bits: every trie level collides heavily
/// and hash exhaustion (collision nodes) is routinely reached.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct NarrowKey(u16);

impl Hash for NarrowKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u32((self.0 & 0x1f) as u32);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // ---------------- bitmap laws (the paper's Listings 2-3) ----------------

    #[test]
    fn bitmap_filters_partition(raw in any::<u64>()) {
        let bm = SlotBitmap::from_raw(raw);
        let union = Category::ALL.iter().fold(0u64, |acc, &c| acc | bm.filter(c));
        // Every branch appears in exactly one category's filter.
        prop_assert_eq!(union, 0x5555_5555_5555_5555);
        for (i, &a) in Category::ALL.iter().enumerate() {
            for &b in &Category::ALL[i + 1..] {
                prop_assert_eq!(bm.filter(a) & bm.filter(b), 0);
            }
        }
    }

    #[test]
    fn bitmap_histogram_equals_filter_counts(raw in any::<u64>()) {
        let bm = SlotBitmap::from_raw(raw);
        let hist = bm.histogram();
        for cat in Category::ALL {
            prop_assert_eq!(hist[cat as usize] as usize, bm.count(cat));
        }
        prop_assert_eq!(hist.iter().sum::<u32>(), 32);
        prop_assert_eq!(bm.arity(), 32 - hist[0] as usize);
    }

    #[test]
    fn bitmap_indexing_is_dense_and_ordered(raw in any::<u64>()) {
        let bm = SlotBitmap::from_raw(raw);
        // Within every category, slot indices enumerate 0..count in mask order.
        for cat in [Category::Cat1, Category::Cat2, Category::Node] {
            let mut expected = 0usize;
            for mask in bm.masks_of(cat) {
                prop_assert_eq!(bm.index(cat, mask), expected);
                prop_assert_eq!(bm.slot_index(cat, mask), bm.offset(cat) + expected);
                expected += 1;
            }
            prop_assert_eq!(expected, bm.count(cat));
        }
        // Group ranges are contiguous and non-overlapping.
        prop_assert_eq!(bm.offset(Category::Cat1), 0);
        prop_assert_eq!(bm.offset(Category::Cat2), bm.count(Category::Cat1));
        prop_assert_eq!(
            bm.offset(Category::Node),
            bm.count(Category::Cat1) + bm.count(Category::Cat2)
        );
    }

    #[test]
    fn bitmap_with_is_pointwise(raw in any::<u64>(), mask in 0u32..32, cat_idx in 0usize..4) {
        let bm = SlotBitmap::from_raw(raw);
        let cat = Category::ALL[cat_idx];
        let updated = bm.with(mask, cat);
        prop_assert_eq!(updated.get(mask), cat);
        for other in (0..32).filter(|&m| m != mask) {
            prop_assert_eq!(updated.get(other), bm.get(other));
        }
    }

    #[test]
    fn linear_scan_dispatch_equals_switch(raw in any::<u64>(), mask in 0u32..32) {
        let bm = SlotBitmap::from_raw(raw);
        prop_assert_eq!(bm.get(mask), bm.get_linear_scan(mask));
        let cat = bm.get(mask);
        if cat != Category::Empty {
            prop_assert_eq!(
                bm.slot_index(cat, mask),
                bm.slot_index_linear_scan(cat, mask)
            );
        }
    }

    // ---------------- structural properties under narrow hashes ------------

    #[test]
    fn multimap_with_narrow_hashes(ops in prop::collection::vec(
        (any::<u16>(), any::<u8>(), any::<bool>()), 0..250))
    {
        let mut model: BTreeMap<NarrowKey, BTreeSet<u8>> = BTreeMap::new();
        let mut mm = AxiomMultiMap::<NarrowKey, u8>::new();
        for (k, v, remove) in ops {
            let key = NarrowKey(k % 100);
            let v = v % 6;
            if remove {
                if let Some(s) = model.get_mut(&key) {
                    s.remove(&v);
                    if s.is_empty() {
                        model.remove(&key);
                    }
                }
                mm.remove_tuple_mut(&key, &v);
            } else {
                model.entry(key.clone()).or_default().insert(v);
                mm.insert_mut(key, v);
            }
            mm.assert_invariants();
        }
        prop_assert_eq!(mm.key_count(), model.len());
        for (k, vs) in &model {
            prop_assert_eq!(mm.value_count(k), vs.len());
        }
    }

    #[test]
    fn fused_and_nested_agree_under_narrow_hashes(ops in prop::collection::vec(
        (any::<u16>(), any::<u8>(), any::<bool>()), 0..200))
    {
        let mut nested = AxiomMultiMap::<NarrowKey, u8>::new();
        let mut fused = AxiomFusedMultiMap::<NarrowKey, u8>::new();
        for (k, v, remove) in ops {
            let key = NarrowKey(k % 64);
            let v = v % 8;
            if remove {
                prop_assert_eq!(
                    nested.remove_tuple_mut(&key, &v),
                    fused.remove_tuple_mut(&key, &v)
                );
            } else {
                prop_assert_eq!(
                    nested.insert_mut(key.clone(), v),
                    fused.insert_mut(key, v)
                );
            }
        }
        prop_assert_eq!(nested.tuple_count(), fused.tuple_count());
        prop_assert_eq!(nested.key_count(), fused.key_count());
        nested.assert_invariants();
        fused.assert_invariants();
    }

    #[test]
    fn set_hash_law(a in prop::collection::btree_set(any::<u16>(), 0..100)) {
        // Equal sets hash equal regardless of construction order.
        use std::collections::hash_map::DefaultHasher;
        let forward: AxiomSet<u16> = a.iter().copied().collect();
        let backward: AxiomSet<u16> = a.iter().rev().copied().collect();
        prop_assert_eq!(&forward, &backward);
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        forward.hash(&mut h1);
        backward.hash(&mut h2);
        prop_assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn key_removed_equals_repeated_tuple_removed(
        entries in prop::collection::btree_map(any::<u16>(), prop::collection::btree_set(any::<u8>(), 1..6), 1..40),
        victim_idx in any::<prop::sample::Index>(),
    ) {
        let mut mm = AxiomMultiMap::<u16, u8>::new();
        for (k, vs) in &entries {
            for v in vs {
                mm.insert_mut(*k, *v);
            }
        }
        let victim = *entries.keys().nth(victim_idx.index(entries.len())).unwrap();
        let by_key = mm.key_removed(&victim);
        let mut by_tuples = mm.clone();
        for v in &entries[&victim] {
            by_tuples.remove_tuple_mut(&victim, v);
        }
        prop_assert_eq!(by_key, by_tuples);
    }
}
