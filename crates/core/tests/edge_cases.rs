//! Edge-case integration tests for the AXIOM collections: hash exhaustion,
//! deep prefix chains, collision-canonicalization interplay, root corner
//! cases, borrowed lookups and iterator exactness.

use std::hash::{Hash, Hasher};
use std::sync::Arc;

use axiom::{AxiomFusedMultiMap, AxiomMap, AxiomMultiMap, AxiomSet, BindingRef, FUSE_MAX};

/// Key whose hash is fully controllable: only `hash_bits` feeds the hasher.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CtrlKey {
    hash_bits: u32,
    id: u32,
}

impl CtrlKey {
    fn new(hash_bits: u32, id: u32) -> Self {
        CtrlKey { hash_bits, id }
    }
}

impl Hash for CtrlKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u32(self.hash_bits);
    }
}

#[test]
fn deep_prefix_chains_build_and_canonicalize() {
    // Many keys sharing the same hash bucket form a maximal-depth chain
    // ending in a collision node; removals must canonicalize all the way up.
    let mut set: AxiomSet<CtrlKey> = AxiomSet::new();
    for id in 0..20 {
        assert!(set.insert_mut(CtrlKey::new(0xdead_beef, id)));
    }
    // A disjoint bucket too.
    for id in 0..20 {
        assert!(set.insert_mut(CtrlKey::new(0x1234_5678, id)));
    }
    assert_eq!(set.len(), 40);
    set.assert_invariants();

    // Drain the first bucket entirely.
    for id in 0..20 {
        assert!(set.remove_mut(&CtrlKey::new(0xdead_beef, id)));
        set.assert_invariants();
    }
    assert_eq!(set.len(), 20);
    for id in 0..20 {
        assert!(set.contains(&CtrlKey::new(0x1234_5678, id)));
    }
}

#[test]
fn collision_node_multimap_promotions() {
    // Colliding keys whose bindings promote and demote inside the collision
    // node exercise the Binding logic off the bitmap path.
    let mut mm: AxiomMultiMap<CtrlKey, u32> = AxiomMultiMap::new();
    let a = CtrlKey::new(7, 0);
    let b = CtrlKey::new(7, 1);
    for v in 0..5 {
        mm.insert_mut(a.clone(), v);
    }
    mm.insert_mut(b.clone(), 100);
    assert_eq!(mm.key_count(), 2);
    assert_eq!(mm.tuple_count(), 6);
    mm.assert_invariants();

    // Demote `a` back to a singleton inside the collision node.
    for v in 1..5 {
        assert!(mm.remove_tuple_mut(&a, &v));
    }
    assert!(matches!(mm.get(&a), Some(BindingRef::One(&0))));
    mm.assert_invariants();

    // Remove the last `a` tuple: the collision node collapses and `b`
    // inlines upward into a bitmap node.
    assert!(mm.remove_tuple_mut(&a, &0));
    assert_eq!(mm.key_count(), 1);
    assert!(mm.contains_tuple(&b, &100));
    mm.assert_invariants();
}

#[test]
fn root_corner_cases() {
    // Root with a single entry: removing it empties the trie.
    let mm = AxiomMultiMap::<u32, u32>::new().inserted(1, 2);
    let empty = mm.tuple_removed(&1, &2);
    assert!(empty.is_empty());
    assert_eq!(empty, AxiomMultiMap::new());

    // Root with two entries in distinct branches: removal keeps the root
    // as a one-payload node (roots are exempt from inlining).
    let two = AxiomMultiMap::<u32, u32>::new()
        .inserted(1, 1)
        .inserted(2, 2);
    let one = two.tuple_removed(&1, &1);
    assert_eq!(one.tuple_count(), 1);
    one.assert_invariants();

    // remove_key on an absent key is a no-op clone.
    assert_eq!(two.key_removed(&999), two);
}

#[test]
fn fused_bag_boundary_at_fuse_max() {
    let mut mm: AxiomFusedMultiMap<u32, u32> = AxiomFusedMultiMap::new();
    // Fill a key exactly to the inline boundary, then step over and back.
    for v in 0..FUSE_MAX as u32 {
        mm.insert_mut(42, v);
    }
    assert_eq!(mm.value_count(&42), FUSE_MAX);
    mm.assert_invariants();
    mm.insert_mut(42, FUSE_MAX as u32); // inline → trie
    assert_eq!(mm.value_count(&42), FUSE_MAX + 1);
    mm.assert_invariants();
    mm.remove_tuple_mut(&42, &(FUSE_MAX as u32)); // trie → inline
    assert_eq!(mm.value_count(&42), FUSE_MAX);
    mm.assert_invariants();
    // All the way down to demotion.
    for v in (1..FUSE_MAX as u32).rev() {
        mm.remove_tuple_mut(&42, &v);
    }
    assert!(matches!(mm.get(&42), Some(BindingRef::One(&0))));
    mm.assert_invariants();
}

#[test]
fn string_keys_and_values() {
    let mm: AxiomMultiMap<String, String> = [("alpha", "one"), ("alpha", "two"), ("beta", "three")]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    assert_eq!(mm.tuple_count(), 3);
    assert!(mm.contains_tuple(&"alpha".to_string(), &"two".to_string()));
    let pruned = mm.key_removed(&"alpha".to_string());
    assert_eq!(pruned.key_count(), 1);
    mm.assert_invariants();
}

#[test]
fn map_borrowed_queries_and_arc_keys() {
    let m: AxiomMap<Arc<str>, u32> = [("x", 1u32), ("y", 2)]
        .into_iter()
        .map(|(k, v)| (Arc::<str>::from(k), v))
        .collect();
    assert_eq!(m.get("x"), Some(&1));
    assert!(m.contains_key("y"));
    assert!(!m.contains_key("z"));
    assert_eq!(m.removed("x").len(), 1);
}

#[test]
fn iterator_size_hints_are_exact() {
    let mm: AxiomMultiMap<u32, u32> = (0..150u32).map(|i| (i % 50, i)).collect();
    let it = mm.iter();
    assert_eq!(it.size_hint(), (150, Some(150)));
    assert_eq!(it.count(), 150);
    let keys = mm.keys();
    assert_eq!(keys.size_hint(), (50, Some(50)));
    assert_eq!(keys.count(), 50);
    let entries = mm.entries();
    assert_eq!(entries.size_hint(), (50, Some(50)));
    assert_eq!(entries.count(), 50);

    // Partially consumed hints stay exact.
    let mut it = mm.iter();
    for _ in 0..37 {
        it.next();
    }
    assert_eq!(it.size_hint(), (113, Some(113)));

    let set: AxiomSet<u32> = (0..99).collect();
    let mut si = set.iter();
    si.next();
    assert_eq!(si.len(), 98);
}

#[test]
fn debug_representations_are_never_empty() {
    // C-DEBUG-NONEMPTY: even empty collections print something.
    assert_eq!(format!("{:?}", AxiomSet::<u32>::new()), "{}");
    assert_eq!(format!("{:?}", AxiomMap::<u32, u32>::new()), "{}");
    assert_eq!(format!("{:?}", AxiomMultiMap::<u32, u32>::new()), "{}");
    let s: AxiomSet<u32> = std::iter::once(1).collect();
    assert_eq!(format!("{s:?}"), "{1}");
    let mm = AxiomMultiMap::<u32, u32>::new().inserted(1, 2);
    assert_eq!(format!("{mm:?}"), "{(1, 2)}");
}

#[test]
fn default_equals_new() {
    assert_eq!(AxiomSet::<u32>::default(), AxiomSet::new());
    assert_eq!(AxiomMap::<u32, u32>::default(), AxiomMap::new());
    assert_eq!(AxiomMultiMap::<u32, u32>::default(), AxiomMultiMap::new());
}

#[test]
fn values_view_api() {
    let mm = AxiomMultiMap::<u32, u32>::new()
        .inserted(1, 10)
        .inserted(2, 20)
        .inserted(2, 21)
        .inserted(2, 22);
    let one = mm.get(&1).unwrap();
    assert_eq!(one.len(), 1);
    assert!(!one.is_empty());
    assert!(one.contains(&10) && !one.contains(&11));
    assert_eq!(one.iter().copied().collect::<Vec<_>>(), vec![10]);

    let many = mm.get(&2).unwrap();
    assert_eq!(many.len(), 3);
    let mut vs: Vec<u32> = many.iter().copied().collect();
    vs.sort();
    assert_eq!(vs, vec![20, 21, 22]);
}

#[test]
fn extend_and_from_iterator_agree() {
    let tuples: Vec<(u32, u32)> = (0..100u32).map(|i| (i % 20, i)).collect();
    let a: AxiomMultiMap<u32, u32> = tuples.iter().copied().collect();
    let mut b = AxiomMultiMap::new();
    b.extend(tuples);
    assert_eq!(a, b);
}

#[test]
fn large_scale_smoke() {
    // 100k tuples with a heavy-tail key distribution.
    let mut mm: AxiomMultiMap<u32, u32> = AxiomMultiMap::new();
    for i in 0..100_000u32 {
        mm.insert_mut(i % 30_000, i);
    }
    assert_eq!(mm.key_count(), 30_000);
    assert_eq!(mm.tuple_count(), 100_000);
    assert_eq!(mm.iter().count(), 100_000);
    mm.assert_invariants();
}
