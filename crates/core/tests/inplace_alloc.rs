//! Allocation-behaviour gate for the transient in-place editing paths.
//!
//! On a *uniquely-owned* trie, `insert_mut` along an existing spine must be
//! a pure in-place edit: zero `Arc` node copies and zero slot-array
//! rebuilds, hence **zero heap allocations**. This is asserted with the
//! counting global allocator from [`heapmodel::alloc_counter`] — a modeled
//! byte count could not observe it.
//!
//! The whole gate lives in ONE `#[test]` so this binary never runs
//! measurements on concurrent test threads (the counters are process-wide).

use axiom::{AxiomFusedMultiMap, AxiomMap, AxiomMultiMap, AxiomSet};
use heapmodel::alloc_counter::{measure, CountingAlloc};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::system();

#[test]
fn unique_spine_edits_do_not_allocate() {
    // --- AxiomMap: value replacement along an existing spine. -------------
    let mut map: AxiomMap<u32, u32> = (0..1000).map(|i| (i, i)).collect();
    let (_, allocs) = measure(|| {
        for i in 0..1000 {
            map.insert_mut(i, i + 1);
        }
    });
    assert_eq!(
        allocs, 0,
        "in-place value replacement on a uniquely-owned map must not allocate"
    );
    assert_eq!(map.get(&500), Some(&501));

    // No-op inserts (key and value already present) are also free.
    let (_, allocs) = measure(|| {
        for i in 0..1000 {
            map.insert_mut(i, i + 1);
        }
    });
    assert_eq!(allocs, 0, "no-op inserts must not allocate");

    // --- AxiomSet: duplicate inserts on a uniquely-owned set. -------------
    let mut set: AxiomSet<u32> = (0..1000).collect();
    let (grew, allocs) = measure(|| {
        let mut grew = 0;
        for i in 0..1000 {
            if set.insert_mut(i) {
                grew += 1;
            }
        }
        grew
    });
    assert_eq!(grew, 0);
    assert_eq!(allocs, 0, "duplicate set inserts must not allocate");

    // --- AxiomMultiMap: duplicate tuples over 1:1 and 1:n bindings. -------
    let mut mm: AxiomMultiMap<u32, u32> = AxiomMultiMap::new();
    for k in 0..500u32 {
        mm.insert_mut(k, k);
        if k % 2 == 0 {
            mm.insert_mut(k, k + 1); // promoted 1:n binding
        }
    }
    let (_, allocs) = measure(|| {
        for k in 0..500u32 {
            assert!(!mm.insert_mut(k, k));
            if k % 2 == 0 {
                assert!(!mm.insert_mut(k, k + 1));
            }
        }
    });
    assert_eq!(allocs, 0, "duplicate multi-map inserts must not allocate");

    // Same for the fused value-storage strategy (inline boxes probed in
    // place).
    let mut fused: AxiomFusedMultiMap<u32, u32> = AxiomFusedMultiMap::new();
    for k in 0..500u32 {
        fused.insert_mut(k, k);
        fused.insert_mut(k, k + 1);
    }
    let (_, allocs) = measure(|| {
        for k in 0..500u32 {
            assert!(!fused.insert_mut(k, k));
            assert!(!fused.insert_mut(k, k + 1));
        }
    });
    assert_eq!(allocs, 0, "duplicate fused inserts must not allocate");

    // --- Contrast: the persistent path on a *shared* spine must allocate
    // (path copying), proving the counter actually observes this workload.
    let snapshot = map.clone(); // shares every node with `map`
    let (_, allocs) = measure(|| {
        let mut m = snapshot.clone();
        m.insert_mut(0, 99);
        m.len()
    });
    assert!(
        allocs > 0,
        "path-copying on a shared spine must allocate (counter sanity check)"
    );
    assert_eq!(map.get(&0), Some(&1), "original handle untouched");

    // --- Growth along an existing spine allocates only the leaf arrays,
    // never Arc node copies: strictly fewer allocations than trie depth
    // would imply under path copying.
    let mut grow: AxiomMap<u32, u32> = (0..1024).map(|i| (i, i)).collect();
    let (_, allocs) = measure(|| {
        for i in 1024..1056 {
            grow.insert_mut(i, i);
        }
    });
    // Path copying costs ≥ 2 allocations per level (node + slots) at ≥ 2
    // levels for this size; in-place growth pays at most one slot-array
    // rebuild per level actually restructured — bounded by 2 per insert
    // (leaf array + occasional fresh sub-node).
    assert!(
        allocs <= 32 * 3,
        "growth on a unique spine allocated {allocs} times for 32 inserts"
    );
}
