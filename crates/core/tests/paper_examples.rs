//! Paper-example fidelity tests: the trie constructions of Figures 1 and 3
//! rebuilt with keys whose hash prefixes match the figures' mask sequences,
//! asserting the documented category layouts (root histogram, promotions,
//! permutations) through the public API.

use std::hash::{Hash, Hasher};

use axiom::bitmap::Category;
use axiom::{AxiomMultiMap, BindingRef};
use trie_common::bits::mask;
use trie_common::hash::hash32;

/// A key labelled like the figures, whose trie hash is forced through a
/// brute-force-found seed so its 5-bit mask sequence matches the figure.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FigKey {
    label: &'static str,
    seed: u32,
}

impl Hash for FigKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u32(self.seed);
    }
}

/// Finds a hasher seed whose 32-bit trie hash starts with the given 5-bit
/// masks (level 0, then optionally levels 1 and 2).
fn seed_with_masks(l0: u32, l1: Option<u32>, l2: Option<u32>) -> u32 {
    (0u32..)
        .find(|&seed| {
            let h = {
                let mut hasher = trie_common::hash::TrieHasher::new();
                hasher.write_u32(seed);
                let x = std::hash::Hasher::finish(&hasher);
                (x ^ (x >> 32)) as u32
            };
            mask(h, 0) == l0
                && l1.is_none_or(|m| mask(h, 5) == m)
                && l2.is_none_or(|m| mask(h, 10) == m)
        })
        .expect("seed search is over an infinite range")
}

/// The six keys of Figure 1b, with the hash-digit prefixes the figure lists
/// (base-32 digits: A=4,0,0  B=2,0,2  C=2,0,5  D=2,1,0  E=2,4,0  F=7,0,0).
fn figure1_keys() -> [FigKey; 6] {
    [
        ("A", seed_with_masks(4, Some(0), Some(0))),
        ("B", seed_with_masks(2, Some(0), Some(2))),
        ("C", seed_with_masks(2, Some(0), Some(5))),
        ("D", seed_with_masks(2, Some(1), None)),
        ("E", seed_with_masks(2, Some(4), None)),
        ("F", seed_with_masks(7, None, None)),
    ]
    .map(|(label, seed)| FigKey { label, seed })
}

#[test]
fn crafted_keys_match_figure_1b_prefixes() {
    let keys = figure1_keys();
    let expect: [(&str, &[u32]); 6] = [
        ("A", &[4, 0, 0]),
        ("B", &[2, 0, 2]),
        ("C", &[2, 0, 5]),
        ("D", &[2, 1]),
        ("E", &[2, 4]),
        ("F", &[7]),
    ];
    for (key, (label, masks)) in keys.iter().zip(expect) {
        assert_eq!(key.label, label);
        let h = hash32(key);
        for (level, &m) in masks.iter().enumerate() {
            assert_eq!(
                mask(h, 5 * level as u32),
                m,
                "key {label} level {level} mask"
            );
        }
    }
}

#[test]
fn figure_3_construction_shapes() {
    let [a, b, c, d, e, f] = figure1_keys();

    // Figure 3a: A ↦ 1, B ↦ 2 — two inlined 1:1 tuples at the root
    // (masks 4 and 2), nothing else.
    let mm = AxiomMultiMap::<FigKey, i32>::new()
        .inserted(a.clone(), 1)
        .inserted(b.clone(), 2);
    let hist = mm.root_histogram().unwrap();
    assert_eq!(
        hist[Category::Cat1 as usize],
        2,
        "fig 3a: two CAT1 branches"
    );
    assert_eq!(hist[Category::Node as usize], 0);

    // Figure 3b: adding C ↦ 3 clashes with B on prefix 2 — "A ↦ 1 swaps
    // place with a newly extended sub-tree": root now holds one CAT1 (A)
    // and one NODE (prefix 2).
    let mm = mm.inserted(c.clone(), 3);
    let hist = mm.root_histogram().unwrap();
    assert_eq!(hist[Category::Cat1 as usize], 1, "fig 3b: A stays inlined");
    assert_eq!(hist[Category::Node as usize], 1, "fig 3b: B,C sub-tree");
    assert_eq!(mm.key_count(), 3);

    // Figure 3c: D ↦ 4 and E ↦ 5 join the prefix-2 sub-tree.
    let mm = mm.inserted(d.clone(), 4).inserted(e.clone(), 5);
    let hist = mm.root_histogram().unwrap();
    assert_eq!(hist[Category::Cat1 as usize], 1);
    assert_eq!(hist[Category::Node as usize], 1);
    assert_eq!(mm.key_count(), 5);
    assert_eq!(mm.tuple_count(), 5);

    // Figure 3d: D ↦ -4 promotes D to a 1:n mapping (inside the sub-tree),
    // and F ↦ 6 adds a second root payload at mask 7 — the root now matches
    // the Listing-3 worked example: CAT1 at masks 4 and 9^H7, one NODE.
    let mm = mm.inserted(d.clone(), -4).inserted(f.clone(), 6);
    let hist = mm.root_histogram().unwrap();
    assert_eq!(hist[Category::Cat1 as usize], 2, "fig 3d: A and F inlined");
    assert_eq!(
        hist[Category::Cat2 as usize],
        0,
        "1:n entry is nested deeper"
    );
    assert_eq!(hist[Category::Node as usize], 1);
    assert_eq!(mm.key_count(), 6);
    assert_eq!(mm.tuple_count(), 7);

    // D's binding is now a nested set {4, -4}.
    match mm.get(&d) {
        Some(BindingRef::Many(bag)) => {
            let mut vs: Vec<i32> = axiom::ValueBag::iter(bag).copied().collect();
            vs.sort();
            assert_eq!(vs, vec![-4, 4]);
        }
        other => panic!("fig 3d: D must be 1:n, got {other:?}"),
    }
    // Everything else still 1:1.
    for (key, val) in [(&a, 1), (&b, 2), (&c, 3), (&e, 5), (&f, 6)] {
        assert!(matches!(mm.get(key), Some(BindingRef::One(v)) if *v == val));
    }
    mm.assert_invariants();

    // Deleting D ↦ -4 demotes back to the Figure 3c shape.
    let back = mm.tuple_removed(&d, &-4);
    assert!(matches!(back.get(&d), Some(BindingRef::One(&4))));
    assert_eq!(back.tuple_count(), 6);
    back.assert_invariants();
}

#[test]
fn root_histogram_reflects_skew() {
    // A mostly-1:1 relation with a few 1:n exceptions at the root level.
    let mut mm = AxiomMultiMap::<u32, u32>::new();
    for k in 0..20u32 {
        mm.insert_mut(k, 0);
    }
    let before = mm.root_histogram().unwrap();
    let payload_before = before[1] + before[3];
    assert!(payload_before > 0);
    // Promote a handful of keys.
    for k in 0..5u32 {
        mm.insert_mut(k, 1);
    }
    let after = mm.root_histogram().unwrap();
    // Total occupied branches unchanged; some CAT1 became CAT2 (those keys
    // stored at the root) — the histogram sums stay consistent.
    assert_eq!(
        before[1] + before[2] + before[3],
        after[1] + after[2] + after[3]
    );
    assert_eq!(before[0], after[0]);
}
