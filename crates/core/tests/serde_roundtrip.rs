//! Round-trip tests for the optional `serde` feature: every collection
//! serializes as a flat tuple/element sequence and rebuilds to an equal
//! structure, independent of trie-internal ordering and of the value-bag
//! strategy.
#![cfg(feature = "serde")]

use axiom::{AxiomFusedMultiMap, AxiomMap, AxiomMultiMap, AxiomSet};

#[test]
fn set_roundtrips_through_json() {
    let set: AxiomSet<u32> = (0..500).collect();
    let json = serde_json::to_string(&set).unwrap();
    let back: AxiomSet<u32> = serde_json::from_str(&json).unwrap();
    assert_eq!(set, back);
    back.assert_invariants();
}

#[test]
fn empty_collections_roundtrip() {
    let set: AxiomSet<u32> = AxiomSet::new();
    let back: AxiomSet<u32> = serde_json::from_str(&serde_json::to_string(&set).unwrap()).unwrap();
    assert!(back.is_empty());

    let mm: AxiomMultiMap<u32, u32> = AxiomMultiMap::new();
    let back: AxiomMultiMap<u32, u32> =
        serde_json::from_str(&serde_json::to_string(&mm).unwrap()).unwrap();
    assert!(back.is_empty());
}

#[test]
fn map_roundtrips_through_json() {
    let map: AxiomMap<String, u32> = (0..100).map(|i| (format!("k{i}"), i)).collect();
    let json = serde_json::to_string(&map).unwrap();
    let back: AxiomMap<String, u32> = serde_json::from_str(&json).unwrap();
    assert_eq!(map, back);
    back.assert_invariants();
}

#[test]
fn multimap_roundtrips_preserving_multiplicities() {
    let mm: AxiomMultiMap<u32, u32> = (0..300u32).map(|i| (i % 60, i)).collect();
    let json = serde_json::to_string(&mm).unwrap();
    let back: AxiomMultiMap<u32, u32> = serde_json::from_str(&json).unwrap();
    assert_eq!(mm, back);
    assert_eq!(back.key_count(), 60);
    assert_eq!(back.tuple_count(), 300);
    back.assert_invariants();
}

#[test]
fn wire_format_is_bag_strategy_independent() {
    // A nested multi-map's JSON deserializes into the fused variant and
    // vice versa: the format is the flattened tuple sequence.
    let nested: AxiomMultiMap<u32, u32> = (0..200u32).map(|i| (i % 25, i)).collect();
    let json = serde_json::to_string(&nested).unwrap();
    let fused: AxiomFusedMultiMap<u32, u32> = serde_json::from_str(&json).unwrap();
    assert_eq!(fused.tuple_count(), nested.tuple_count());
    assert_eq!(fused.key_count(), nested.key_count());
    for (k, v) in nested.iter() {
        assert!(fused.contains_tuple(k, v));
    }
    // And back again.
    let json2 = serde_json::to_string(&fused).unwrap();
    let again: AxiomMultiMap<u32, u32> = serde_json::from_str(&json2).unwrap();
    assert_eq!(again, nested);
}

#[test]
fn serialized_form_is_a_plain_sequence() {
    let set: AxiomSet<u32> = [5, 6].into_iter().collect();
    let value: serde_json::Value = serde_json::to_value(&set).unwrap();
    let arr = value.as_array().expect("sets serialize as arrays");
    assert_eq!(arr.len(), 2);

    let mm: AxiomMultiMap<u32, u32> = [(1, 2), (1, 3)].into_iter().collect();
    let value: serde_json::Value = serde_json::to_value(&mm).unwrap();
    let arr = value
        .as_array()
        .expect("multi-maps serialize as tuple arrays");
    assert_eq!(arr.len(), 2);
    assert!(arr
        .iter()
        .all(|t| t.as_array().is_some_and(|p| p.len() == 2)));
}
