//! Snapshot persistence ([`SnapshotWrite`] / [`SnapshotRead`]) for the
//! AXIOM collections.
//!
//! A snapshot stores the flat element sequence only — trie shape, slot
//! categories and the value-bag strategy stay implementation-private —
//! and restore rebuilds through the transient bulk path, so the decoded
//! trie is canonical and `==` to the source. `AxiomMultiMap` is generic
//! over its bag, which means a snapshot written with one bag strategy
//! restores under another (or under a different multi-map entirely).

use std::hash::Hash;

use serde::{Deserialize, Serialize};
use trie_common::ops::{MapOps, MultiMapOps, SetOps};
use trie_common::snapshot::{self, Kind, SnapshotError, SnapshotRead, SnapshotWrite};

use crate::bag::ValueBag;
use crate::{AxiomMap, AxiomMultiMap, AxiomSet};

impl<T> SnapshotWrite for AxiomSet<T>
where
    T: Serialize + Clone + Eq + Hash,
{
    const KIND: Kind = Kind::Set;

    fn write_snapshot(&self, out: &mut Vec<u8>) -> Result<(), SnapshotError> {
        snapshot::write_collection(Kind::Set, SetOps::iter(self), out)
    }
}

impl<T> SnapshotRead for AxiomSet<T>
where
    T: for<'de> Deserialize<'de> + Clone + Eq + Hash,
{
    fn read_snapshot(bytes: &[u8]) -> Result<Self, SnapshotError> {
        snapshot::read_collection(Kind::Set, bytes)
    }
}

impl<K, V> SnapshotWrite for AxiomMap<K, V>
where
    K: Serialize + Clone + Eq + Hash,
    V: Serialize + Clone + PartialEq,
{
    const KIND: Kind = Kind::Map;

    fn write_snapshot(&self, out: &mut Vec<u8>) -> Result<(), SnapshotError> {
        snapshot::write_collection(Kind::Map, MapOps::entries(self), out)
    }
}

impl<K, V> SnapshotRead for AxiomMap<K, V>
where
    K: for<'de> Deserialize<'de> + Clone + Eq + Hash,
    V: for<'de> Deserialize<'de> + Clone + PartialEq,
{
    fn read_snapshot(bytes: &[u8]) -> Result<Self, SnapshotError> {
        snapshot::read_collection(Kind::Map, bytes)
    }
}

impl<K, V, B> SnapshotWrite for AxiomMultiMap<K, V, B>
where
    K: Serialize + Clone + Eq + Hash,
    V: Serialize + Clone + Eq + Hash,
    B: ValueBag<V>,
{
    const KIND: Kind = Kind::MultiMap;

    fn write_snapshot(&self, out: &mut Vec<u8>) -> Result<(), SnapshotError> {
        snapshot::write_collection(Kind::MultiMap, MultiMapOps::tuples(self), out)
    }
}

impl<K, V, B> SnapshotRead for AxiomMultiMap<K, V, B>
where
    K: for<'de> Deserialize<'de> + Clone + Eq + Hash,
    V: for<'de> Deserialize<'de> + Clone + Eq + Hash,
    B: ValueBag<V>,
{
    fn read_snapshot(bytes: &[u8]) -> Result<Self, SnapshotError> {
        snapshot::read_collection(Kind::MultiMap, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AxiomFusedMultiMap;

    #[test]
    fn axiom_collections_roundtrip() {
        let set: AxiomSet<u32> = (0..500).collect();
        assert_eq!(
            AxiomSet::read_snapshot(&set.snapshot_bytes().unwrap()).unwrap(),
            set
        );

        let map: AxiomMap<u32, String> = (0..300).map(|i| (i, format!("v{i}"))).collect();
        assert_eq!(
            AxiomMap::read_snapshot(&map.snapshot_bytes().unwrap()).unwrap(),
            map
        );

        let mm: AxiomMultiMap<u32, u32> = (0..600).map(|i| (i / 3, i)).collect();
        assert_eq!(
            AxiomMultiMap::read_snapshot(&mm.snapshot_bytes().unwrap()).unwrap(),
            mm
        );
    }

    #[test]
    fn snapshots_transfer_across_bag_strategies() {
        let mm: AxiomMultiMap<u32, u32> = (0..200).map(|i| (i / 4, i)).collect();
        let bytes = mm.snapshot_bytes().unwrap();
        let fused: AxiomFusedMultiMap<u32, u32> =
            AxiomFusedMultiMap::read_snapshot(&bytes).unwrap();
        assert_eq!(fused.tuple_count(), mm.tuple_count());
        assert_eq!(fused.key_count(), mm.key_count());
        for (k, v) in mm.iter() {
            assert!(fused.contains_tuple(k, v));
        }
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let set: AxiomSet<u32> = (0..10).collect();
        let bytes = set.snapshot_bytes().unwrap();
        assert!(matches!(
            AxiomMap::<u32, u32>::read_snapshot(&bytes),
            Err(SnapshotError::WrongKind { .. })
        ));
    }
}
