//! A persistent hash map built on the AXIOM node encoding.
//!
//! [`AxiomMap`] is the paper's §5 subject: AXIOM instantiated with 100 % `1:1`
//! mappings (categories `EMPTY`, `CAT1` = key/value pair, `NODE`), measured
//! against the special-purpose CHAMP map to isolate the cost of generalizing
//! to type-heterogeneity (2-bit tag decoding and bitmap filtering) and the
//! benefit of grouped slots for iteration.
//!
//! # Examples
//!
//! ```
//! use axiom::AxiomMap;
//!
//! let m: AxiomMap<u32, &str> = AxiomMap::new().inserted(1, "one").inserted(2, "two");
//! assert_eq!(m.get(&1), Some(&"one"));
//! let m2 = m.inserted(1, "uno"); // replaces; `m` is unchanged
//! assert_eq!(m.get(&1), Some(&"one"));
//! assert_eq!(m2.get(&1), Some(&"uno"));
//! ```

use std::borrow::Borrow;
use std::hash::Hash;
use std::sync::Arc;

use trie_common::bits::{hash_exhausted, mask, next_shift};
use trie_common::hash::hash32;

use crate::bitmap::{Category, SlotBitmap};
use crate::slots::{
    inserted_at, inserted_at_owned, migrate_map, migrated, removed_at, removed_at_owned,
    replaced_at,
};

/// One physical slot of a map node.
#[derive(Debug, Clone)]
pub(crate) enum Slot<K, V> {
    /// `CAT1`: an inlined key/value pair.
    Entry(K, V),
    /// `NODE`: a shared sub-trie.
    Child(Arc<Node<K, V>>),
}

/// A compressed trie node: bitmap plus dense permuted slots
/// (`[entries… | children…]`).
#[derive(Debug, Clone)]
pub(crate) struct BitmapNode<K, V> {
    pub(crate) bitmap: SlotBitmap,
    pub(crate) slots: Box<[Slot<K, V>]>,
}

/// Hash-collision overflow node (below the deepest bitmap level).
#[derive(Debug, Clone)]
pub(crate) struct CollisionNode<K, V> {
    pub(crate) hash: u32,
    pub(crate) entries: Vec<(K, V)>,
}

/// A trie node.
#[derive(Debug, Clone)]
pub(crate) enum Node<K, V> {
    Bitmap(BitmapNode<K, V>),
    Collision(CollisionNode<K, V>),
}

/// Node-level insertion outcome; distinguishes growth from replacement for
/// size bookkeeping.
pub(crate) enum Inserted<K, V> {
    /// Key present with an equal value — structurally a no-op.
    Unchanged,
    /// Key present, value replaced.
    Replaced(Node<K, V>),
    /// A new key was added.
    Added(Node<K, V>),
}

/// Node-level removal outcome (canonicalizing, like the set's).
pub(crate) enum Removed<K, V> {
    NotFound,
    Node(Node<K, V>),
    /// Sub-tree collapsed to a single entry: inline into the parent.
    Single(K, V),
}

/// In-place insertion outcome: the node is edited where it stands, so only
/// the bookkeeping flag travels.
pub(crate) enum EditInserted {
    Unchanged,
    Replaced,
    Added,
}

/// In-place removal outcome.
pub(crate) enum EditRemoved<K, V> {
    NotFound,
    Removed,
    /// Sub-tree collapsed to a single entry (the node is consumed; the
    /// parent drops it and inlines the survivor).
    Single(K, V),
}

impl<K: Clone + Eq + Hash, V: Clone + PartialEq> Node<K, V> {
    fn empty() -> Node<K, V> {
        Node::Bitmap(BitmapNode {
            bitmap: SlotBitmap::EMPTY,
            slots: Box::new([]),
        })
    }

    fn pair(h1: u32, k1: K, v1: V, h2: u32, k2: K, v2: V, shift: u32) -> Node<K, V> {
        if hash_exhausted(shift) {
            debug_assert_eq!(h1, h2);
            return Node::Collision(CollisionNode {
                hash: h1,
                entries: vec![(k1, v1), (k2, v2)],
            });
        }
        let m1 = mask(h1, shift);
        let m2 = mask(h2, shift);
        if m1 == m2 {
            let child = Node::pair(h1, k1, v1, h2, k2, v2, next_shift(shift));
            Node::Bitmap(BitmapNode {
                bitmap: SlotBitmap::EMPTY.with(m1, Category::Node),
                slots: Box::new([Slot::Child(Arc::new(child))]),
            })
        } else {
            let bitmap = SlotBitmap::EMPTY
                .with(m1, Category::Cat1)
                .with(m2, Category::Cat1);
            let slots: Box<[Slot<K, V>]> = if m1 < m2 {
                Box::new([Slot::Entry(k1, v1), Slot::Entry(k2, v2)])
            } else {
                Box::new([Slot::Entry(k2, v2), Slot::Entry(k1, v1)])
            };
            Node::Bitmap(BitmapNode { bitmap, slots })
        }
    }

    fn get<Q>(&self, hash: u32, shift: u32, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Eq + ?Sized,
    {
        match self {
            Node::Collision(c) => c
                .entries
                .iter()
                .find(|(k, _)| k.borrow() == key)
                .map(|(_, v)| v),
            Node::Bitmap(b) => {
                // Fused dispatch: category and slot index from one pass.
                match b.bitmap.locate(mask(hash, shift)) {
                    (Category::Empty, _) => None,
                    (Category::Cat1, idx) => match &b.slots[idx] {
                        Slot::Entry(k, v) if k.borrow() == key => Some(v),
                        Slot::Entry(..) => None,
                        Slot::Child(_) => unreachable!("bitmap says CAT1"),
                    },
                    (Category::Node, idx) => match &b.slots[idx] {
                        Slot::Child(child) => child.get(hash, next_shift(shift), key),
                        Slot::Entry(..) => unreachable!("bitmap says NODE"),
                    },
                    (Category::Cat2, _) => unreachable!("maps never use CAT2"),
                }
            }
        }
    }

    fn inserted(&self, hash: u32, shift: u32, key: &K, value: &V) -> Inserted<K, V> {
        match self {
            Node::Collision(c) => {
                debug_assert_eq!(c.hash, hash);
                match c.entries.iter().position(|(k, _)| k == key) {
                    Some(pos) => {
                        if c.entries[pos].1 == *value {
                            return Inserted::Unchanged;
                        }
                        let mut entries = c.entries.clone();
                        entries[pos].1 = value.clone();
                        Inserted::Replaced(Node::Collision(CollisionNode {
                            hash: c.hash,
                            entries,
                        }))
                    }
                    None => {
                        let mut entries = c.entries.clone();
                        entries.push((key.clone(), value.clone()));
                        Inserted::Added(Node::Collision(CollisionNode {
                            hash: c.hash,
                            entries,
                        }))
                    }
                }
            }
            Node::Bitmap(b) => {
                let m = mask(hash, shift);
                match b.bitmap.get(m) {
                    Category::Empty => {
                        let bitmap = b.bitmap.with(m, Category::Cat1);
                        let idx = bitmap.slot_index(Category::Cat1, m);
                        Inserted::Added(Node::Bitmap(BitmapNode {
                            bitmap,
                            slots: inserted_at(
                                &b.slots,
                                idx,
                                Slot::Entry(key.clone(), value.clone()),
                            ),
                        }))
                    }
                    Category::Cat1 => {
                        let idx = b.bitmap.slot_index(Category::Cat1, m);
                        let (ek, ev) = match &b.slots[idx] {
                            Slot::Entry(k, v) => (k, v),
                            Slot::Child(_) => unreachable!("bitmap says CAT1"),
                        };
                        if ek == key {
                            if ev == value {
                                return Inserted::Unchanged;
                            }
                            return Inserted::Replaced(Node::Bitmap(BitmapNode {
                                bitmap: b.bitmap,
                                slots: replaced_at(
                                    &b.slots,
                                    idx,
                                    Slot::Entry(key.clone(), value.clone()),
                                ),
                            }));
                        }
                        let child = Node::pair(
                            hash32(ek),
                            ek.clone(),
                            ev.clone(),
                            hash,
                            key.clone(),
                            value.clone(),
                            next_shift(shift),
                        );
                        let bitmap = b.bitmap.with(m, Category::Node);
                        let to = bitmap.slot_index(Category::Node, m);
                        Inserted::Added(Node::Bitmap(BitmapNode {
                            bitmap,
                            slots: migrated(&b.slots, idx, to, Slot::Child(Arc::new(child))),
                        }))
                    }
                    Category::Node => {
                        let idx = b.bitmap.slot_index(Category::Node, m);
                        let child = match &b.slots[idx] {
                            Slot::Child(c) => c,
                            Slot::Entry(..) => unreachable!("bitmap says NODE"),
                        };
                        let rebuild = |n: Node<K, V>| {
                            Node::Bitmap(BitmapNode {
                                bitmap: b.bitmap,
                                slots: replaced_at(&b.slots, idx, Slot::Child(Arc::new(n))),
                            })
                        };
                        match child.inserted(hash, next_shift(shift), key, value) {
                            Inserted::Unchanged => Inserted::Unchanged,
                            Inserted::Replaced(n) => Inserted::Replaced(rebuild(n)),
                            Inserted::Added(n) => Inserted::Added(rebuild(n)),
                        }
                    }
                    Category::Cat2 => unreachable!("maps never use CAT2"),
                }
            }
        }
    }

    /// In-place insert driven by `Arc` uniqueness: a uniquely-owned node is
    /// edited directly, a shared node falls back to the persistent path copy
    /// for its whole subtree. Takes `key`/`value` by ownership so the common
    /// paths move them into their final slot without cloning.
    fn insert_in_place(
        this: &mut Arc<Node<K, V>>,
        hash: u32,
        shift: u32,
        key: K,
        value: V,
    ) -> EditInserted {
        match Arc::get_mut(this) {
            Some(Node::Collision(c)) => {
                debug_assert_eq!(c.hash, hash);
                match c.entries.iter().position(|(k, _)| *k == key) {
                    Some(pos) => {
                        if c.entries[pos].1 == value {
                            return EditInserted::Unchanged;
                        }
                        c.entries[pos].1 = value;
                        EditInserted::Replaced
                    }
                    None => {
                        c.entries.push((key, value));
                        EditInserted::Added
                    }
                }
            }
            Some(Node::Bitmap(b)) => {
                let m = mask(hash, shift);
                let (cat, idx) = b.bitmap.locate(m);
                match cat {
                    Category::Empty => {
                        b.bitmap = b.bitmap.with(m, Category::Cat1);
                        let idx = b.bitmap.slot_index(Category::Cat1, m);
                        b.slots = inserted_at_owned(
                            std::mem::take(&mut b.slots),
                            idx,
                            Slot::Entry(key, value),
                        );
                        EditInserted::Added
                    }
                    Category::Cat1 => {
                        let (ek, ev) = match &b.slots[idx] {
                            Slot::Entry(k, v) => (k, v),
                            Slot::Child(_) => unreachable!("bitmap says CAT1"),
                        };
                        if *ek == key {
                            if *ev == value {
                                return EditInserted::Unchanged;
                            }
                            // Replace in place: zero allocations, zero clones.
                            b.slots[idx] = Slot::Entry(key, value);
                            return EditInserted::Replaced;
                        }
                        // Prefix clash: the slot migrates CAT1 → NODE in
                        // place; both entries move into the fresh sub-trie.
                        let existing_hash = hash32(ek);
                        b.bitmap = b.bitmap.with(m, Category::Node);
                        let to = b.bitmap.slot_index(Category::Node, m);
                        migrate_map(&mut b.slots, idx, to, |slot| {
                            let Slot::Entry(ek, ev) = slot else {
                                unreachable!("bitmap says CAT1")
                            };
                            Slot::Child(Arc::new(Node::pair(
                                existing_hash,
                                ek,
                                ev,
                                hash,
                                key,
                                value,
                                next_shift(shift),
                            )))
                        });
                        EditInserted::Added
                    }
                    Category::Node => {
                        let Slot::Child(child) = &mut b.slots[idx] else {
                            unreachable!("bitmap says NODE")
                        };
                        Node::insert_in_place(child, hash, next_shift(shift), key, value)
                    }
                    Category::Cat2 => unreachable!("maps never use CAT2"),
                }
            }
            None => match this.inserted(hash, shift, &key, &value) {
                Inserted::Unchanged => EditInserted::Unchanged,
                Inserted::Replaced(n) => {
                    *this = Arc::new(n);
                    EditInserted::Replaced
                }
                Inserted::Added(n) => {
                    *this = Arc::new(n);
                    EditInserted::Added
                }
            },
        }
    }

    /// In-place removal with the same ownership discipline and the same
    /// canonicalization as [`Node::removed`].
    fn remove_in_place<Q>(
        this: &mut Arc<Node<K, V>>,
        hash: u32,
        shift: u32,
        key: &Q,
    ) -> EditRemoved<K, V>
    where
        K: Borrow<Q>,
        Q: Eq + ?Sized,
    {
        match Arc::get_mut(this) {
            Some(Node::Collision(c)) => {
                let Some(pos) = c.entries.iter().position(|(k, _)| k.borrow() == key) else {
                    return EditRemoved::NotFound;
                };
                if c.entries.len() == 2 {
                    let (k, v) = c.entries.swap_remove(1 - pos);
                    return EditRemoved::Single(k, v);
                }
                c.entries.swap_remove(pos);
                EditRemoved::Removed
            }
            Some(Node::Bitmap(b)) => {
                let m = mask(hash, shift);
                let (cat, idx) = b.bitmap.locate(m);
                match cat {
                    Category::Empty => EditRemoved::NotFound,
                    Category::Cat1 => {
                        let matches = match &b.slots[idx] {
                            Slot::Entry(k, _) => k.borrow() == key,
                            Slot::Child(_) => unreachable!("bitmap says CAT1"),
                        };
                        if !matches {
                            return EditRemoved::NotFound;
                        }
                        let bitmap = b.bitmap.with(m, Category::Empty);
                        if shift > 0 && bitmap.payload_arity() == 1 && bitmap.node_arity() == 0 {
                            debug_assert_eq!(b.slots.len(), 2);
                            let mut slots = std::mem::take(&mut b.slots).into_vec();
                            let Slot::Entry(k, v) = slots.swap_remove(1 - idx) else {
                                unreachable!("both slots are payload")
                            };
                            return EditRemoved::Single(k, v);
                        }
                        b.bitmap = bitmap;
                        b.slots = removed_at_owned(std::mem::take(&mut b.slots), idx);
                        EditRemoved::Removed
                    }
                    Category::Node => {
                        let Slot::Child(child) = &mut b.slots[idx] else {
                            unreachable!("bitmap says NODE")
                        };
                        match Node::remove_in_place(child, hash, next_shift(shift), key) {
                            EditRemoved::NotFound => EditRemoved::NotFound,
                            EditRemoved::Removed => EditRemoved::Removed,
                            EditRemoved::Single(k, v) => {
                                if shift > 0
                                    && b.bitmap.payload_arity() == 0
                                    && b.bitmap.node_arity() == 1
                                {
                                    return EditRemoved::Single(k, v);
                                }
                                b.bitmap = b.bitmap.with(m, Category::Cat1);
                                let to = b.bitmap.slot_index(Category::Cat1, m);
                                migrate_map(&mut b.slots, idx, to, |_child| Slot::Entry(k, v));
                                EditRemoved::Removed
                            }
                        }
                    }
                    Category::Cat2 => unreachable!("maps never use CAT2"),
                }
            }
            None => match this.removed(hash, shift, key) {
                Removed::NotFound => EditRemoved::NotFound,
                Removed::Node(n) => {
                    *this = Arc::new(n);
                    EditRemoved::Removed
                }
                Removed::Single(k, v) => EditRemoved::Single(k, v),
            },
        }
    }

    fn removed<Q>(&self, hash: u32, shift: u32, key: &Q) -> Removed<K, V>
    where
        K: Borrow<Q>,
        Q: Eq + ?Sized,
    {
        match self {
            Node::Collision(c) => {
                let Some(pos) = c.entries.iter().position(|(k, _)| k.borrow() == key) else {
                    return Removed::NotFound;
                };
                if c.entries.len() == 2 {
                    let (k, v) = c.entries[1 - pos].clone();
                    return Removed::Single(k, v);
                }
                let mut entries = c.entries.clone();
                entries.remove(pos);
                Removed::Node(Node::Collision(CollisionNode {
                    hash: c.hash,
                    entries,
                }))
            }
            Node::Bitmap(b) => {
                let m = mask(hash, shift);
                match b.bitmap.get(m) {
                    Category::Empty => Removed::NotFound,
                    Category::Cat1 => {
                        let idx = b.bitmap.slot_index(Category::Cat1, m);
                        let matches = match &b.slots[idx] {
                            Slot::Entry(k, _) => k.borrow() == key,
                            Slot::Child(_) => unreachable!("bitmap says CAT1"),
                        };
                        if !matches {
                            return Removed::NotFound;
                        }
                        let bitmap = b.bitmap.with(m, Category::Empty);
                        if shift > 0 && bitmap.payload_arity() == 1 && bitmap.node_arity() == 0 {
                            debug_assert_eq!(b.slots.len(), 2);
                            let (k, v) = match &b.slots[1 - idx] {
                                Slot::Entry(k, v) => (k.clone(), v.clone()),
                                Slot::Child(_) => unreachable!("both slots are payload"),
                            };
                            return Removed::Single(k, v);
                        }
                        Removed::Node(Node::Bitmap(BitmapNode {
                            bitmap,
                            slots: removed_at(&b.slots, idx),
                        }))
                    }
                    Category::Node => {
                        let idx = b.bitmap.slot_index(Category::Node, m);
                        let child = match &b.slots[idx] {
                            Slot::Child(c) => c,
                            Slot::Entry(..) => unreachable!("bitmap says NODE"),
                        };
                        match child.removed(hash, next_shift(shift), key) {
                            Removed::NotFound => Removed::NotFound,
                            Removed::Node(n) => Removed::Node(Node::Bitmap(BitmapNode {
                                bitmap: b.bitmap,
                                slots: replaced_at(&b.slots, idx, Slot::Child(Arc::new(n))),
                            })),
                            Removed::Single(k, v) => {
                                if shift > 0
                                    && b.bitmap.payload_arity() == 0
                                    && b.bitmap.node_arity() == 1
                                {
                                    return Removed::Single(k, v);
                                }
                                let bitmap = b.bitmap.with(m, Category::Cat1);
                                let to = bitmap.slot_index(Category::Cat1, m);
                                Removed::Node(Node::Bitmap(BitmapNode {
                                    bitmap,
                                    slots: migrated(&b.slots, idx, to, Slot::Entry(k, v)),
                                }))
                            }
                        }
                    }
                    Category::Cat2 => unreachable!("maps never use CAT2"),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Structural diff: a lockstep walk that skips pointer-shared subtrees.
// Canonical form makes `Arc::ptr_eq` a sound subtree-equivalence test, so
// both the walk and the emitted diff are O(changed). The derived algebra in
// `trie_common::ops::MapMergeOps` routes `merged`/`intersect`/`difference`
// through this walk.
// ---------------------------------------------------------------------------

/// What one lockstep walk found at a mask position.
enum At<'a, K, V> {
    Nothing,
    Entry(&'a K, &'a V),
    Sub(&'a Arc<Node<K, V>>),
}

fn at<'a, K, V>(b: &'a BitmapNode<K, V>, m: u32) -> At<'a, K, V> {
    match b.bitmap.locate(m) {
        (Category::Empty, _) => At::Nothing,
        (Category::Cat1, idx) => match &b.slots[idx] {
            Slot::Entry(k, v) => At::Entry(k, v),
            Slot::Child(_) => unreachable!("bitmap says CAT1"),
        },
        (Category::Node, idx) => match &b.slots[idx] {
            Slot::Child(c) => At::Sub(c),
            Slot::Entry(..) => unreachable!("bitmap says NODE"),
        },
        (Category::Cat2, _) => unreachable!("maps never use CAT2"),
    }
}

fn for_each_entry_node<K, V>(node: &Node<K, V>, f: &mut impl FnMut(&K, &V)) {
    match node {
        Node::Collision(c) => c.entries.iter().for_each(|(k, v)| f(k, v)),
        Node::Bitmap(b) => {
            for s in &b.slots {
                match s {
                    Slot::Entry(k, v) => f(k, v),
                    Slot::Child(c) => for_each_entry_node(c, f),
                }
            }
        }
    }
}

/// Lockstep diff (`a` old, `b` new): pointer-identical subtrees emit
/// nothing; a surviving key with a different value lands in `changed`.
fn diff_nodes<K: Clone + Eq + Hash, V: Clone + PartialEq>(
    a: &Node<K, V>,
    b: &Node<K, V>,
    shift: u32,
    out: &mut trie_common::ops::MapDiff<K, V>,
) {
    match (a, b) {
        (Node::Collision(x), Node::Collision(y)) => {
            debug_assert_eq!(x.hash, y.hash, "lockstep paths fix the full hash");
            for (k, v) in &x.entries {
                match y.entries.iter().find(|(yk, _)| yk == k) {
                    None => out.removed.push((k.clone(), v.clone())),
                    Some((_, yv)) if yv != v => {
                        out.changed.push((k.clone(), v.clone(), yv.clone()));
                    }
                    Some(_) => {}
                }
            }
            for (k, v) in &y.entries {
                if !x.entries.iter().any(|(xk, _)| xk == k) {
                    out.added.push((k.clone(), v.clone()));
                }
            }
        }
        (Node::Bitmap(x), Node::Bitmap(y)) => {
            for m in 0..32u32 {
                match (at(x, m), at(y, m)) {
                    (At::Nothing, At::Nothing) => {}
                    (At::Entry(k, v), At::Nothing) => out.removed.push((k.clone(), v.clone())),
                    (At::Nothing, At::Entry(k, v)) => out.added.push((k.clone(), v.clone())),
                    (At::Sub(ac), At::Nothing) => {
                        for_each_entry_node(ac, &mut |k, v| {
                            out.removed.push((k.clone(), v.clone()));
                        });
                    }
                    (At::Nothing, At::Sub(bc)) => {
                        for_each_entry_node(bc, &mut |k, v| {
                            out.added.push((k.clone(), v.clone()));
                        });
                    }
                    (At::Entry(ka, va), At::Entry(kb, vb)) => {
                        if ka == kb {
                            if va != vb {
                                out.changed.push((ka.clone(), va.clone(), vb.clone()));
                            }
                        } else {
                            out.removed.push((ka.clone(), va.clone()));
                            out.added.push((kb.clone(), vb.clone()));
                        }
                    }
                    (At::Entry(ka, va), At::Sub(bc)) => {
                        match bc.get(hash32(ka), next_shift(shift), ka) {
                            None => out.removed.push((ka.clone(), va.clone())),
                            Some(vb) if vb != va => {
                                out.changed.push((ka.clone(), va.clone(), vb.clone()));
                            }
                            Some(_) => {}
                        }
                        for_each_entry_node(bc, &mut |k, v| {
                            if k != ka {
                                out.added.push((k.clone(), v.clone()));
                            }
                        });
                    }
                    (At::Sub(ac), At::Entry(kb, vb)) => {
                        match ac.get(hash32(kb), next_shift(shift), kb) {
                            None => out.added.push((kb.clone(), vb.clone())),
                            Some(va) if va != vb => {
                                out.changed.push((kb.clone(), va.clone(), vb.clone()));
                            }
                            Some(_) => {}
                        }
                        for_each_entry_node(ac, &mut |k, v| {
                            if k != kb {
                                out.removed.push((k.clone(), v.clone()));
                            }
                        });
                    }
                    (At::Sub(ac), At::Sub(bc)) => {
                        if !Arc::ptr_eq(ac, bc) {
                            diff_nodes(ac, bc, next_shift(shift), out);
                        }
                    }
                }
            }
        }
        _ => unreachable!("canonical tries align node kinds at equal depth"),
    }
}

/// A persistent (immutable, structurally shared) hash map on the AXIOM
/// encoding.
///
/// See the [module documentation](self) for its role in the evaluation.
pub struct AxiomMap<K, V> {
    pub(crate) root: Arc<Node<K, V>>,
    pub(crate) len: usize,
}

impl<K, V> Clone for AxiomMap<K, V> {
    fn clone(&self) -> Self {
        AxiomMap {
            root: Arc::clone(&self.root),
            len: self.len,
        }
    }
}

impl<K: Clone + Eq + Hash, V: Clone + PartialEq> AxiomMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        AxiomMap {
            root: Arc::new(Node::empty()),
            len: 0,
        }
    }

    /// Number of key/value entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks up the value bound to `key`.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.root.get(hash32(key), 0, key)
    }

    /// True if `key` has a binding.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.get(key).is_some()
    }

    /// Returns a map with `key` bound to `value` (replacing any previous
    /// binding); `self` is unchanged.
    pub fn inserted(&self, key: K, value: V) -> Self {
        let mut next = self.clone();
        next.insert_mut(key, value);
        next
    }

    /// Binds `key` to `value` in place: uniquely-owned trie nodes along the
    /// spine are edited directly, shared nodes are path-copied (other
    /// handles keep their version). Returns true if a *new key* was added
    /// (false on replacement or no-op).
    pub fn insert_mut(&mut self, key: K, value: V) -> bool {
        let hash = hash32(&key);
        match Node::insert_in_place(&mut self.root, hash, 0, key, value) {
            EditInserted::Unchanged | EditInserted::Replaced => false,
            EditInserted::Added => {
                self.len += 1;
                true
            }
        }
    }

    /// Returns a map without a binding for `key`; `self` is unchanged.
    pub fn removed<Q>(&self, key: &Q) -> Self
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        let mut next = self.clone();
        next.remove_mut(key);
        next
    }

    /// Removes `key` in place (editing uniquely-owned nodes, path-copying
    /// shared ones). Returns true if a binding was removed.
    pub fn remove_mut<Q>(&mut self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        match Node::remove_in_place(&mut self.root, hash32(key), 0, key) {
            EditRemoved::NotFound => false,
            EditRemoved::Removed => {
                self.len -= 1;
                true
            }
            EditRemoved::Single(k, v) => {
                let root = Node::empty();
                let root = match root.inserted(hash32(&k), 0, &k, &v) {
                    Inserted::Added(n) => n,
                    _ => unreachable!("inserting into empty"),
                };
                self.root = Arc::new(root);
                self.len -= 1;
                true
            }
        }
    }

    /// Iterates `(key, value)` entries in unspecified (trie) order.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter::new(&self.root, self.len)
    }

    /// Iterates the keys in unspecified order.
    pub fn keys(&self) -> Keys<'_, K, V> {
        Keys { inner: self.iter() }
    }

    /// Iterates the values in unspecified order.
    pub fn values(&self) -> Values<'_, K, V> {
        Values { inner: self.iter() }
    }

    /// What changed between `self` (old) and `other` (new), via a lockstep
    /// structural walk: pointer-shared subtrees emit nothing, so output and
    /// walk are both O(changed).
    pub fn diff(&self, other: &Self) -> trie_common::ops::MapDiff<K, V> {
        let mut out = trie_common::ops::MapDiff::new();
        if Arc::ptr_eq(&self.root, &other.root) {
            return out;
        }
        if self.is_empty() {
            out.added
                .extend(other.iter().map(|(k, v)| (k.clone(), v.clone())));
            return out;
        }
        if other.is_empty() {
            out.removed
                .extend(self.iter().map(|(k, v)| (k.clone(), v.clone())));
            return out;
        }
        diff_nodes(&self.root, &other.root, 0, &mut out);
        out
    }

    pub(crate) fn root_node(&self) -> &Node<K, V> {
        &self.root
    }

    /// Recursively checks the canonical-form invariants (test support).
    ///
    /// # Panics
    ///
    /// Panics if any structural invariant is violated.
    #[doc(hidden)]
    pub fn assert_invariants(&self)
    where
        V: Eq,
    {
        let counted = validate(&self.root, 0);
        assert_eq!(counted, self.len, "len bookkeeping");
    }
}

fn validate<K: Clone + Eq + Hash, V: Clone + PartialEq>(node: &Node<K, V>, shift: u32) -> usize {
    match node {
        Node::Collision(c) => {
            assert!(hash_exhausted(shift), "collision node above max depth");
            assert!(c.entries.len() >= 2, "collision node with < 2 entries");
            for (i, (k, _)) in c.entries.iter().enumerate() {
                assert_eq!(hash32(k), c.hash, "collision member hash");
                for (k2, _) in &c.entries[i + 1..] {
                    assert!(k2 != k, "duplicate key in collision node");
                }
            }
            c.entries.len()
        }
        Node::Bitmap(b) => {
            assert_eq!(b.bitmap.count(Category::Cat2), 0, "maps never use CAT2");
            assert_eq!(b.slots.len(), b.bitmap.arity(), "slot count");
            let mut total = 0usize;
            for (i, m) in b.bitmap.masks_of(Category::Cat1).enumerate() {
                match &b.slots[b.bitmap.offset(Category::Cat1) + i] {
                    Slot::Entry(k, _) => {
                        assert_eq!(mask(hash32(k), shift), m, "entry in wrong branch");
                        total += 1;
                    }
                    Slot::Child(_) => panic!("payload slot holds a child"),
                }
            }
            for (i, _) in b.bitmap.masks_of(Category::Node).enumerate() {
                match &b.slots[b.bitmap.offset(Category::Node) + i] {
                    Slot::Child(child) => {
                        let sub = validate(child, next_shift(shift));
                        assert!(sub >= 2, "sub-trie with < 2 entries not inlined");
                        total += sub;
                    }
                    Slot::Entry(..) => panic!("node slot holds payload"),
                }
            }
            if shift > 0 {
                assert!(
                    !(b.bitmap.payload_arity() == 1 && b.bitmap.node_arity() == 0),
                    "non-root singleton payload node must be inlined"
                );
            }
            total
        }
    }
}

impl<K: Clone + Eq + Hash, V: Clone + PartialEq> Default for AxiomMap<K, V> {
    fn default() -> Self {
        AxiomMap::new()
    }
}

impl<K: Clone + Eq + Hash, V: Clone + PartialEq> PartialEq for AxiomMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && node_eq(&self.root, &other.root)
    }
}

impl<K: Clone + Eq + Hash, V: Clone + Eq> Eq for AxiomMap<K, V> {}

fn node_eq<K: Clone + Eq + Hash, V: Clone + PartialEq>(a: &Node<K, V>, b: &Node<K, V>) -> bool {
    match (a, b) {
        (Node::Bitmap(x), Node::Bitmap(y)) => {
            x.bitmap == y.bitmap
                && x.slots
                    .iter()
                    .zip(y.slots.iter())
                    .all(|(s, t)| match (s, t) {
                        (Slot::Entry(k1, v1), Slot::Entry(k2, v2)) => k1 == k2 && v1 == v2,
                        (Slot::Child(c), Slot::Child(d)) => Arc::ptr_eq(c, d) || node_eq(c, d),
                        _ => false,
                    })
        }
        (Node::Collision(x), Node::Collision(y)) => {
            x.hash == y.hash
                && x.entries.len() == y.entries.len()
                && x.entries
                    .iter()
                    .all(|(k, v)| y.entries.iter().any(|(k2, v2)| k == k2 && v == v2))
        }
        _ => false,
    }
}

impl<K, V> std::fmt::Debug for AxiomMap<K, V>
where
    K: std::fmt::Debug + Clone + Eq + Hash,
    V: std::fmt::Debug + Clone + PartialEq,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: Clone + Eq + Hash, V: Clone + PartialEq> FromIterator<(K, V)> for AxiomMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        trie_common::ops::from_iter_via(iter)
    }
}

impl<K: Clone + Eq + Hash, V: Clone + PartialEq> Extend<(K, V)> for AxiomMap<K, V> {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        trie_common::ops::extend_via(self, iter);
    }
}

impl<'a, K: Clone + Eq + Hash, V: Clone + PartialEq> IntoIterator for &'a AxiomMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = Iter<'a, K, V>;
    fn into_iter(self) -> Iter<'a, K, V> {
        self.iter()
    }
}

enum Cursor<'a, K, V> {
    Bitmap { slots: &'a [Slot<K, V>], idx: usize },
    Collision { entries: &'a [(K, V)], idx: usize },
}

/// Iterator over map entries. Created by [`AxiomMap::iter`].
pub struct Iter<'a, K, V> {
    stack: Vec<Cursor<'a, K, V>>,
    remaining: usize,
}

impl<'a, K, V> Iter<'a, K, V> {
    fn new(root: &'a Node<K, V>, len: usize) -> Self {
        Iter {
            stack: vec![cursor_of(root)],
            remaining: len,
        }
    }
}

fn cursor_of<K, V>(node: &Node<K, V>) -> Cursor<'_, K, V> {
    match node {
        Node::Bitmap(b) => Cursor::Bitmap {
            slots: &b.slots,
            idx: 0,
        },
        Node::Collision(c) => Cursor::Collision {
            entries: &c.entries,
            idx: 0,
        },
    }
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<(&'a K, &'a V)> {
        loop {
            let top = self.stack.last_mut()?;
            match top {
                Cursor::Collision { entries, idx } => {
                    if *idx < entries.len() {
                        let (k, v) = &entries[*idx];
                        *idx += 1;
                        self.remaining -= 1;
                        return Some((k, v));
                    }
                    self.stack.pop();
                }
                Cursor::Bitmap { slots, idx } => {
                    if *idx >= slots.len() {
                        self.stack.pop();
                        continue;
                    }
                    let slot = &slots[*idx];
                    *idx += 1;
                    match slot {
                        Slot::Entry(k, v) => {
                            self.remaining -= 1;
                            return Some((k, v));
                        }
                        Slot::Child(child) => self.stack.push(cursor_of(child)),
                    }
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<'a, K, V> ExactSizeIterator for Iter<'a, K, V> {}

impl<'a, K, V> std::fmt::Debug for Iter<'a, K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Iter")
            .field("remaining", &self.remaining)
            .finish()
    }
}

/// Iterator over map keys. Created by [`AxiomMap::keys`].
#[derive(Debug)]
pub struct Keys<'a, K, V> {
    inner: Iter<'a, K, V>,
}

impl<'a, K, V> Iterator for Keys<'a, K, V> {
    type Item = &'a K;
    fn next(&mut self) -> Option<&'a K> {
        self.inner.next().map(|(k, _)| k)
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<'a, K, V> ExactSizeIterator for Keys<'a, K, V> {}

/// Iterator over map values. Created by [`AxiomMap::values`].
#[derive(Debug)]
pub struct Values<'a, K, V> {
    inner: Iter<'a, K, V>,
}

impl<'a, K, V> Iterator for Values<'a, K, V> {
    type Item = &'a V;
    fn next(&mut self) -> Option<&'a V> {
        self.inner.next().map(|(_, v)| v)
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<'a, K, V> ExactSizeIterator for Values<'a, K, V> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::hash::Hasher;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Collide {
        bucket: u32,
        id: u32,
    }

    impl Hash for Collide {
        fn hash<H: Hasher>(&self, state: &mut H) {
            state.write_u32(self.bucket);
        }
    }

    #[test]
    fn empty_map_basics() {
        let m = AxiomMap::<u32, u32>::new();
        assert!(m.is_empty());
        assert_eq!(m.get(&1), None);
        m.assert_invariants();
    }

    #[test]
    fn insert_get_thousand() {
        let m: AxiomMap<u32, u32> = (0..1000).map(|i| (i, i * 2)).collect();
        assert_eq!(m.len(), 1000);
        for i in 0..1000 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
        assert_eq!(m.get(&1000), None);
        m.assert_invariants();
    }

    #[test]
    fn insert_replaces_value() {
        let m = AxiomMap::new().inserted(1u32, "a").inserted(1, "b");
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(&1), Some(&"b"));
    }

    #[test]
    fn insert_same_value_is_structural_noop() {
        let m: AxiomMap<u32, u32> = (0..64).map(|i| (i, i)).collect();
        let m2 = m.inserted(10, 10);
        assert!(
            Arc::ptr_eq(&m.root, &m2.root),
            "no-op insert must share the root"
        );
    }

    #[test]
    fn remove_roundtrip_canonical() {
        let full: AxiomMap<u32, u32> = (0..500).map(|i| (i, i + 1)).collect();
        let mut m = full.clone();
        for i in 0..500 {
            assert!(m.remove_mut(&i));
            m.assert_invariants();
        }
        assert!(m.is_empty());
        assert_eq!(full.len(), 500);
    }

    #[test]
    fn collision_keys_full_lifecycle() {
        let mut m = AxiomMap::new();
        for id in 0..12 {
            m.insert_mut(Collide { bucket: 3, id }, id);
        }
        assert_eq!(m.len(), 12);
        m.assert_invariants();
        for id in 0..12 {
            assert_eq!(m.get(&Collide { bucket: 3, id }), Some(&id));
        }
        // Replacement inside a collision node.
        m.insert_mut(Collide { bucket: 3, id: 5 }, 99);
        assert_eq!(m.len(), 12);
        assert_eq!(m.get(&Collide { bucket: 3, id: 5 }), Some(&99));
        for id in 0..11 {
            assert!(m.remove_mut(&Collide { bucket: 3, id }));
            m.assert_invariants();
        }
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn model_based_random_ops() {
        // Deterministic pseudo-random op sequence checked against HashMap.
        let mut model: HashMap<u32, u32> = HashMap::new();
        let mut m: AxiomMap<u32, u32> = AxiomMap::new();
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..4000 {
            let op = next() % 3;
            let key = next() % 200;
            match op {
                0 | 1 => {
                    let val = next();
                    model.insert(key, val);
                    m.insert_mut(key, val);
                }
                _ => {
                    model.remove(&key);
                    m.remove_mut(&key);
                }
            }
            assert_eq!(m.len(), model.len());
        }
        for (k, v) in &model {
            assert_eq!(m.get(k), Some(v));
        }
        assert_eq!(m.iter().count(), model.len());
        m.assert_invariants();
    }

    #[test]
    fn iteration_consistency() {
        let m: AxiomMap<u32, u32> = (0..256).map(|i| (i, i * 3)).collect();
        let collected: HashMap<u32, u32> = m.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(collected.len(), 256);
        assert_eq!(m.keys().count(), 256);
        assert_eq!(m.values().count(), 256);
        for (k, v) in collected {
            assert_eq!(v, k * 3);
        }
    }

    #[test]
    fn equality_structural_and_order_independent() {
        let a: AxiomMap<u32, u32> = (0..128).map(|i| (i, i)).collect();
        let b: AxiomMap<u32, u32> = (0..128).rev().map(|i| (i, i)).collect();
        assert_eq!(a, b);
        assert_ne!(a, b.inserted(5, 99));
        assert_ne!(a, b.removed(&5));
    }

    #[test]
    fn persistence_under_heavy_branching() {
        let v0: AxiomMap<u32, u32> = (0..1024).map(|i| (i, i)).collect();
        let v1 = v0.inserted(5000, 0);
        let v2 = v0.removed(&512);
        assert_eq!(v0.len(), 1024);
        assert_eq!(v1.len(), 1025);
        assert_eq!(v2.len(), 1023);
        assert!(v0.contains_key(&512));
        assert!(!v2.contains_key(&512));
        v1.assert_invariants();
        v2.assert_invariants();
    }

    #[test]
    fn borrowed_string_keys() {
        let m: AxiomMap<String, u32> = [("x".to_string(), 1), ("y".to_string(), 2)]
            .into_iter()
            .collect();
        assert_eq!(m.get("x"), Some(&1));
        assert!(!m.contains_key("z"));
        assert_eq!(m.removed("x").len(), 1);
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AxiomMap<u32, u32>>();
    }
}
