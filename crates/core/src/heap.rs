//! Footprint walkers: modeled JVM layouts and native Rust allocation counts
//! for the AXIOM collections (see the `heapmodel` crate and DESIGN.md §2).
//!
//! Modeled JVM layout per AXIOM node: one node object carrying the 64-bit
//! bitmap (`1 long`) and a reference to a dense `Object[]` whose length
//! follows the paper's weight vector `[0, 2, 2, 1]` — `CAT1` and `CAT2`
//! entries occupy two references (key + value / key + nested-set), `NODE`
//! entries one. Under a specializing [`LayoutPolicy`] small nodes become
//! fixed-field objects without the array; under a fusing policy nested-set
//! wrapper objects disappear.

use std::hash::Hash;
use std::sync::Arc;

use heapmodel::{
    arc_alloc_bytes, boxed_slice_bytes, Accounting, JvmArch, JvmFootprint, JvmSize, LayoutPolicy,
    RustFootprint,
};

use crate::bag::FusedBag;
use crate::map::{self, AxiomMap};
use crate::multimap::{AxiomMultiMap, Binding};
use crate::set::{self, AxiomSet};
use crate::{multimap, ValueBag};

// ---------------------------------------------------------------------------
// Set
// ---------------------------------------------------------------------------

fn set_nodes_jvm<T: JvmSize>(
    node: &set::Node<T>,
    arch: &JvmArch,
    policy: &LayoutPolicy,
    acc: &mut Accounting,
) {
    match node {
        set::Node::Bitmap(b) => {
            // Elements weigh 1 ref, children 1 ref; bitmap is one long.
            let slots = b.slots.len() as u64;
            acc.structure(policy.node_size(arch, slots, 0, 1));
            for slot in b.slots.iter() {
                match slot {
                    set::Slot::Elem(e) => acc.payload(e.jvm_size(arch)),
                    set::Slot::Child(child) => set_nodes_jvm(child, arch, policy, acc),
                }
            }
        }
        set::Node::Collision(c) => {
            // Collision node: object(array ref, hash int) + element array.
            acc.structure(arch.object(1, 1, 0) + arch.ref_array(c.elems.len() as u64));
            for e in &c.elems {
                acc.payload(e.jvm_size(arch));
            }
        }
    }
}

impl<T: Clone + Eq + Hash + JvmSize> JvmFootprint for AxiomSet<T> {
    fn jvm_footprint(&self, arch: &JvmArch, policy: &LayoutPolicy, acc: &mut Accounting) {
        // Outer collection wrapper: root ref + cached size/hash ints.
        acc.structure(arch.object(1, 2, 0));
        set_nodes_jvm(self.root_node(), arch, policy, acc);
    }
}

fn set_nodes_rust<T>(node: &Arc<set::Node<T>>, acc: &mut Accounting) {
    if !acc.first_visit(Arc::as_ptr(node)) {
        return;
    }
    acc.structure(arc_alloc_bytes::<set::Node<T>>());
    match &**node {
        set::Node::Bitmap(b) => {
            acc.structure(boxed_slice_bytes::<set::Slot<T>>(b.slots.len()));
            for slot in b.slots.iter() {
                if let set::Slot::Child(child) = slot {
                    set_nodes_rust(child, acc);
                }
            }
        }
        set::Node::Collision(c) => {
            acc.structure(boxed_slice_bytes::<T>(c.elems.len()));
        }
    }
}

impl<T: Clone + Eq + Hash> RustFootprint for AxiomSet<T> {
    fn rust_footprint(&self, acc: &mut Accounting) {
        set_nodes_rust(&self.root, acc);
    }
}

// ---------------------------------------------------------------------------
// Map
// ---------------------------------------------------------------------------

fn map_nodes_jvm<K: JvmSize, V: JvmSize>(
    node: &map::Node<K, V>,
    arch: &JvmArch,
    policy: &LayoutPolicy,
    acc: &mut Accounting,
) {
    match node {
        map::Node::Bitmap(b) => {
            let payload = b.bitmap.payload_arity() as u64;
            let children = b.bitmap.node_arity() as u64;
            acc.structure(policy.node_size(arch, 2 * payload + children, 0, 1));
            for slot in b.slots.iter() {
                match slot {
                    map::Slot::Entry(k, v) => {
                        acc.payload(k.jvm_size(arch));
                        acc.payload(v.jvm_size(arch));
                    }
                    map::Slot::Child(child) => map_nodes_jvm(child, arch, policy, acc),
                }
            }
        }
        map::Node::Collision(c) => {
            acc.structure(arch.object(1, 1, 0) + arch.ref_array(2 * c.entries.len() as u64));
            for (k, v) in &c.entries {
                acc.payload(k.jvm_size(arch));
                acc.payload(v.jvm_size(arch));
            }
        }
    }
}

impl<K, V> JvmFootprint for AxiomMap<K, V>
where
    K: Clone + Eq + Hash + JvmSize,
    V: Clone + PartialEq + JvmSize,
{
    fn jvm_footprint(&self, arch: &JvmArch, policy: &LayoutPolicy, acc: &mut Accounting) {
        acc.structure(arch.object(1, 2, 0));
        map_nodes_jvm(self.root_node(), arch, policy, acc);
    }
}

fn map_nodes_rust<K, V>(node: &Arc<map::Node<K, V>>, acc: &mut Accounting) {
    if !acc.first_visit(Arc::as_ptr(node)) {
        return;
    }
    acc.structure(arc_alloc_bytes::<map::Node<K, V>>());
    match &**node {
        map::Node::Bitmap(b) => {
            acc.structure(boxed_slice_bytes::<map::Slot<K, V>>(b.slots.len()));
            for slot in b.slots.iter() {
                if let map::Slot::Child(child) = slot {
                    map_nodes_rust(child, acc);
                }
            }
        }
        map::Node::Collision(c) => {
            acc.structure(boxed_slice_bytes::<(K, V)>(c.entries.len()));
        }
    }
}

impl<K, V> RustFootprint for AxiomMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + PartialEq,
{
    fn rust_footprint(&self, acc: &mut Accounting) {
        map_nodes_rust(&self.root, acc);
    }
}

// ---------------------------------------------------------------------------
// Multi-map: value-bag measurement strategies
// ---------------------------------------------------------------------------

/// How a `1:n` bag contributes to footprints. Implemented for the two sealed
/// [`ValueBag`] strategies; keeps the node walk below bag-agnostic.
pub(crate) trait MeasuredBag<V>: ValueBag<V> {
    fn bag_jvm(&self, arch: &JvmArch, policy: &LayoutPolicy, acc: &mut Accounting);
    fn bag_rust(&self, acc: &mut Accounting);
}

impl<V: Clone + Eq + Hash + JvmSize> MeasuredBag<V> for AxiomSet<V> {
    fn bag_jvm(&self, arch: &JvmArch, policy: &LayoutPolicy, acc: &mut Accounting) {
        // Nested set: wrapper object unless the layout policy fuses it away.
        acc.structure(policy.set_wrapper(arch));
        set_nodes_jvm(self.root_node(), arch, policy, acc);
    }

    fn bag_rust(&self, acc: &mut Accounting) {
        set_nodes_rust(&self.root, acc);
    }
}

impl<V: Clone + Eq + Hash + JvmSize> MeasuredBag<V> for FusedBag<V> {
    fn bag_jvm(&self, arch: &JvmArch, policy: &LayoutPolicy, acc: &mut Accounting) {
        match self {
            // Fusion is intrinsic to this representation: the values array is
            // referenced directly from the slot, no wrapper object.
            FusedBag::Inline(vs) => {
                acc.structure(arch.ref_array(vs.len() as u64));
                for v in vs.iter() {
                    acc.payload(v.jvm_size(arch));
                }
            }
            FusedBag::Trie(s) => set_nodes_jvm(s.root_node(), arch, policy, acc),
        }
    }

    fn bag_rust(&self, acc: &mut Accounting) {
        match self {
            FusedBag::Inline(vs) => acc.structure(boxed_slice_bytes::<V>(vs.len())),
            FusedBag::Trie(s) => set_nodes_rust(&s.root, acc),
        }
    }
}

fn mm_nodes_jvm<K, V, B>(
    node: &multimap::Node<K, V, B>,
    arch: &JvmArch,
    policy: &LayoutPolicy,
    acc: &mut Accounting,
) where
    K: Clone + Eq + Hash + JvmSize,
    V: Clone + Eq + Hash + JvmSize,
    B: MeasuredBag<V>,
{
    match node {
        multimap::Node::Bitmap(b) => {
            // Paper weight vector [0, 2, 2, 1]: payload categories use two
            // array slots, sub-nodes one; the bitmap is one long.
            let payload = b.bitmap.payload_arity() as u64;
            let children = b.bitmap.node_arity() as u64;
            acc.structure(policy.node_size(arch, 2 * payload + children, 0, 1));
            for slot in b.slots.iter() {
                match slot {
                    multimap::Slot::One(k, v) => {
                        acc.payload(k.jvm_size(arch));
                        acc.payload(v.jvm_size(arch));
                    }
                    multimap::Slot::Many(k, bag) => {
                        acc.payload(k.jvm_size(arch));
                        bag.bag_jvm(arch, policy, acc);
                    }
                    multimap::Slot::Child(child) => mm_nodes_jvm(child, arch, policy, acc),
                }
            }
        }
        multimap::Node::Collision(c) => {
            acc.structure(arch.object(1, 1, 0) + arch.ref_array(2 * c.entries.len() as u64));
            for (k, binding) in &c.entries {
                acc.payload(k.jvm_size(arch));
                match binding {
                    Binding::One(v) => acc.payload(v.jvm_size(arch)),
                    Binding::Many(bag) => bag.bag_jvm(arch, policy, acc),
                }
            }
        }
    }
}

impl<K, V, B> JvmFootprint for AxiomMultiMap<K, V, B>
where
    K: Clone + Eq + Hash + JvmSize,
    V: Clone + Eq + Hash + JvmSize,
    B: MeasuredBag<V>,
{
    fn jvm_footprint(&self, arch: &JvmArch, policy: &LayoutPolicy, acc: &mut Accounting) {
        // Outer wrapper: root ref + cached tuple/key counts.
        acc.structure(arch.object(1, 2, 0));
        mm_nodes_jvm(self.root_node(), arch, policy, acc);
    }
}

fn mm_nodes_rust<K, V, B>(node: &Arc<multimap::Node<K, V, B>>, acc: &mut Accounting)
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
    B: MeasuredBag<V>,
    V: JvmSize,
{
    if !acc.first_visit(Arc::as_ptr(node)) {
        return;
    }
    acc.structure(arc_alloc_bytes::<multimap::Node<K, V, B>>());
    match &**node {
        multimap::Node::Bitmap(b) => {
            acc.structure(boxed_slice_bytes::<multimap::Slot<K, V, B>>(b.slots.len()));
            for slot in b.slots.iter() {
                match slot {
                    multimap::Slot::Many(_, bag) => bag.bag_rust(acc),
                    multimap::Slot::Child(child) => mm_nodes_rust(child, acc),
                    multimap::Slot::One(..) => {}
                }
            }
        }
        multimap::Node::Collision(c) => {
            acc.structure(boxed_slice_bytes::<(K, Binding<V, B>)>(c.entries.len()));
            for (_, binding) in &c.entries {
                if let Binding::Many(bag) = binding {
                    bag.bag_rust(acc);
                }
            }
        }
    }
}

impl<K, V, B> RustFootprint for AxiomMultiMap<K, V, B>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash + JvmSize,
    B: MeasuredBag<V>,
{
    fn rust_footprint(&self, acc: &mut Accounting) {
        mm_nodes_rust(&self.root, acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AxiomFusedMultiMap;
    use heapmodel::Footprint;

    fn skewed(n: u32) -> impl Iterator<Item = (u32, u32)> {
        (0..n).flat_map(|k| {
            let extra = if k % 2 == 0 {
                Some((k, k + 1_000_000))
            } else {
                None
            };
            std::iter::once((k, k)).chain(extra)
        })
    }

    fn jvm<S: JvmFootprint>(s: &S) -> Footprint {
        s.jvm_bytes(&JvmArch::COMPRESSED_OOPS, &LayoutPolicy::BASELINE)
    }

    #[test]
    fn empty_structures_cost_little() {
        let mm: AxiomMultiMap<u32, u32> = AxiomMultiMap::new();
        let fp = jvm(&mm);
        assert!(fp.total() < 100, "empty multimap modeled at {fp:?}");
        assert!(mm.rust_bytes() < 200);
    }

    #[test]
    fn footprint_grows_with_content() {
        let small: AxiomMultiMap<u32, u32> = skewed(16).collect();
        let large: AxiomMultiMap<u32, u32> = skewed(1024).collect();
        assert!(jvm(&large).total() > jvm(&small).total());
        assert!(large.rust_bytes() > small.rust_bytes());
    }

    #[test]
    fn fusion_policy_shrinks_nested_multimaps() {
        let mm: AxiomMultiMap<u32, u32> = skewed(512).collect();
        let arch = JvmArch::COMPRESSED_OOPS;
        let baseline = mm.jvm_bytes(&arch, &LayoutPolicy::BASELINE);
        let fused = mm.jvm_bytes(&arch, &LayoutPolicy::FUSED);
        let fused_spec = mm.jvm_bytes(&arch, &LayoutPolicy::FUSED_SPECIALIZED);
        assert!(fused.structure < baseline.structure);
        assert!(fused_spec.structure < fused.structure);
        // Payload is unaffected by layout policies.
        assert_eq!(baseline.payload, fused.payload);
        assert_eq!(baseline.payload, fused_spec.payload);
    }

    #[test]
    fn fused_representation_beats_nested_at_baseline_policy() {
        let nested: AxiomMultiMap<u32, u32> = skewed(512).collect();
        let fused: AxiomFusedMultiMap<u32, u32> = skewed(512).collect();
        let arch = JvmArch::COMPRESSED_OOPS;
        let n = nested.jvm_bytes(&arch, &LayoutPolicy::BASELINE);
        let f = fused.jvm_bytes(&arch, &LayoutPolicy::BASELINE);
        assert!(
            f.structure < n.structure,
            "fused {} vs nested {}",
            f.structure,
            n.structure
        );
        assert!(fused.rust_bytes() < nested.rust_bytes());
    }

    #[test]
    fn sixty_four_bit_arch_costs_more() {
        let mm: AxiomMultiMap<u32, u32> = skewed(256).collect();
        let c = mm.jvm_bytes(&JvmArch::COMPRESSED_OOPS, &LayoutPolicy::BASELINE);
        let u = mm.jvm_bytes(&JvmArch::UNCOMPRESSED, &LayoutPolicy::BASELINE);
        assert!(u.total() > c.total());
    }

    #[test]
    fn hand_computed_single_node_map() {
        // Two entries that land in distinct root branches: one node object
        // (1 ref + 1 long = 12+4+8 = 24), one Object[4] (16+16 = 32), four
        // boxed ints (4 × 16).
        let m: AxiomMap<u32, u32> = [(1, 2), (2, 3)].into_iter().collect();
        m.assert_invariants();
        if let map::Node::Bitmap(b) = m.root_node() {
            if b.bitmap.node_arity() == 0 && b.slots.len() == 2 {
                let fp = jvm(&m);
                // wrapper 24 + node 24 + array 32 = 80 structure bytes.
                assert_eq!(fp.structure, 24 + 24 + 32);
                assert_eq!(fp.payload, 4 * 16);
            }
        }
    }

    #[test]
    fn set_footprints() {
        let s: AxiomSet<u32> = (0..100).collect();
        let fp = jvm(&s);
        assert!(fp.payload >= 100 * 16);
        assert!(fp.structure > 0);
        assert!(s.rust_bytes() > 0);
    }
}
