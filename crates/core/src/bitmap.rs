//! The AXIOM slot bitmap: 32 branches × 2-bit type tags in one `u64`.
//!
//! This module is the paper's core encoding (§3.1-3.4). Each of a trie node's
//! 32 logical branches carries a 2-bit [`Category`]:
//!
//! | tag | meaning (multi-map instance)                |
//! |-----|---------------------------------------------|
//! | 00  | `EMPTY` — branch unoccupied                 |
//! | 01  | `CAT1` — inlined payload (a `1:1` tuple)    |
//! | 10  | `CAT2` — nested payload (a `1:n` tuple)     |
//! | 11  | `NODE` — sub-trie                           |
//!
//! `EMPTY` is deliberately the all-zero pattern (an empty node is bitmap 0)
//! and `NODE` the highest tag, following the paper's conventions. The three
//! operations that make the encoding practical are:
//!
//! * [`SlotBitmap::filter`] — reduces the 2-bit patterns of one category to
//!   single bits so that hardware popcount can index into the category's
//!   slot group (paper Listing 3);
//! * [`SlotBitmap::histogram`] — per-category branch counts, from which group
//!   lengths and offsets are derived (paper §3.3);
//! * [`SlotBitmap::slot_index`] — absolute dense-array index of a branch,
//!   combining the group offset with the in-group relative index (paper
//!   Listing 2).
//!
//! HAMT and CHAMP are special cases of this encoding (paper §3.1): HAMT uses
//! a single occupied/empty bit with dynamic type recovery, CHAMP exactly the
//! categories `EMPTY`/`CAT1`/`NODE`.
//!
//! # Examples
//!
//! ```
//! use axiom::bitmap::{Category, SlotBitmap};
//!
//! // The root node of the paper's Figure 3d: 1:1 payloads at masks 4 and 9,
//! // a sub-node at mask 2.
//! let bm = SlotBitmap::EMPTY
//!     .with(4, Category::CAT1)
//!     .with(9, Category::CAT1)
//!     .with(2, Category::NODE);
//!
//! // Listing 3's worked example: F ↦ 6 lives at mask 9 and is the second
//! // CAT1 entry, i.e. relative index 1.
//! assert_eq!(bm.index(Category::CAT1, 9), 1);
//! assert_eq!(bm.get(2), Category::NODE);
//! ```

/// A 2-bit content category tag.
///
/// The four values cover rank-2 type-heterogeneity, which is what the
/// multi-map instance of AXIOM requires (`⌈log2(2+2)⌉ = 2` bits per branch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Category {
    /// Branch unoccupied. By convention the all-zero bit pattern.
    Empty = 0b00,
    /// First payload category. For multi-maps: an inlined key/value pair.
    Cat1 = 0b01,
    /// Second payload category. For multi-maps: a key with a nested value set.
    Cat2 = 0b10,
    /// A sub-trie reference. By convention the highest tag.
    Node = 0b11,
}

impl Category {
    /// Alias matching the paper's `EMPTY` constant.
    pub const EMPTY: Category = Category::Empty;
    /// Alias matching the paper's `PAYLOAD_CATEGORY_1` constant.
    pub const CAT1: Category = Category::Cat1;
    /// Alias matching the paper's `PAYLOAD_CATEGORY_2` constant.
    pub const CAT2: Category = Category::Cat2;
    /// Alias matching the paper's `NODE` constant.
    pub const NODE: Category = Category::Node;

    /// All categories in slot-group order.
    pub const ALL: [Category; 4] = [
        Category::Empty,
        Category::Cat1,
        Category::Cat2,
        Category::Node,
    ];

    #[inline(always)]
    pub(crate) fn from_bits(bits: u64) -> Category {
        match bits & 0b11 {
            0b00 => Category::Empty,
            0b01 => Category::Cat1,
            0b10 => Category::Cat2,
            _ => Category::Node,
        }
    }
}

/// Bit pattern `01 01 … 01`: the least significant bit of every 2-bit entry.
const LSB: u64 = 0x5555_5555_5555_5555;

/// The per-node bitmap: 32 × 2-bit category tags packed into a `u64`.
///
/// Branch *m*'s tag occupies bits `2m` and `2m+1` (paper §3.1: "the first two
/// bits designate the state of the first branch …").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SlotBitmap(u64);

impl SlotBitmap {
    /// The bitmap of an empty node: every branch `EMPTY`.
    pub const EMPTY: SlotBitmap = SlotBitmap(0);

    /// Creates a bitmap from its raw `u64` representation.
    #[inline]
    pub fn from_raw(raw: u64) -> SlotBitmap {
        SlotBitmap(raw)
    }

    /// The raw `u64` representation.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The category tag of branch `mask` (paper Listing 2, line 3).
    #[inline(always)]
    pub fn get(self, mask: u32) -> Category {
        debug_assert!(mask < 32);
        Category::from_bits(self.0 >> (mask << 1))
    }

    /// Returns a bitmap with branch `mask` retagged to `cat`.
    #[inline(always)]
    pub fn with(self, mask: u32, cat: Category) -> SlotBitmap {
        debug_assert!(mask < 32);
        let shift = mask << 1;
        SlotBitmap((self.0 & !(0b11u64 << shift)) | ((cat as u64) << shift))
    }

    /// True if no branch is occupied.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Reduces the 2-bit pattern of `cat` to single bits (paper Listing 3):
    /// each branch tagged `cat` contributes a `1` at bit `2·mask`, all other
    /// branches contribute `0`. The result feeds hardware popcount.
    #[inline(always)]
    pub fn filter(self, cat: Category) -> u64 {
        let masked0 = LSB & self.0;
        let masked1 = LSB & (self.0 >> 1);
        match cat {
            Category::Empty => (masked0 ^ LSB) & (masked1 ^ LSB),
            Category::Cat1 => masked0 & (masked1 ^ LSB),
            Category::Cat2 => masked1 & (masked0 ^ LSB),
            Category::Node => masked0 & masked1,
        }
    }

    /// Number of branches tagged `cat`.
    #[inline(always)]
    pub fn count(self, cat: Category) -> usize {
        self.filter(cat).count_ones() as usize
    }

    /// Relative index of branch `mask` within its category group: the number
    /// of branches with the same tag strictly below `mask` (paper Listing 3,
    /// lines 1-5). Within a group, slots stay totally ordered by mask.
    #[inline(always)]
    pub fn index(self, cat: Category, mask: u32) -> usize {
        let marker = 1u64 << (mask << 1);
        (self.filter(cat) & (marker - 1)).count_ones() as usize
    }

    /// Content histogram: branch counts per category, computed with the
    /// paper's §3.3 loop. Used for group offsets and batch processing.
    #[inline]
    pub fn histogram(self) -> [u32; 4] {
        let mut histogram = [0u32; 4];
        let mut bitmap = self.0;
        for _ in 0..32 {
            histogram[(bitmap & 0b11) as usize] += 1;
            bitmap >>= 2;
        }
        histogram
    }

    /// Number of payload branches (`CAT1` + `CAT2`).
    #[inline(always)]
    pub fn payload_arity(self) -> usize {
        self.count(Category::Cat1) + self.count(Category::Cat2)
    }

    /// Number of sub-trie branches.
    #[inline(always)]
    pub fn node_arity(self) -> usize {
        self.count(Category::Node)
    }

    /// Total number of occupied branches (`32 - histogram[EMPTY]`).
    #[inline(always)]
    pub fn arity(self) -> usize {
        32 - self.count(Category::Empty)
    }

    /// Start offset of `cat`'s slot group in the node's dense slot array,
    /// with every occupied branch occupying one physical slot (this
    /// reproduction's weights; the modeled JVM layout applies the paper's
    /// `[0, 2, 2, 1]` weights, see the `heapmodel` integration).
    #[inline(always)]
    pub fn offset(self, cat: Category) -> usize {
        match cat {
            Category::Empty => 0,
            Category::Cat1 => 0,
            Category::Cat2 => self.count(Category::Cat1),
            Category::Node => self.count(Category::Cat1) + self.count(Category::Cat2),
        }
    }

    /// Absolute dense-array slot index of branch `mask`, which must be tagged
    /// `cat`: group offset plus in-group relative index (paper Listing 2,
    /// lines 5-7).
    #[inline(always)]
    pub fn slot_index(self, cat: Category, mask: u32) -> usize {
        debug_assert_eq!(self.get(mask), cat);
        self.offset(cat) + self.index(cat, mask)
    }

    /// Iterates the masks tagged `cat` in ascending order — the order their
    /// slots appear within the category group.
    pub fn masks_of(self, cat: Category) -> MaskIter {
        MaskIter {
            filtered: self.filter(cat),
        }
    }

    /// Fused dispatch: category **and** absolute slot index of branch `mask`
    /// in one pass over the bitmap.
    ///
    /// [`SlotBitmap::get`] followed by [`SlotBitmap::slot_index`] re-derives
    /// the per-category filters up to four times (once for the index, once
    /// per lower category for the group offset). `locate` computes the two
    /// half-bitmap masks once and reuses them for the tag, the group offset
    /// and the in-group rank — one `filter`-style reduction plus popcounts.
    /// The returned index is meaningless (zero) for `EMPTY` branches.
    #[inline(always)]
    pub fn locate(self, mask: u32) -> (Category, usize) {
        debug_assert!(mask < 32);
        let shift = mask << 1;
        let cat = Category::from_bits(self.0 >> shift);
        let masked0 = LSB & self.0;
        let masked1 = LSB & (self.0 >> 1);
        let cat1 = masked0 & (masked1 ^ LSB);
        let (offset, filtered) = match cat {
            Category::Empty => return (Category::Empty, 0),
            Category::Cat1 => (0, cat1),
            Category::Cat2 => (cat1.count_ones(), masked1 & (masked0 ^ LSB)),
            Category::Node => (
                (cat1 | (masked1 & (masked0 ^ LSB))).count_ones(),
                masked0 & masked1,
            ),
        };
        let below = (filtered & ((1u64 << shift) - 1)).count_ones();
        (cat, (offset + below) as usize)
    }

    /// Like [`SlotBitmap::get`] but dispatching with the *extrapolated-CHAMP*
    /// strategy of paper Listing 1: sequential membership probes against each
    /// category's (filtered) bitmap instead of direct tag extraction. Only
    /// used by the ablation benchmarks; semantically identical to `get`.
    #[inline]
    pub fn get_linear_scan(self, mask: u32) -> Category {
        let marker = 1u64 << (mask << 1);
        if self.filter(Category::Cat1) & marker != 0 {
            Category::Cat1
        } else if self.filter(Category::Cat2) & marker != 0 {
            Category::Cat2
        } else if self.filter(Category::Node) & marker != 0 {
            Category::Node
        } else {
            Category::Empty
        }
    }

    /// Group offsets computed by scattered-bitmap aggregation (Listing 1's
    /// `count(datamap1()) + count(...)` chains); ablation counterpart of
    /// [`SlotBitmap::slot_index`].
    #[inline]
    pub fn slot_index_linear_scan(self, cat: Category, mask: u32) -> usize {
        let mut offset = 0usize;
        for lower in [Category::Cat1, Category::Cat2] {
            if lower == cat {
                break;
            }
            offset += self.filter(lower).count_ones() as usize;
        }
        let marker = 1u64 << (mask << 1);
        offset + (self.filter(cat) & (marker - 1)).count_ones() as usize
    }
}

/// Iterator over the ascending masks of one category. Created by
/// [`SlotBitmap::masks_of`].
#[derive(Debug, Clone)]
pub struct MaskIter {
    filtered: u64,
}

impl Iterator for MaskIter {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.filtered == 0 {
            return None;
        }
        let bit = self.filtered.trailing_zeros();
        self.filtered &= self.filtered - 1;
        Some(bit >> 1)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.filtered.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for MaskIter {}

#[cfg(test)]
mod tests {
    use super::*;
    use Category::*;

    /// The root node of Figure 3d, as used in Listing 3's worked example.
    fn figure_3d_root() -> SlotBitmap {
        SlotBitmap::EMPTY.with(4, Cat1).with(9, Cat1).with(2, Node)
    }

    #[test]
    fn empty_bitmap_is_all_empty() {
        let bm = SlotBitmap::EMPTY;
        assert!(bm.is_empty());
        for mask in 0..32 {
            assert_eq!(bm.get(mask), Empty);
        }
        assert_eq!(bm.histogram(), [32, 0, 0, 0]);
        assert_eq!(bm.arity(), 0);
    }

    #[test]
    fn with_get_roundtrip_all_masks_all_categories() {
        for mask in 0..32 {
            for cat in Category::ALL {
                let bm = SlotBitmap::EMPTY.with(mask, cat);
                assert_eq!(bm.get(mask), cat);
                // Every other branch stays empty.
                for other in (0..32).filter(|&m| m != mask) {
                    assert_eq!(bm.get(other), Empty);
                }
            }
        }
    }

    #[test]
    fn with_overwrites_previous_tag() {
        let bm = SlotBitmap::EMPTY.with(7, Node).with(7, Cat1);
        assert_eq!(bm.get(7), Cat1);
        assert_eq!(bm.count(Node), 0);
    }

    #[test]
    fn listing3_worked_example() {
        // unfilteredBitmap = … 00 01 00 00 00 00 01 00 11 00 (masks 9,4 CAT1; 2 NODE)
        let bm = figure_3d_root();
        assert_eq!(bm.raw(), (0b01 << 18) | (0b01 << 8) | (0b11 << 4));

        // filter(CAT1) keeps both CAT1 entries, drops NODE.
        assert_eq!(bm.filter(Cat1), (1 << 18) | (1 << 8));

        // Relative index of F ↦ 6 (mask 9) within CAT1 is 1.
        assert_eq!(bm.index(Cat1, 9), 1);
        assert_eq!(bm.index(Cat1, 4), 0);
        assert_eq!(bm.index(Node, 2), 0);
    }

    #[test]
    fn listing3_absolute_slot_indices() {
        // Slot layout: [cat1(mask4), cat1(mask9)], [ ], [node(mask2)].
        let bm = figure_3d_root();
        assert_eq!(bm.slot_index(Cat1, 4), 0);
        assert_eq!(bm.slot_index(Cat1, 9), 1);
        assert_eq!(bm.slot_index(Node, 2), 2);
    }

    #[test]
    fn filters_partition_all_branches() {
        // Arbitrary dense bitmap: categories assigned pseudo-randomly.
        let mut bm = SlotBitmap::EMPTY;
        for mask in 0..32u32 {
            bm = bm.with(mask, Category::ALL[(mask as usize * 7 + 3) % 4]);
        }
        let union = Category::ALL
            .iter()
            .fold(0u64, |acc, &c| acc | bm.filter(c));
        assert_eq!(union, LSB);
        for (i, &a) in Category::ALL.iter().enumerate() {
            for &b in &Category::ALL[i + 1..] {
                assert_eq!(bm.filter(a) & bm.filter(b), 0, "{a:?} ∩ {b:?}");
            }
        }
    }

    #[test]
    fn histogram_matches_filter_counts() {
        let mut bm = SlotBitmap::EMPTY;
        for mask in 0..32u32 {
            bm = bm.with(mask, Category::ALL[(mask as usize * 13 + 1) % 4]);
        }
        let hist = bm.histogram();
        for cat in Category::ALL {
            assert_eq!(hist[cat as usize] as usize, bm.count(cat), "{cat:?}");
        }
        assert_eq!(hist.iter().sum::<u32>(), 32);
    }

    #[test]
    fn arities_and_offsets() {
        let bm = SlotBitmap::EMPTY
            .with(0, Cat1)
            .with(3, Cat2)
            .with(5, Cat1)
            .with(9, Node)
            .with(31, Cat2);
        assert_eq!(bm.payload_arity(), 4);
        assert_eq!(bm.node_arity(), 1);
        assert_eq!(bm.arity(), 5);
        assert_eq!(bm.offset(Cat1), 0);
        assert_eq!(bm.offset(Cat2), 2);
        assert_eq!(bm.offset(Node), 4);
        // Absolute layout: [ (0,C1) (5,C1) | (3,C2) (31,C2) | (9,N) ]
        assert_eq!(bm.slot_index(Cat1, 0), 0);
        assert_eq!(bm.slot_index(Cat1, 5), 1);
        assert_eq!(bm.slot_index(Cat2, 3), 2);
        assert_eq!(bm.slot_index(Cat2, 31), 3);
        assert_eq!(bm.slot_index(Node, 9), 4);
    }

    #[test]
    fn masks_of_yields_ascending_masks() {
        let bm = SlotBitmap::EMPTY
            .with(17, Cat1)
            .with(2, Cat1)
            .with(30, Cat1)
            .with(5, Node);
        let masks: Vec<u32> = bm.masks_of(Cat1).collect();
        assert_eq!(masks, vec![2, 17, 30]);
        assert_eq!(bm.masks_of(Node).collect::<Vec<_>>(), vec![5]);
        assert_eq!(bm.masks_of(Cat2).count(), 0);
        assert_eq!(bm.masks_of(Empty).count(), 28);
    }

    #[test]
    fn linear_scan_dispatch_agrees_with_switch_dispatch() {
        let mut bm = SlotBitmap::EMPTY;
        for mask in 0..32u32 {
            bm = bm.with(mask, Category::ALL[(mask as usize * 11 + 2) % 4]);
        }
        for mask in 0..32 {
            assert_eq!(bm.get(mask), bm.get_linear_scan(mask));
            let cat = bm.get(mask);
            if cat != Empty {
                assert_eq!(
                    bm.slot_index(cat, mask),
                    bm.slot_index_linear_scan(cat, mask)
                );
            }
        }
    }

    #[test]
    fn locate_agrees_with_get_plus_slot_index() {
        // Dense pseudo-random bitmaps plus the documented worked example.
        let mut bitmaps = vec![figure_3d_root(), SlotBitmap::EMPTY];
        for salt in 0..8u32 {
            let mut bm = SlotBitmap::EMPTY;
            for mask in 0..32u32 {
                bm = bm.with(
                    mask,
                    Category::ALL[((mask * 7 + salt * 5 + 3) % 4) as usize],
                );
            }
            bitmaps.push(bm);
        }
        for bm in bitmaps {
            for mask in 0..32 {
                let (cat, idx) = bm.locate(mask);
                assert_eq!(cat, bm.get(mask));
                if cat != Empty {
                    assert_eq!(idx, bm.slot_index(cat, mask), "{bm:?} mask {mask}");
                }
            }
        }
    }

    #[test]
    fn mask_31_uses_the_top_bits() {
        let bm = SlotBitmap::EMPTY.with(31, Node);
        assert_eq!(bm.raw() >> 62, 0b11);
        assert_eq!(bm.get(31), Node);
        assert_eq!(bm.index(Node, 31), 0);
        assert_eq!(bm.slot_index(Node, 31), 0);
    }
}
