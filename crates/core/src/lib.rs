//! **AXIOM** — type-heterogeneous hash-tries for purely functional
//! collections.
//!
//! This crate reproduces the core contribution of Steindorfer & Vinju,
//! *"To-Many or To-One? All-in-One! Efficient Purely Functional Multi-maps
//! with Type-Heterogeneous Hash-Tries"* (PLDI 2018): a hash-array-mapped-trie
//! node design whose per-branch state is a multi-bit type tag, enabling a
//! single node to inline `1:1` tuples, reference nested `1:n` value sets and
//! point at sub-tries — with popcount-indexed dense storage and no dynamic
//! type checks on the hot path.
//!
//! # The types
//!
//! | type | paper role |
//! |---|---|
//! | [`AxiomMultiMap`] | the headline multi-map (§3-4): singletons inlined, larger value sets nested |
//! | [`AxiomFusedMultiMap`] | the §4.4 *fusion* variant: small value sets stored flat in the slot |
//! | [`AxiomMap`] | AXIOM as a plain map (§5, measured against CHAMP) |
//! | [`AxiomSet`] | AXIOM as a set; also the nested-set substrate |
//! | [`bitmap::SlotBitmap`] | the reusable 2-bit-tag encoding (§3.1-3.4, Listings 2-3) |
//!
//! All collections are persistent: updates return new versions that share
//! structure with their ancestors, and handles are cheap to clone and
//! `Send + Sync` for element types that are.
//!
//! # Quick start
//!
//! ```
//! use axiom::AxiomMultiMap;
//!
//! // A dependence relation: mostly 1:1 with a few 1:n exceptions.
//! let deps = AxiomMultiMap::<&str, &str>::new()
//!     .inserted("parser", "lexer")
//!     .inserted("typeck", "parser")
//!     .inserted("codegen", "typeck")
//!     .inserted("codegen", "layout"); // codegen promotes to 1:n
//!
//! assert_eq!(deps.tuple_count(), 4);
//! assert_eq!(deps.key_count(), 3);
//! assert_eq!(deps.value_count(&"codegen"), 2);
//!
//! // Persistence: removing from a new version leaves the old one intact.
//! let pruned = deps.key_removed(&"codegen");
//! assert_eq!(pruned.key_count(), 2);
//! assert_eq!(deps.key_count(), 3);
//! ```

#![warn(missing_docs)]

pub mod bag;
pub mod bitmap;
pub mod map;
pub mod multimap;
pub mod set;

mod heap;
mod ops;
#[cfg(feature = "serde")]
mod serde_impls;
mod slots;
mod snapshot;

pub use bag::{BagRemoved, FusedBag, ValueBag, FUSE_MAX};
pub use map::AxiomMap;
pub use multimap::{AxiomMultiMap, BindingRef};
pub use set::AxiomSet;

/// The paper's §4.4 fusion variant: identical algorithms to
/// [`AxiomMultiMap`], but `1:n` value collections of up to
/// [`FUSE_MAX`] elements are stored as one flat slice reached directly from
/// the trie slot (fewer indirections, no nested-set wrapper).
pub type AxiomFusedMultiMap<K, V> = AxiomMultiMap<K, V, FusedBag<V>>;
