//! Optional Serde support (behind the `serde` feature, per C-SERDE).
//!
//! Collections serialize as flat sequences — a set as its elements, a map as
//! `(key, value)` pairs, a multi-map as its flattened `(key, value)` tuples —
//! and deserialize by rebuilding the trie, so the wire format is independent
//! of trie-internal ordering and of the value-bag strategy.

use std::hash::Hash;
use std::marker::PhantomData;

use serde::de::{SeqAccess, Visitor};
use serde::ser::SerializeSeq;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

use crate::bag::ValueBag;
use crate::{AxiomMap, AxiomMultiMap, AxiomSet};

impl<T: Serialize + Clone + Eq + Hash> Serialize for AxiomSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for v in self.iter() {
            seq.serialize_element(v)?;
        }
        seq.end()
    }
}

impl<'de, T: Deserialize<'de> + Clone + Eq + Hash> Deserialize<'de> for AxiomSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de> + Clone + Eq + Hash> Visitor<'de> for V<T> {
            type Value = AxiomSet<T>;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("a sequence of set elements")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = AxiomSet::new();
                while let Some(v) = seq.next_element()? {
                    out.insert_mut(v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(V(PhantomData))
    }
}

impl<K, V> Serialize for AxiomMap<K, V>
where
    K: Serialize + Clone + Eq + Hash,
    V: Serialize + Clone + PartialEq,
{
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for (k, v) in self.iter() {
            seq.serialize_element(&(k, v))?;
        }
        seq.end()
    }
}

impl<'de, K, V> Deserialize<'de> for AxiomMap<K, V>
where
    K: Deserialize<'de> + Clone + Eq + Hash,
    V: Deserialize<'de> + Clone + PartialEq,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V2<K, V>(PhantomData<(K, V)>);
        impl<'de, K, V> Visitor<'de> for V2<K, V>
        where
            K: Deserialize<'de> + Clone + Eq + Hash,
            V: Deserialize<'de> + Clone + PartialEq,
        {
            type Value = AxiomMap<K, V>;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("a sequence of (key, value) pairs")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = AxiomMap::new();
                while let Some((k, v)) = seq.next_element()? {
                    out.insert_mut(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(V2(PhantomData))
    }
}

impl<K, V, B> Serialize for AxiomMultiMap<K, V, B>
where
    K: Serialize + Clone + Eq + Hash,
    V: Serialize + Clone + Eq + Hash,
    B: ValueBag<V>,
{
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.tuple_count()))?;
        for (k, v) in self.iter() {
            seq.serialize_element(&(k, v))?;
        }
        seq.end()
    }
}

impl<'de, K, V, B> Deserialize<'de> for AxiomMultiMap<K, V, B>
where
    K: Deserialize<'de> + Clone + Eq + Hash,
    V: Deserialize<'de> + Clone + Eq + Hash,
    B: ValueBag<V>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V3<K, V, B>(PhantomData<(K, V, B)>);
        impl<'de, K, V, B> Visitor<'de> for V3<K, V, B>
        where
            K: Deserialize<'de> + Clone + Eq + Hash,
            V: Deserialize<'de> + Clone + Eq + Hash,
            B: ValueBag<V>,
        {
            type Value = AxiomMultiMap<K, V, B>;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("a sequence of (key, value) tuples")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = AxiomMultiMap::new();
                while let Some((k, v)) = seq.next_element()? {
                    out.insert_mut(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(V3(PhantomData))
    }
}
