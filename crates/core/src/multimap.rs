//! The AXIOM persistent multi-map: `1:1`, `n:1` and `n:n` mappings in one
//! type-heterogeneous hash-trie.
//!
//! This is the paper's headline data structure. Every trie node discriminates
//! four branch states with 2-bit tags (see [`crate::bitmap`]):
//!
//! * `CAT1` — a key with an **inlined singleton value** (`1:1` tuple);
//! * `CAT2` — a key with a **nested collection** of ≥ 2 values (`1:n`);
//! * `NODE` — a sub-trie; `EMPTY` — unoccupied.
//!
//! Content migrates between representations as the relation evolves
//! (paper §3.2): inserting a second value *promotes* a `CAT1` slot to `CAT2`;
//! deleting down to one value *demotes* it back; prefix clashes push payload
//! into fresh sub-tries; deletions canonicalize by inlining collapsed
//! sub-tries into parents. Memory therefore degrades/improves gracefully as
//! arities grow or shrink — the skewed-distribution insight the paper
//! exploits.
//!
//! The value-storage strategy is pluggable via [`ValueBag`]: nested
//! [`AxiomSet`]s (baseline) or [`FusedBag`](crate::bag::FusedBag) (the
//! paper's fusion variant, see [`AxiomFusedMultiMap`](crate::AxiomFusedMultiMap)).
//!
//! # Examples
//!
//! ```
//! use axiom::AxiomMultiMap;
//!
//! let mm = AxiomMultiMap::<&str, u32>::new()
//!     .inserted("D", 4)
//!     .inserted("D", 5) // "D" promotes to a 1:n mapping
//!     .inserted("A", 1);
//! assert_eq!(mm.tuple_count(), 3);
//! assert_eq!(mm.key_count(), 2);
//! assert!(mm.contains_tuple(&"D", &5));
//! assert_eq!(mm.get(&"D").map(|v| v.len()), Some(2));
//!
//! let smaller = mm.tuple_removed(&"D", &4); // demotes back to 1:1
//! assert_eq!(smaller.get(&"D").map(|v| v.len()), Some(1));
//! assert_eq!(mm.tuple_count(), 3); // original unchanged
//! ```

use std::hash::Hash;
use std::marker::PhantomData;
use std::sync::Arc;

use trie_common::bits::{hash_exhausted, mask, next_shift};
use trie_common::hash::hash32;

use crate::bag::{BagEdited, BagRemoved, ValueBag};
use crate::bitmap::{Category, SlotBitmap};
use crate::set::AxiomSet;
use crate::slots::{
    inserted_at, inserted_at_owned, migrate_map, migrated, removed_at, removed_at_owned,
    replaced_at,
};

/// The values bound to one key: an inlined singleton or a nested bag.
#[derive(Debug, Clone)]
pub(crate) enum Binding<V, B> {
    One(V),
    Many(B),
}

impl<V: Clone + Eq + Hash, B: ValueBag<V>> Binding<V, B> {
    fn len(&self) -> usize {
        match self {
            Binding::One(_) => 1,
            Binding::Many(bag) => bag.len(),
        }
    }

    /// Adds a value, promoting singletons; `None` when already present.
    fn inserted(&self, value: &V) -> Option<Binding<V, B>> {
        match self {
            Binding::One(v) => {
                if v == value {
                    None
                } else {
                    Some(Binding::Many(B::from_two(v.clone(), value.clone())))
                }
            }
            Binding::Many(bag) => bag.inserted(value).map(Binding::Many),
        }
    }

    /// Removes a value, demoting two-element bags; `Gone` when the binding's
    /// last value was removed.
    fn removed(&self, value: &V) -> BindingRemoved<V, B> {
        match self {
            Binding::One(v) => {
                if v == value {
                    BindingRemoved::Gone
                } else {
                    BindingRemoved::NotFound
                }
            }
            Binding::Many(bag) => match bag.removed(value) {
                BagRemoved::NotFound => BindingRemoved::NotFound,
                BagRemoved::Bag(b) => BindingRemoved::Keep(Binding::Many(b)),
                BagRemoved::Single(survivor) => BindingRemoved::Keep(Binding::One(survivor)),
            },
        }
    }

    fn category(&self) -> Category {
        match self {
            Binding::One(_) => Category::Cat1,
            Binding::Many(_) => Category::Cat2,
        }
    }

    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Binding::One(a), Binding::One(b)) => a == b,
            (Binding::Many(a), Binding::Many(b)) => a == b,
            _ => false,
        }
    }
}

enum BindingRemoved<V, B> {
    NotFound,
    Keep(Binding<V, B>),
    Gone,
}

/// One physical slot of a multi-map node.
#[derive(Debug, Clone)]
pub(crate) enum Slot<K, V, B> {
    /// `CAT1`: inlined `1:1` tuple.
    One(K, V),
    /// `CAT2`: key plus nested bag of ≥ 2 values.
    Many(K, B),
    /// `NODE`: shared sub-trie.
    Child(Arc<Node<K, V, B>>),
}

/// A compressed trie node: bitmap plus dense, permuted slots
/// (`[1:1 tuples… | 1:n tuples… | children…]`, each group ascending by mask).
#[derive(Debug, Clone)]
pub(crate) struct BitmapNode<K, V, B> {
    pub(crate) bitmap: SlotBitmap,
    pub(crate) slots: Box<[Slot<K, V, B>]>,
}

/// Hash-collision overflow node.
#[derive(Debug, Clone)]
pub(crate) struct CollisionNode<K, V, B> {
    pub(crate) hash: u32,
    pub(crate) entries: Vec<(K, Binding<V, B>)>,
}

/// A trie node.
#[derive(Debug, Clone)]
pub(crate) enum Node<K, V, B> {
    Bitmap(BitmapNode<K, V, B>),
    Collision(CollisionNode<K, V, B>),
}

/// Node-level insertion outcome, for tuple/key bookkeeping.
enum Inserted<K, V, B> {
    /// Tuple already present.
    Unchanged,
    /// New tuple under an existing key.
    NewTuple(Node<K, V, B>),
    /// New key (and tuple).
    NewKey(Node<K, V, B>),
}

/// Node-level tuple-removal outcome.
enum TupleRemoved<K, V, B> {
    NotFound,
    Node {
        node: Node<K, V, B>,
        key_gone: bool,
    },
    /// Sub-tree collapsed to one key's binding: inline into the parent.
    Single {
        key: K,
        binding: Binding<V, B>,
        key_gone: bool,
    },
}

/// Node-level key-removal outcome.
enum KeyRemoved<K, V, B> {
    NotFound,
    Node {
        node: Node<K, V, B>,
        tuples_removed: usize,
    },
    Single {
        key: K,
        binding: Binding<V, B>,
        tuples_removed: usize,
    },
}

/// In-place insertion outcome: nodes are edited where they stand, so only
/// the tuple/key bookkeeping flag travels.
enum EditInserted {
    Unchanged,
    NewTuple,
    NewKey,
}

/// In-place tuple-removal outcome.
enum EditTupleRemoved<K, V, B> {
    NotFound,
    Removed {
        key_gone: bool,
    },
    /// Sub-tree collapsed to one key's binding (the node is consumed; the
    /// parent drops it and inlines the binding).
    Single {
        key: K,
        binding: Binding<V, B>,
        key_gone: bool,
    },
}

/// In-place key-removal outcome.
enum EditKeyRemoved<K, V, B> {
    NotFound,
    Removed {
        tuples_removed: usize,
    },
    Single {
        key: K,
        binding: Binding<V, B>,
        tuples_removed: usize,
    },
}

impl<K, V, B> Node<K, V, B>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
    B: ValueBag<V>,
{
    fn empty() -> Node<K, V, B> {
        Node::Bitmap(BitmapNode {
            bitmap: SlotBitmap::EMPTY,
            slots: Box::new([]),
        })
    }

    fn slot_of(key: K, binding: Binding<V, B>) -> Slot<K, V, B> {
        match binding {
            Binding::One(v) => Slot::One(key, v),
            Binding::Many(bag) => Slot::Many(key, bag),
        }
    }

    /// Builds the minimal sub-trie holding two distinct keys' bindings whose
    /// hash prefixes agree up to `shift`.
    fn pair(
        h1: u32,
        k1: K,
        b1: Binding<V, B>,
        h2: u32,
        k2: K,
        b2: Binding<V, B>,
        shift: u32,
    ) -> Node<K, V, B> {
        if hash_exhausted(shift) {
            debug_assert_eq!(h1, h2);
            return Node::Collision(CollisionNode {
                hash: h1,
                entries: vec![(k1, b1), (k2, b2)],
            });
        }
        let m1 = mask(h1, shift);
        let m2 = mask(h2, shift);
        if m1 == m2 {
            let child = Node::pair(h1, k1, b1, h2, k2, b2, next_shift(shift));
            Node::Bitmap(BitmapNode {
                bitmap: SlotBitmap::EMPTY.with(m1, Category::Node),
                slots: Box::new([Slot::Child(Arc::new(child))]),
            })
        } else {
            let c1 = b1.category();
            let c2 = b2.category();
            let bitmap = SlotBitmap::EMPTY.with(m1, c1).with(m2, c2);
            let i1 = bitmap.slot_index(c1, m1);
            let s1 = Node::slot_of(k1, b1);
            let s2 = Node::slot_of(k2, b2);
            let slots: Box<[Slot<K, V, B>]> = if i1 == 0 {
                Box::new([s1, s2])
            } else {
                Box::new([s2, s1])
            };
            Node::Bitmap(BitmapNode { bitmap, slots })
        }
    }

    fn get(&self, hash: u32, shift: u32, key: &K) -> Option<BindingRef<'_, V, B>> {
        match self {
            Node::Collision(c) => c
                .entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, b)| BindingRef::of(b)),
            Node::Bitmap(b) => {
                // Fused dispatch: category and slot index from one pass.
                match b.bitmap.locate(mask(hash, shift)) {
                    (Category::Empty, _) => None,
                    (Category::Cat1, idx) => match &b.slots[idx] {
                        Slot::One(k, v) if k == key => Some(BindingRef::One(v)),
                        Slot::One(..) => None,
                        _ => unreachable!("bitmap says CAT1"),
                    },
                    (Category::Cat2, idx) => match &b.slots[idx] {
                        Slot::Many(k, bag) if k == key => Some(BindingRef::Many(bag)),
                        Slot::Many(..) => None,
                        _ => unreachable!("bitmap says CAT2"),
                    },
                    (Category::Node, idx) => match &b.slots[idx] {
                        Slot::Child(child) => child.get(hash, next_shift(shift), key),
                        _ => unreachable!("bitmap says NODE"),
                    },
                }
            }
        }
    }

    fn inserted(&self, hash: u32, shift: u32, key: &K, value: &V) -> Inserted<K, V, B> {
        match self {
            Node::Collision(c) => {
                debug_assert_eq!(c.hash, hash);
                match c.entries.iter().position(|(k, _)| k == key) {
                    Some(pos) => match c.entries[pos].1.inserted(value) {
                        None => Inserted::Unchanged,
                        Some(binding) => {
                            let mut entries = c.entries.clone();
                            entries[pos].1 = binding;
                            Inserted::NewTuple(Node::Collision(CollisionNode {
                                hash: c.hash,
                                entries,
                            }))
                        }
                    },
                    None => {
                        let mut entries = c.entries.clone();
                        entries.push((key.clone(), Binding::One(value.clone())));
                        Inserted::NewKey(Node::Collision(CollisionNode {
                            hash: c.hash,
                            entries,
                        }))
                    }
                }
            }
            Node::Bitmap(b) => {
                let m = mask(hash, shift);
                match b.bitmap.get(m) {
                    Category::Empty => {
                        let bitmap = b.bitmap.with(m, Category::Cat1);
                        let idx = bitmap.slot_index(Category::Cat1, m);
                        Inserted::NewKey(Node::Bitmap(BitmapNode {
                            bitmap,
                            slots: inserted_at(
                                &b.slots,
                                idx,
                                Slot::One(key.clone(), value.clone()),
                            ),
                        }))
                    }
                    Category::Cat1 => {
                        let idx = b.bitmap.slot_index(Category::Cat1, m);
                        let (ek, ev) = match &b.slots[idx] {
                            Slot::One(k, v) => (k, v),
                            _ => unreachable!("bitmap says CAT1"),
                        };
                        if ek == key {
                            if ev == value {
                                return Inserted::Unchanged;
                            }
                            // Promote 1:1 → 1:n: the slot migrates CAT1 → CAT2.
                            let bag = B::from_two(ev.clone(), value.clone());
                            let bitmap = b.bitmap.with(m, Category::Cat2);
                            let to = bitmap.slot_index(Category::Cat2, m);
                            return Inserted::NewTuple(Node::Bitmap(BitmapNode {
                                bitmap,
                                slots: migrated(&b.slots, idx, to, Slot::Many(key.clone(), bag)),
                            }));
                        }
                        // Prefix clash with a different key: push both down.
                        let child = Node::pair(
                            hash32(ek),
                            ek.clone(),
                            Binding::One(ev.clone()),
                            hash,
                            key.clone(),
                            Binding::One(value.clone()),
                            next_shift(shift),
                        );
                        let bitmap = b.bitmap.with(m, Category::Node);
                        let to = bitmap.slot_index(Category::Node, m);
                        Inserted::NewKey(Node::Bitmap(BitmapNode {
                            bitmap,
                            slots: migrated(&b.slots, idx, to, Slot::Child(Arc::new(child))),
                        }))
                    }
                    Category::Cat2 => {
                        let idx = b.bitmap.slot_index(Category::Cat2, m);
                        let (ek, bag) = match &b.slots[idx] {
                            Slot::Many(k, bag) => (k, bag),
                            _ => unreachable!("bitmap says CAT2"),
                        };
                        if ek == key {
                            return match bag.inserted(value) {
                                None => Inserted::Unchanged,
                                Some(bag) => Inserted::NewTuple(Node::Bitmap(BitmapNode {
                                    bitmap: b.bitmap,
                                    slots: replaced_at(&b.slots, idx, Slot::Many(key.clone(), bag)),
                                })),
                            };
                        }
                        let child = Node::pair(
                            hash32(ek),
                            ek.clone(),
                            Binding::Many(bag.clone()),
                            hash,
                            key.clone(),
                            Binding::One(value.clone()),
                            next_shift(shift),
                        );
                        let bitmap = b.bitmap.with(m, Category::Node);
                        let to = bitmap.slot_index(Category::Node, m);
                        Inserted::NewKey(Node::Bitmap(BitmapNode {
                            bitmap,
                            slots: migrated(&b.slots, idx, to, Slot::Child(Arc::new(child))),
                        }))
                    }
                    Category::Node => {
                        let idx = b.bitmap.slot_index(Category::Node, m);
                        let child = match &b.slots[idx] {
                            Slot::Child(c) => c,
                            _ => unreachable!("bitmap says NODE"),
                        };
                        let rebuild = |n: Node<K, V, B>| {
                            Node::Bitmap(BitmapNode {
                                bitmap: b.bitmap,
                                slots: replaced_at(&b.slots, idx, Slot::Child(Arc::new(n))),
                            })
                        };
                        match child.inserted(hash, next_shift(shift), key, value) {
                            Inserted::Unchanged => Inserted::Unchanged,
                            Inserted::NewTuple(n) => Inserted::NewTuple(rebuild(n)),
                            Inserted::NewKey(n) => Inserted::NewKey(rebuild(n)),
                        }
                    }
                }
            }
        }
    }

    /// In-place insert driven by `Arc` uniqueness: a uniquely-owned node is
    /// edited directly (slot payloads moved, never cloned; `CAT2` bags
    /// edited through [`ValueBag::insert_mut`]); a shared node falls back to
    /// the persistent path copy for its whole subtree. Takes the tuple by
    /// ownership so the common paths are clone-free.
    fn insert_in_place(
        this: &mut Arc<Node<K, V, B>>,
        hash: u32,
        shift: u32,
        key: K,
        value: V,
    ) -> EditInserted {
        match Arc::get_mut(this) {
            Some(Node::Collision(c)) => {
                debug_assert_eq!(c.hash, hash);
                match c.entries.iter().position(|(k, _)| *k == key) {
                    Some(pos) => {
                        // Move the entry out (capacity is preserved, so the
                        // push below cannot reallocate), edit, put it back.
                        let (k, binding) = c.entries.swap_remove(pos);
                        match binding {
                            Binding::One(v) if v == value => {
                                c.entries.push((k, Binding::One(v)));
                                EditInserted::Unchanged
                            }
                            Binding::One(v) => {
                                c.entries.push((k, Binding::Many(B::from_two(v, value))));
                                EditInserted::NewTuple
                            }
                            Binding::Many(mut bag) => {
                                let grew = bag.insert_mut(value);
                                c.entries.push((k, Binding::Many(bag)));
                                if grew {
                                    EditInserted::NewTuple
                                } else {
                                    EditInserted::Unchanged
                                }
                            }
                        }
                    }
                    None => {
                        c.entries.push((key, Binding::One(value)));
                        EditInserted::NewKey
                    }
                }
            }
            Some(Node::Bitmap(b)) => {
                let m = mask(hash, shift);
                let (cat, idx) = b.bitmap.locate(m);
                match cat {
                    Category::Empty => {
                        b.bitmap = b.bitmap.with(m, Category::Cat1);
                        let idx = b.bitmap.slot_index(Category::Cat1, m);
                        b.slots = inserted_at_owned(
                            std::mem::take(&mut b.slots),
                            idx,
                            Slot::One(key, value),
                        );
                        EditInserted::NewKey
                    }
                    Category::Cat1 => {
                        let (ek, ev) = match &b.slots[idx] {
                            Slot::One(k, v) => (k, v),
                            _ => unreachable!("bitmap says CAT1"),
                        };
                        if *ek == key {
                            if *ev == value {
                                return EditInserted::Unchanged;
                            }
                            // Promote 1:1 → 1:n in place: CAT1 → CAT2, the
                            // existing value moving into the fresh bag.
                            b.bitmap = b.bitmap.with(m, Category::Cat2);
                            let to = b.bitmap.slot_index(Category::Cat2, m);
                            migrate_map(&mut b.slots, idx, to, |slot| {
                                let Slot::One(k, v) = slot else {
                                    unreachable!("bitmap says CAT1")
                                };
                                Slot::Many(k, B::from_two(v, value))
                            });
                            return EditInserted::NewTuple;
                        }
                        // Prefix clash: both bindings descend; CAT1 → NODE.
                        let existing_hash = hash32(ek);
                        b.bitmap = b.bitmap.with(m, Category::Node);
                        let to = b.bitmap.slot_index(Category::Node, m);
                        migrate_map(&mut b.slots, idx, to, |slot| {
                            let Slot::One(k, v) = slot else {
                                unreachable!("bitmap says CAT1")
                            };
                            Slot::Child(Arc::new(Node::pair(
                                existing_hash,
                                k,
                                Binding::One(v),
                                hash,
                                key,
                                Binding::One(value),
                                next_shift(shift),
                            )))
                        });
                        EditInserted::NewKey
                    }
                    Category::Cat2 => {
                        let (ek, _) = match &b.slots[idx] {
                            Slot::Many(k, bag) => (k, bag),
                            _ => unreachable!("bitmap says CAT2"),
                        };
                        if *ek == key {
                            let Slot::Many(_, bag) = &mut b.slots[idx] else {
                                unreachable!("bitmap says CAT2")
                            };
                            return if bag.insert_mut(value) {
                                EditInserted::NewTuple
                            } else {
                                EditInserted::Unchanged
                            };
                        }
                        let existing_hash = hash32(ek);
                        b.bitmap = b.bitmap.with(m, Category::Node);
                        let to = b.bitmap.slot_index(Category::Node, m);
                        migrate_map(&mut b.slots, idx, to, |slot| {
                            let Slot::Many(k, bag) = slot else {
                                unreachable!("bitmap says CAT2")
                            };
                            Slot::Child(Arc::new(Node::pair(
                                existing_hash,
                                k,
                                Binding::Many(bag),
                                hash,
                                key,
                                Binding::One(value),
                                next_shift(shift),
                            )))
                        });
                        EditInserted::NewKey
                    }
                    Category::Node => {
                        let Slot::Child(child) = &mut b.slots[idx] else {
                            unreachable!("bitmap says NODE")
                        };
                        Node::insert_in_place(child, hash, next_shift(shift), key, value)
                    }
                }
            }
            None => match this.inserted(hash, shift, &key, &value) {
                Inserted::Unchanged => EditInserted::Unchanged,
                Inserted::NewTuple(n) => {
                    *this = Arc::new(n);
                    EditInserted::NewTuple
                }
                Inserted::NewKey(n) => {
                    *this = Arc::new(n);
                    EditInserted::NewKey
                }
            },
        }
    }

    /// In-place twin of [`Node::slot_removed`] for uniquely-owned nodes:
    /// removes payload slot `idx`, or — when canonicalization demands it —
    /// hands back the surviving binding (moved out) for the parent to
    /// inline, leaving `b` consumed.
    fn slot_removed_in_place(
        b: &mut BitmapNode<K, V, B>,
        m: u32,
        idx: usize,
        shift: u32,
    ) -> Option<(K, Binding<V, B>)> {
        let bitmap = b.bitmap.with(m, Category::Empty);
        if shift > 0 && bitmap.payload_arity() == 1 && bitmap.node_arity() == 0 {
            // Exactly one payload slot survives: offer it for inlining.
            debug_assert_eq!(b.slots.len(), 2);
            let mut slots = std::mem::take(&mut b.slots).into_vec();
            return Some(match slots.swap_remove(1 - idx) {
                Slot::One(k, v) => (k, Binding::One(v)),
                Slot::Many(k, bag) => (k, Binding::Many(bag)),
                Slot::Child(_) => unreachable!("both slots are payload"),
            });
        }
        b.bitmap = bitmap;
        b.slots = removed_at_owned(std::mem::take(&mut b.slots), idx);
        None
    }

    /// In-place tuple removal (same ownership discipline and the same
    /// canonicalization as [`Node::tuple_removed`]).
    fn tuple_remove_in_place(
        this: &mut Arc<Node<K, V, B>>,
        hash: u32,
        shift: u32,
        key: &K,
        value: &V,
    ) -> EditTupleRemoved<K, V, B> {
        match Arc::get_mut(this) {
            Some(Node::Collision(c)) => {
                let Some(pos) = c.entries.iter().position(|(k, _)| k == key) else {
                    return EditTupleRemoved::NotFound;
                };
                match &mut c.entries[pos].1 {
                    Binding::One(v) => {
                        if v != value {
                            return EditTupleRemoved::NotFound;
                        }
                        c.entries.swap_remove(pos);
                        if c.entries.len() == 1 {
                            let (k, b) = c.entries.pop().expect("len == 1");
                            return EditTupleRemoved::Single {
                                key: k,
                                binding: b,
                                key_gone: true,
                            };
                        }
                        EditTupleRemoved::Removed { key_gone: true }
                    }
                    Binding::Many(bag) => match bag.remove_mut(value) {
                        BagEdited::NotFound => EditTupleRemoved::NotFound,
                        BagEdited::Shrunk => EditTupleRemoved::Removed { key_gone: false },
                        BagEdited::Single(survivor) => {
                            c.entries[pos].1 = Binding::One(survivor);
                            EditTupleRemoved::Removed { key_gone: false }
                        }
                    },
                }
            }
            Some(Node::Bitmap(b)) => {
                let m = mask(hash, shift);
                let (cat, idx) = b.bitmap.locate(m);
                match cat {
                    Category::Empty => EditTupleRemoved::NotFound,
                    Category::Cat1 => {
                        let matches = match &b.slots[idx] {
                            Slot::One(k, v) => k == key && v == value,
                            _ => unreachable!("bitmap says CAT1"),
                        };
                        if !matches {
                            return EditTupleRemoved::NotFound;
                        }
                        match Node::slot_removed_in_place(b, m, idx, shift) {
                            None => EditTupleRemoved::Removed { key_gone: true },
                            Some((k, binding)) => EditTupleRemoved::Single {
                                key: k,
                                binding,
                                key_gone: true,
                            },
                        }
                    }
                    Category::Cat2 => {
                        let matches = match &b.slots[idx] {
                            Slot::Many(k, _) => k == key,
                            _ => unreachable!("bitmap says CAT2"),
                        };
                        if !matches {
                            return EditTupleRemoved::NotFound;
                        }
                        let Slot::Many(_, bag) = &mut b.slots[idx] else {
                            unreachable!("bitmap says CAT2")
                        };
                        match bag.remove_mut(value) {
                            BagEdited::NotFound => EditTupleRemoved::NotFound,
                            BagEdited::Shrunk => EditTupleRemoved::Removed { key_gone: false },
                            BagEdited::Single(survivor) => {
                                // Demote 1:n → 1:1 in place: CAT2 → CAT1,
                                // dropping the consumed bag.
                                b.bitmap = b.bitmap.with(m, Category::Cat1);
                                let to = b.bitmap.slot_index(Category::Cat1, m);
                                migrate_map(&mut b.slots, idx, to, |slot| {
                                    let Slot::Many(k, _) = slot else {
                                        unreachable!("bitmap says CAT2")
                                    };
                                    Slot::One(k, survivor)
                                });
                                EditTupleRemoved::Removed { key_gone: false }
                            }
                        }
                    }
                    Category::Node => {
                        let Slot::Child(child) = &mut b.slots[idx] else {
                            unreachable!("bitmap says NODE")
                        };
                        match Node::tuple_remove_in_place(
                            child,
                            hash,
                            next_shift(shift),
                            key,
                            value,
                        ) {
                            EditTupleRemoved::NotFound => EditTupleRemoved::NotFound,
                            EditTupleRemoved::Removed { key_gone } => {
                                EditTupleRemoved::Removed { key_gone }
                            }
                            EditTupleRemoved::Single {
                                key: k,
                                binding,
                                key_gone,
                            } => {
                                if shift > 0
                                    && b.bitmap.payload_arity() == 0
                                    && b.bitmap.node_arity() == 1
                                {
                                    return EditTupleRemoved::Single {
                                        key: k,
                                        binding,
                                        key_gone,
                                    };
                                }
                                let cat = binding.category();
                                b.bitmap = b.bitmap.with(m, cat);
                                let to = b.bitmap.slot_index(cat, m);
                                migrate_map(&mut b.slots, idx, to, |_child| {
                                    Node::slot_of(k, binding)
                                });
                                EditTupleRemoved::Removed { key_gone }
                            }
                        }
                    }
                }
            }
            None => match this.tuple_removed(hash, shift, key, value) {
                TupleRemoved::NotFound => EditTupleRemoved::NotFound,
                TupleRemoved::Node { node, key_gone } => {
                    *this = Arc::new(node);
                    EditTupleRemoved::Removed { key_gone }
                }
                TupleRemoved::Single {
                    key,
                    binding,
                    key_gone,
                } => EditTupleRemoved::Single {
                    key,
                    binding,
                    key_gone,
                },
            },
        }
    }

    /// In-place key removal (same ownership discipline and the same
    /// canonicalization as [`Node::key_removed`]).
    fn key_remove_in_place(
        this: &mut Arc<Node<K, V, B>>,
        hash: u32,
        shift: u32,
        key: &K,
    ) -> EditKeyRemoved<K, V, B> {
        match Arc::get_mut(this) {
            Some(Node::Collision(c)) => {
                let Some(pos) = c.entries.iter().position(|(k, _)| k == key) else {
                    return EditKeyRemoved::NotFound;
                };
                let tuples_removed = c.entries[pos].1.len();
                c.entries.swap_remove(pos);
                if c.entries.len() == 1 {
                    let (k, b) = c.entries.pop().expect("len == 1");
                    return EditKeyRemoved::Single {
                        key: k,
                        binding: b,
                        tuples_removed,
                    };
                }
                EditKeyRemoved::Removed { tuples_removed }
            }
            Some(Node::Bitmap(b)) => {
                let m = mask(hash, shift);
                let (cat, idx) = b.bitmap.locate(m);
                let tuples_removed = match cat {
                    Category::Empty => return EditKeyRemoved::NotFound,
                    Category::Cat1 => match &b.slots[idx] {
                        Slot::One(k, _) if k == key => 1,
                        Slot::One(..) => return EditKeyRemoved::NotFound,
                        _ => unreachable!("bitmap says CAT1"),
                    },
                    Category::Cat2 => match &b.slots[idx] {
                        Slot::Many(k, bag) if k == key => bag.len(),
                        Slot::Many(..) => return EditKeyRemoved::NotFound,
                        _ => unreachable!("bitmap says CAT2"),
                    },
                    Category::Node => {
                        let Slot::Child(child) = &mut b.slots[idx] else {
                            unreachable!("bitmap says NODE")
                        };
                        return match Node::key_remove_in_place(child, hash, next_shift(shift), key)
                        {
                            EditKeyRemoved::NotFound => EditKeyRemoved::NotFound,
                            EditKeyRemoved::Removed { tuples_removed } => {
                                EditKeyRemoved::Removed { tuples_removed }
                            }
                            EditKeyRemoved::Single {
                                key: k,
                                binding,
                                tuples_removed,
                            } => {
                                if shift > 0
                                    && b.bitmap.payload_arity() == 0
                                    && b.bitmap.node_arity() == 1
                                {
                                    return EditKeyRemoved::Single {
                                        key: k,
                                        binding,
                                        tuples_removed,
                                    };
                                }
                                let cat = binding.category();
                                b.bitmap = b.bitmap.with(m, cat);
                                let to = b.bitmap.slot_index(cat, m);
                                migrate_map(&mut b.slots, idx, to, |_child| {
                                    Node::slot_of(k, binding)
                                });
                                EditKeyRemoved::Removed { tuples_removed }
                            }
                        };
                    }
                };
                match Node::slot_removed_in_place(b, m, idx, shift) {
                    None => EditKeyRemoved::Removed { tuples_removed },
                    Some((k, binding)) => EditKeyRemoved::Single {
                        key: k,
                        binding,
                        tuples_removed,
                    },
                }
            }
            None => match this.key_removed(hash, shift, key) {
                KeyRemoved::NotFound => EditKeyRemoved::NotFound,
                KeyRemoved::Node {
                    node,
                    tuples_removed,
                } => {
                    *this = Arc::new(node);
                    EditKeyRemoved::Removed { tuples_removed }
                }
                KeyRemoved::Single {
                    key,
                    binding,
                    tuples_removed,
                } => EditKeyRemoved::Single {
                    key,
                    binding,
                    tuples_removed,
                },
            },
        }
    }

    /// Removes one payload slot (whatever its category), canonicalizing:
    /// below the root, a node left with a single payload slot hands that
    /// payload to the parent for inlining instead of surviving.
    fn slot_removed(
        b: &BitmapNode<K, V, B>,
        m: u32,
        idx: usize,
        shift: u32,
    ) -> SlotRemoved<K, V, B> {
        let bitmap = b.bitmap.with(m, Category::Empty);
        if shift > 0 && bitmap.payload_arity() == 1 && bitmap.node_arity() == 0 {
            // Exactly one payload slot survives: offer it for inlining.
            debug_assert_eq!(b.slots.len(), 2);
            let (key, binding) = match &b.slots[1 - idx] {
                Slot::One(k, v) => (k.clone(), Binding::One(v.clone())),
                Slot::Many(k, bag) => (k.clone(), Binding::Many(bag.clone())),
                Slot::Child(_) => unreachable!("both slots are payload"),
            };
            SlotRemoved::Single { key, binding }
        } else {
            SlotRemoved::Node(Node::Bitmap(BitmapNode {
                bitmap,
                slots: removed_at(&b.slots, idx),
            }))
        }
    }

    fn tuple_removed(&self, hash: u32, shift: u32, key: &K, value: &V) -> TupleRemoved<K, V, B> {
        match self {
            Node::Collision(c) => {
                let Some(pos) = c.entries.iter().position(|(k, _)| k == key) else {
                    return TupleRemoved::NotFound;
                };
                match c.entries[pos].1.removed(value) {
                    BindingRemoved::NotFound => TupleRemoved::NotFound,
                    BindingRemoved::Keep(binding) => {
                        let mut entries = c.entries.clone();
                        entries[pos].1 = binding;
                        TupleRemoved::Node {
                            node: Node::Collision(CollisionNode {
                                hash: c.hash,
                                entries,
                            }),
                            key_gone: false,
                        }
                    }
                    BindingRemoved::Gone => {
                        if c.entries.len() == 2 {
                            let (k, b) = c.entries[1 - pos].clone();
                            return TupleRemoved::Single {
                                key: k,
                                binding: b,
                                key_gone: true,
                            };
                        }
                        let mut entries = c.entries.clone();
                        entries.remove(pos);
                        TupleRemoved::Node {
                            node: Node::Collision(CollisionNode {
                                hash: c.hash,
                                entries,
                            }),
                            key_gone: true,
                        }
                    }
                }
            }
            Node::Bitmap(b) => {
                let m = mask(hash, shift);
                match b.bitmap.get(m) {
                    Category::Empty => TupleRemoved::NotFound,
                    Category::Cat1 => {
                        let idx = b.bitmap.slot_index(Category::Cat1, m);
                        let matches = match &b.slots[idx] {
                            Slot::One(k, v) => k == key && v == value,
                            _ => unreachable!("bitmap says CAT1"),
                        };
                        if !matches {
                            return TupleRemoved::NotFound;
                        }
                        match Node::slot_removed(b, m, idx, shift) {
                            SlotRemoved::Node(node) => TupleRemoved::Node {
                                node,
                                key_gone: true,
                            },
                            SlotRemoved::Single { key, binding } => TupleRemoved::Single {
                                key,
                                binding,
                                key_gone: true,
                            },
                        }
                    }
                    Category::Cat2 => {
                        let idx = b.bitmap.slot_index(Category::Cat2, m);
                        let (ek, bag) = match &b.slots[idx] {
                            Slot::Many(k, bag) => (k, bag),
                            _ => unreachable!("bitmap says CAT2"),
                        };
                        if ek != key {
                            return TupleRemoved::NotFound;
                        }
                        match bag.removed(value) {
                            BagRemoved::NotFound => TupleRemoved::NotFound,
                            BagRemoved::Bag(bag) => TupleRemoved::Node {
                                node: Node::Bitmap(BitmapNode {
                                    bitmap: b.bitmap,
                                    slots: replaced_at(&b.slots, idx, Slot::Many(key.clone(), bag)),
                                }),
                                key_gone: false,
                            },
                            BagRemoved::Single(survivor) => {
                                // Demote 1:n → 1:1: the slot migrates CAT2 → CAT1.
                                let bitmap = b.bitmap.with(m, Category::Cat1);
                                let to = bitmap.slot_index(Category::Cat1, m);
                                TupleRemoved::Node {
                                    node: Node::Bitmap(BitmapNode {
                                        bitmap,
                                        slots: migrated(
                                            &b.slots,
                                            idx,
                                            to,
                                            Slot::One(key.clone(), survivor),
                                        ),
                                    }),
                                    key_gone: false,
                                }
                            }
                        }
                    }
                    Category::Node => {
                        let idx = b.bitmap.slot_index(Category::Node, m);
                        let child = match &b.slots[idx] {
                            Slot::Child(c) => c,
                            _ => unreachable!("bitmap says NODE"),
                        };
                        match child.tuple_removed(hash, next_shift(shift), key, value) {
                            TupleRemoved::NotFound => TupleRemoved::NotFound,
                            TupleRemoved::Node { node, key_gone } => TupleRemoved::Node {
                                node: Node::Bitmap(BitmapNode {
                                    bitmap: b.bitmap,
                                    slots: replaced_at(&b.slots, idx, Slot::Child(Arc::new(node))),
                                }),
                                key_gone,
                            },
                            TupleRemoved::Single {
                                key: k,
                                binding,
                                key_gone,
                            } => {
                                if shift > 0
                                    && b.bitmap.payload_arity() == 0
                                    && b.bitmap.node_arity() == 1
                                {
                                    return TupleRemoved::Single {
                                        key: k,
                                        binding,
                                        key_gone,
                                    };
                                }
                                let cat = binding.category();
                                let bitmap = b.bitmap.with(m, cat);
                                let to = bitmap.slot_index(cat, m);
                                TupleRemoved::Node {
                                    node: Node::Bitmap(BitmapNode {
                                        bitmap,
                                        slots: migrated(
                                            &b.slots,
                                            idx,
                                            to,
                                            Node::slot_of(k, binding),
                                        ),
                                    }),
                                    key_gone,
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    fn key_removed(&self, hash: u32, shift: u32, key: &K) -> KeyRemoved<K, V, B> {
        match self {
            Node::Collision(c) => {
                let Some(pos) = c.entries.iter().position(|(k, _)| k == key) else {
                    return KeyRemoved::NotFound;
                };
                let tuples_removed = c.entries[pos].1.len();
                if c.entries.len() == 2 {
                    let (k, b) = c.entries[1 - pos].clone();
                    return KeyRemoved::Single {
                        key: k,
                        binding: b,
                        tuples_removed,
                    };
                }
                let mut entries = c.entries.clone();
                entries.remove(pos);
                KeyRemoved::Node {
                    node: Node::Collision(CollisionNode {
                        hash: c.hash,
                        entries,
                    }),
                    tuples_removed,
                }
            }
            Node::Bitmap(b) => {
                let m = mask(hash, shift);
                let (cat, idx, tuples_removed) = match b.bitmap.get(m) {
                    Category::Empty => return KeyRemoved::NotFound,
                    Category::Cat1 => {
                        let idx = b.bitmap.slot_index(Category::Cat1, m);
                        match &b.slots[idx] {
                            Slot::One(k, _) if k == key => (Category::Cat1, idx, 1),
                            Slot::One(..) => return KeyRemoved::NotFound,
                            _ => unreachable!("bitmap says CAT1"),
                        }
                    }
                    Category::Cat2 => {
                        let idx = b.bitmap.slot_index(Category::Cat2, m);
                        match &b.slots[idx] {
                            Slot::Many(k, bag) if k == key => (Category::Cat2, idx, bag.len()),
                            Slot::Many(..) => return KeyRemoved::NotFound,
                            _ => unreachable!("bitmap says CAT2"),
                        }
                    }
                    Category::Node => {
                        let idx = b.bitmap.slot_index(Category::Node, m);
                        let child = match &b.slots[idx] {
                            Slot::Child(c) => c,
                            _ => unreachable!("bitmap says NODE"),
                        };
                        return match child.key_removed(hash, next_shift(shift), key) {
                            KeyRemoved::NotFound => KeyRemoved::NotFound,
                            KeyRemoved::Node {
                                node,
                                tuples_removed,
                            } => KeyRemoved::Node {
                                node: Node::Bitmap(BitmapNode {
                                    bitmap: b.bitmap,
                                    slots: replaced_at(&b.slots, idx, Slot::Child(Arc::new(node))),
                                }),
                                tuples_removed,
                            },
                            KeyRemoved::Single {
                                key: k,
                                binding,
                                tuples_removed,
                            } => {
                                if shift > 0
                                    && b.bitmap.payload_arity() == 0
                                    && b.bitmap.node_arity() == 1
                                {
                                    return KeyRemoved::Single {
                                        key: k,
                                        binding,
                                        tuples_removed,
                                    };
                                }
                                let cat = binding.category();
                                let bitmap = b.bitmap.with(m, cat);
                                let to = bitmap.slot_index(cat, m);
                                KeyRemoved::Node {
                                    node: Node::Bitmap(BitmapNode {
                                        bitmap,
                                        slots: migrated(
                                            &b.slots,
                                            idx,
                                            to,
                                            Node::slot_of(k, binding),
                                        ),
                                    }),
                                    tuples_removed,
                                }
                            }
                        };
                    }
                };
                let _ = cat;
                match Node::slot_removed(b, m, idx, shift) {
                    SlotRemoved::Node(node) => KeyRemoved::Node {
                        node,
                        tuples_removed,
                    },
                    SlotRemoved::Single { key, binding } => KeyRemoved::Single {
                        key,
                        binding,
                        tuples_removed,
                    },
                }
            }
        }
    }
}

/// Outcome of [`Node::slot_removed`].
enum SlotRemoved<K, V, B> {
    Node(Node<K, V, B>),
    Single { key: K, binding: Binding<V, B> },
}

/// Borrowed view of one key's values. Returned by [`AxiomMultiMap::get`].
#[derive(Debug)]
pub enum BindingRef<'a, V, B> {
    /// The key maps to exactly one (inlined) value.
    One(&'a V),
    /// The key maps to a nested bag of ≥ 2 values.
    Many(&'a B),
}

impl<'a, V, B> Clone for BindingRef<'a, V, B> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'a, V, B> Copy for BindingRef<'a, V, B> {}

impl<'a, V: Clone + Eq + Hash, B: ValueBag<V>> BindingRef<'a, V, B> {
    fn of(binding: &'a Binding<V, B>) -> Self {
        match binding {
            Binding::One(v) => BindingRef::One(v),
            Binding::Many(bag) => BindingRef::Many(bag),
        }
    }

    /// Number of values in the binding.
    pub fn len(&self) -> usize {
        match self {
            BindingRef::One(_) => 1,
            BindingRef::Many(bag) => bag.len(),
        }
    }

    /// Always false: bindings hold at least one value.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True if `value` is among the binding's values.
    pub fn contains(&self, value: &V) -> bool {
        match self {
            BindingRef::One(v) => *v == value,
            BindingRef::Many(bag) => bag.contains(value),
        }
    }

    /// Iterates the binding's values.
    pub fn iter(&self) -> BindingIter<'a, V, B> {
        match self {
            BindingRef::One(v) => BindingIter::One(std::iter::once(*v)),
            BindingRef::Many(bag) => BindingIter::Many(bag.iter()),
        }
    }
}

/// Iterator over one binding's values. Created by [`BindingRef::iter`].
pub enum BindingIter<'a, V: 'a, B: ValueBag<V> + 'a> {
    /// Singleton value.
    One(std::iter::Once<&'a V>),
    /// Nested bag.
    Many(B::Iter<'a>),
}

impl<'a, V, B: ValueBag<V>> Iterator for BindingIter<'a, V, B> {
    type Item = &'a V;
    fn next(&mut self) -> Option<&'a V> {
        match self {
            BindingIter::One(it) => it.next(),
            BindingIter::Many(it) => it.next(),
        }
    }
}

impl<'a, V, B: ValueBag<V>> std::fmt::Debug for BindingIter<'a, V, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BindingIter { .. }")
    }
}

/// Iterator over the values bound to one key; empty when the key is absent.
/// Created by [`AxiomMultiMap::values_of`].
pub struct ValuesOf<'a, V: 'a, B: ValueBag<V> + 'a> {
    inner: Option<BindingIter<'a, V, B>>,
}

impl<'a, V, B: ValueBag<V>> Iterator for ValuesOf<'a, V, B> {
    type Item = &'a V;
    fn next(&mut self) -> Option<&'a V> {
        self.inner.as_mut()?.next()
    }
}

impl<'a, V, B: ValueBag<V>> std::fmt::Debug for ValuesOf<'a, V, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ValuesOf { .. }")
    }
}

// ---------------------------------------------------------------------------
// Structural relation diff: a lockstep node walk.
// ---------------------------------------------------------------------------
//
// `diff_nodes` walks two multi-map tries in lockstep, comparing the branch
// under each 5-bit mask. Pointer-identical sub-tries (`Arc::ptr_eq`) are
// skipped wholesale — the sharing the AXIOM canonical form guarantees after
// persistent edits — so the walk is O(changed) for operands that share
// structure. Bindings compare at tuple granularity: a `CAT1`×`CAT2` pair at
// the same mask (a promoted or demoted key) contributes only the values that
// actually differ, and `CAT2`×`CAT2` pairs diff their bags value by value.

/// What one multi-map node holds under a 5-bit mask.
enum AtM<'a, K, V, B> {
    Nothing,
    /// `CAT1`: an inlined `1:1` tuple.
    One(&'a K, &'a V),
    /// `CAT2`: a key with a nested bag of ≥ 2 values.
    Many(&'a K, &'a B),
    /// `NODE`: a sub-trie.
    Sub(&'a Arc<Node<K, V, B>>),
}

fn at_m<'a, K, V, B>(b: &'a BitmapNode<K, V, B>, m: u32) -> AtM<'a, K, V, B> {
    let (cat, idx) = b.bitmap.locate(m);
    match cat {
        Category::Empty => AtM::Nothing,
        Category::Cat1 => match &b.slots[idx] {
            Slot::One(k, v) => AtM::One(k, v),
            _ => unreachable!("CAT1 tag over a non-1:1 slot"),
        },
        Category::Cat2 => match &b.slots[idx] {
            Slot::Many(k, bag) => AtM::Many(k, bag),
            _ => unreachable!("CAT2 tag over a non-1:n slot"),
        },
        Category::Node => match &b.slots[idx] {
            Slot::Child(c) => AtM::Sub(c),
            _ => unreachable!("NODE tag over a payload slot"),
        },
    }
}

/// Invokes `f` for every `(key, value)` tuple stored in the sub-trie.
fn for_each_tuple_node<K, V, B>(node: &Node<K, V, B>, f: &mut impl FnMut(&K, &V))
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
    B: ValueBag<V>,
{
    match node {
        Node::Bitmap(b) => {
            for slot in b.slots.iter() {
                match slot {
                    Slot::One(k, v) => f(k, v),
                    Slot::Many(k, bag) => {
                        for v in bag.iter() {
                            f(k, v);
                        }
                    }
                    Slot::Child(c) => for_each_tuple_node(c, f),
                }
            }
        }
        Node::Collision(c) => {
            for (k, binding) in &c.entries {
                for v in BindingRef::of(binding).iter() {
                    f(k, v);
                }
            }
        }
    }
}

/// Emits the tuple-level delta between two same-key bindings into `out`.
/// Bindings under distinct keys never reach here.
fn diff_bindings<K, V, B>(
    key: &K,
    a: BindingRef<'_, V, B>,
    b: BindingRef<'_, V, B>,
    out: &mut trie_common::ops::MultiMapDiff<K, V>,
) where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
    B: ValueBag<V>,
{
    for v in a.iter() {
        if !b.contains(v) {
            out.removed.push((key.clone(), v.clone()));
        }
    }
    for v in b.iter() {
        if !a.contains(v) {
            out.added.push((key.clone(), v.clone()));
        }
    }
}

/// Emits every tuple of `binding` under `key` into `sink`.
fn emit_binding<K, V, B>(key: &K, binding: BindingRef<'_, V, B>, sink: &mut Vec<(K, V)>)
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
    B: ValueBag<V>,
{
    for v in binding.iter() {
        sink.push((key.clone(), v.clone()));
    }
}

/// Emits the delta between a payload binding on one side and a sub-trie on
/// the other. `payload_is_old` tells which orientation the pair has: true
/// when the binding comes from `self` (the old side) and the sub-trie from
/// `other`.
fn diff_binding_vs_sub<K, V, B>(
    key: &K,
    binding: BindingRef<'_, V, B>,
    sub: &Node<K, V, B>,
    shift: u32,
    payload_is_old: bool,
    out: &mut trie_common::ops::MultiMapDiff<K, V>,
) where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
    B: ValueBag<V>,
{
    let in_sub = sub.get(hash32(key), next_shift(shift), key);
    // Tuples of the payload binding missing from the sub-trie.
    for v in binding.iter() {
        let present = in_sub.is_some_and(|theirs| theirs.contains(v));
        if !present {
            let pair = (key.clone(), v.clone());
            if payload_is_old {
                out.removed.push(pair);
            } else {
                out.added.push(pair);
            }
        }
    }
    // Tuples of the sub-trie missing from the payload binding: every tuple
    // under a different key, plus same-key values the binding lacks.
    for_each_tuple_node(sub, &mut |k, v| {
        if k == key && binding.contains(v) {
            return;
        }
        let pair = (k.clone(), v.clone());
        if payload_is_old {
            out.added.push(pair);
        } else {
            out.removed.push(pair);
        }
    });
}

/// Lockstep diff of two multi-map sub-tries at the same depth, accumulating
/// tuple-granularity added/removed entries into `out` (`a` old, `b` new).
fn diff_nodes<K, V, B>(
    a: &Node<K, V, B>,
    b: &Node<K, V, B>,
    shift: u32,
    out: &mut trie_common::ops::MultiMapDiff<K, V>,
) where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
    B: ValueBag<V>,
{
    match (a, b) {
        (Node::Bitmap(x), Node::Bitmap(y)) => {
            for m in 0..32u32 {
                match (at_m(x, m), at_m(y, m)) {
                    (AtM::Nothing, AtM::Nothing) => {}
                    (AtM::One(k, v), AtM::Nothing) => {
                        out.removed.push((k.clone(), v.clone()));
                    }
                    (AtM::Many(k, bag), AtM::Nothing) => {
                        emit_binding::<K, V, B>(k, BindingRef::Many(bag), &mut out.removed);
                    }
                    (AtM::Sub(ac), AtM::Nothing) => {
                        for_each_tuple_node(ac, &mut |k, v| {
                            out.removed.push((k.clone(), v.clone()));
                        });
                    }
                    (AtM::Nothing, AtM::One(k, v)) => {
                        out.added.push((k.clone(), v.clone()));
                    }
                    (AtM::Nothing, AtM::Many(k, bag)) => {
                        emit_binding::<K, V, B>(k, BindingRef::Many(bag), &mut out.added);
                    }
                    (AtM::Nothing, AtM::Sub(bc)) => {
                        for_each_tuple_node(bc, &mut |k, v| {
                            out.added.push((k.clone(), v.clone()));
                        });
                    }
                    (AtM::One(ka, va), AtM::One(kb, vb)) => {
                        if ka == kb {
                            if va != vb {
                                out.removed.push((ka.clone(), va.clone()));
                                out.added.push((kb.clone(), vb.clone()));
                            }
                        } else {
                            out.removed.push((ka.clone(), va.clone()));
                            out.added.push((kb.clone(), vb.clone()));
                        }
                    }
                    (AtM::One(ka, va), AtM::Many(kb, bb)) => {
                        if ka == kb {
                            // Promotion: the key gained values (and may have
                            // swapped its original one).
                            diff_bindings::<K, V, B>(
                                ka,
                                BindingRef::One(va),
                                BindingRef::Many(bb),
                                out,
                            );
                        } else {
                            out.removed.push((ka.clone(), va.clone()));
                            emit_binding::<K, V, B>(kb, BindingRef::Many(bb), &mut out.added);
                        }
                    }
                    (AtM::Many(ka, ba), AtM::One(kb, vb)) => {
                        if ka == kb {
                            // Demotion: the key shed values down to one.
                            diff_bindings::<K, V, B>(
                                ka,
                                BindingRef::Many(ba),
                                BindingRef::One(vb),
                                out,
                            );
                        } else {
                            emit_binding::<K, V, B>(ka, BindingRef::Many(ba), &mut out.removed);
                            out.added.push((kb.clone(), vb.clone()));
                        }
                    }
                    (AtM::Many(ka, ba), AtM::Many(kb, bb)) => {
                        if ka == kb {
                            if ba != bb {
                                diff_bindings::<K, V, B>(
                                    ka,
                                    BindingRef::Many(ba),
                                    BindingRef::Many(bb),
                                    out,
                                );
                            }
                        } else {
                            emit_binding::<K, V, B>(ka, BindingRef::Many(ba), &mut out.removed);
                            emit_binding::<K, V, B>(kb, BindingRef::Many(bb), &mut out.added);
                        }
                    }
                    (AtM::One(ka, va), AtM::Sub(bc)) => {
                        diff_binding_vs_sub(ka, BindingRef::One(va), bc, shift, true, out);
                    }
                    (AtM::Many(ka, ba), AtM::Sub(bc)) => {
                        diff_binding_vs_sub(ka, BindingRef::Many(ba), bc, shift, true, out);
                    }
                    (AtM::Sub(ac), AtM::One(kb, vb)) => {
                        diff_binding_vs_sub(kb, BindingRef::One(vb), ac, shift, false, out);
                    }
                    (AtM::Sub(ac), AtM::Many(kb, bag)) => {
                        diff_binding_vs_sub(kb, BindingRef::Many(bag), ac, shift, false, out);
                    }
                    (AtM::Sub(ac), AtM::Sub(bc)) => {
                        if !Arc::ptr_eq(ac, bc) {
                            diff_nodes(ac, bc, next_shift(shift), out);
                        }
                    }
                }
            }
        }
        (Node::Collision(x), Node::Collision(y)) => {
            for (k, binding_a) in &x.entries {
                match y.entries.iter().find(|(ky, _)| ky == k) {
                    None => {
                        emit_binding::<K, V, B>(k, BindingRef::of(binding_a), &mut out.removed);
                    }
                    Some((_, binding_b)) => {
                        if !binding_a.eq(binding_b) {
                            diff_bindings::<K, V, B>(
                                k,
                                BindingRef::of(binding_a),
                                BindingRef::of(binding_b),
                                out,
                            );
                        }
                    }
                }
            }
            for (k, binding_b) in &y.entries {
                if !x.entries.iter().any(|(kx, _)| kx == k) {
                    emit_binding::<K, V, B>(k, BindingRef::of(binding_b), &mut out.added);
                }
            }
        }
        // At equal depth a collision node only appears once the hash is
        // exhausted, where the canonical form forces the other side to be a
        // collision node too.
        (Node::Bitmap(_), Node::Collision(_)) | (Node::Collision(_), Node::Bitmap(_)) => {
            unreachable!("bitmap/collision mix at equal depth")
        }
    }
}

/// A persistent (immutable, structurally shared) multi-map on the AXIOM
/// encoding. See the [module documentation](self).
///
/// The third type parameter selects the `1:n` value-storage strategy and
/// defaults to nested [`AxiomSet`]s; [`crate::AxiomFusedMultiMap`] selects
/// the fusion strategy.
pub struct AxiomMultiMap<K, V, B = AxiomSet<V>> {
    pub(crate) root: Arc<Node<K, V, B>>,
    pub(crate) tuples: usize,
    pub(crate) keys: usize,
    marker: PhantomData<fn() -> B>,
}

impl<K, V, B> Clone for AxiomMultiMap<K, V, B> {
    fn clone(&self) -> Self {
        AxiomMultiMap {
            root: Arc::clone(&self.root),
            tuples: self.tuples,
            keys: self.keys,
            marker: PhantomData,
        }
    }
}

impl<K, V, B> AxiomMultiMap<K, V, B>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
    B: ValueBag<V>,
{
    /// Creates an empty multi-map.
    pub fn new() -> Self {
        AxiomMultiMap {
            root: Arc::new(Node::empty()),
            tuples: 0,
            keys: 0,
            marker: PhantomData,
        }
    }

    /// Total number of `(key, value)` tuples.
    pub fn tuple_count(&self) -> usize {
        self.tuples
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.keys
    }

    /// Alias for [`AxiomMultiMap::tuple_count`], matching conventional `len`.
    pub fn len(&self) -> usize {
        self.tuples
    }

    /// True if no tuple is stored.
    pub fn is_empty(&self) -> bool {
        self.tuples == 0
    }

    /// Borrowed view of the values bound to `key`.
    pub fn get(&self, key: &K) -> Option<BindingRef<'_, V, B>> {
        self.root.get(hash32(key), 0, key)
    }

    /// True if `key` maps to at least one value.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// True if the exact tuple `(key, value)` is present.
    pub fn contains_tuple(&self, key: &K, value: &V) -> bool {
        match self.get(key) {
            Some(binding) => binding.contains(value),
            None => false,
        }
    }

    /// Number of values bound to `key` (0 if absent).
    pub fn value_count(&self, key: &K) -> usize {
        self.get(key).map_or(0, |b| b.len())
    }

    /// Returns a multi-map additionally containing `(key, value)`; `self` is
    /// unchanged. Inserting a present tuple returns an identical multi-map.
    pub fn inserted(&self, key: K, value: V) -> Self {
        let mut next = self.clone();
        next.insert_mut(key, value);
        next
    }

    /// Inserts `(key, value)` in place: uniquely-owned trie nodes along the
    /// spine are edited directly, shared nodes are path-copied (other
    /// handles keep their version). Returns true if the relation grew.
    pub fn insert_mut(&mut self, key: K, value: V) -> bool {
        let hash = hash32(&key);
        match Node::insert_in_place(&mut self.root, hash, 0, key, value) {
            EditInserted::Unchanged => false,
            EditInserted::NewTuple => {
                self.tuples += 1;
                true
            }
            EditInserted::NewKey => {
                self.tuples += 1;
                self.keys += 1;
                true
            }
        }
    }

    /// Returns a multi-map without the tuple `(key, value)`; `self` is
    /// unchanged.
    pub fn tuple_removed(&self, key: &K, value: &V) -> Self {
        let mut next = self.clone();
        next.remove_tuple_mut(key, value);
        next
    }

    /// Removes the tuple `(key, value)` in place (editing uniquely-owned
    /// nodes, path-copying shared ones). Returns true if present.
    pub fn remove_tuple_mut(&mut self, key: &K, value: &V) -> bool {
        match Node::tuple_remove_in_place(&mut self.root, hash32(key), 0, key, value) {
            EditTupleRemoved::NotFound => false,
            EditTupleRemoved::Removed { key_gone } => {
                self.tuples -= 1;
                if key_gone {
                    self.keys -= 1;
                }
                true
            }
            EditTupleRemoved::Single {
                key: k,
                binding,
                key_gone,
            } => {
                self.root = Arc::new(root_with_single_binding(k, binding));
                self.tuples -= 1;
                if key_gone {
                    self.keys -= 1;
                }
                true
            }
        }
    }

    /// Returns a multi-map without any tuple for `key`; `self` is unchanged.
    pub fn key_removed(&self, key: &K) -> Self {
        let mut next = self.clone();
        next.remove_key_mut(key);
        next
    }

    /// Removes every tuple for `key` in place (editing uniquely-owned nodes,
    /// path-copying shared ones). Returns the number of tuples removed.
    pub fn remove_key_mut(&mut self, key: &K) -> usize {
        match Node::key_remove_in_place(&mut self.root, hash32(key), 0, key) {
            EditKeyRemoved::NotFound => 0,
            EditKeyRemoved::Removed { tuples_removed } => {
                self.tuples -= tuples_removed;
                self.keys -= 1;
                tuples_removed
            }
            EditKeyRemoved::Single {
                key: k,
                binding,
                tuples_removed,
            } => {
                self.root = Arc::new(root_with_single_binding(k, binding));
                self.tuples -= tuples_removed;
                self.keys -= 1;
                tuples_removed
            }
        }
    }

    /// Iterates all `(key, value)` tuples — the paper's flattened
    /// *Iteration (Entry)* sequence — in unspecified order.
    pub fn iter(&self) -> Tuples<'_, K, V, B> {
        Tuples::new(&self.root, self.tuples)
    }

    /// Iterates distinct keys — the paper's *Iteration (Key)* — in
    /// unspecified order.
    pub fn keys(&self) -> Keys<'_, K, V, B> {
        Keys {
            stack: vec![cursor_of(&self.root)],
            remaining: self.keys,
        }
    }

    /// Iterates `(key, values-view)` groups in unspecified order.
    pub fn entries(&self) -> Entries<'_, K, V, B> {
        Entries {
            stack: vec![cursor_of(&self.root)],
            remaining: self.keys,
        }
    }

    /// Iterates the values bound to `key` (nothing if the key is absent).
    pub fn values_of(&self, key: &K) -> ValuesOf<'_, V, B> {
        ValuesOf {
            inner: self.get(key).map(|binding| binding.iter()),
        }
    }

    /// The tuple-level delta from `self` (old) to `other` (new), computed by
    /// a lockstep structural walk that skips pointer-identical sub-tries.
    ///
    /// For operands derived from a common ancestor by k tuple edits the walk
    /// touches O(k · depth) nodes, independent of relation size. Bindings
    /// compare at tuple granularity: a key promoted from `1:1` to `1:n` (or
    /// demoted back) contributes only the values that actually differ.
    ///
    /// # Examples
    ///
    /// ```
    /// use axiom::AxiomMultiMap;
    ///
    /// let old = AxiomMultiMap::<&str, u32>::new().inserted("D", 4);
    /// let new = old.inserted("D", 5); // promotes "D" to 1:n
    /// let d = old.diff(&new);
    /// assert_eq!(d.added, vec![("D", 5)]);
    /// assert!(d.removed.is_empty());
    /// ```
    pub fn diff(&self, other: &Self) -> trie_common::ops::MultiMapDiff<K, V> {
        let mut out = trie_common::ops::MultiMapDiff::new();
        if Arc::ptr_eq(&self.root, &other.root) {
            return out;
        }
        if self.is_empty() {
            out.added
                .extend(other.iter().map(|(k, v)| (k.clone(), v.clone())));
            return out;
        }
        if other.is_empty() {
            out.removed
                .extend(self.iter().map(|(k, v)| (k.clone(), v.clone())));
            return out;
        }
        diff_nodes(&self.root, &other.root, 0, &mut out);
        out
    }

    /// Tuples in `self` or `other`.
    ///
    /// Two regimes: a much smaller `other` is folded in tuple by tuple
    /// (O(|other|) probes); similar-sized operands typically share structure
    /// from a common ancestor, so they route through the structural
    /// [`AxiomMultiMap::diff`] and cost O(changed).
    pub fn union(&self, other: &Self) -> Self {
        if Arc::ptr_eq(&self.root, &other.root) || other.is_empty() {
            return self.clone();
        }
        if self.is_empty() {
            return other.clone();
        }
        let mut out = self.clone();
        if other.tuples * 8 < self.tuples {
            for (k, v) in other.iter() {
                out.insert_mut(k.clone(), v.clone());
            }
        } else {
            for (k, v) in self.diff(other).added {
                out.insert_mut(k, v);
            }
        }
        out
    }

    pub(crate) fn root_node(&self) -> &Node<K, V, B> {
        &self.root
    }

    /// The root node's content histogram: branch counts per category
    /// (`[EMPTY, CAT1, CAT2, NODE]`, paper §3.3) — introspection for
    /// analyzing how a relation's skew maps onto the encoding.
    ///
    /// Returns `None` if the root has degenerated to a hash-collision node
    /// (only possible when every key shares one 32-bit hash).
    ///
    /// # Examples
    ///
    /// ```
    /// use axiom::AxiomMultiMap;
    ///
    /// let mm = AxiomMultiMap::<u32, u32>::new().inserted(1, 10).inserted(1, 11);
    /// let hist = mm.root_histogram().unwrap();
    /// assert_eq!(hist[2], 1); // one 1:n branch (CAT2)
    /// assert_eq!(hist[0], 31); // the rest empty
    /// ```
    pub fn root_histogram(&self) -> Option<[u32; 4]> {
        match &*self.root {
            Node::Bitmap(b) => Some(b.bitmap.histogram()),
            Node::Collision(_) => None,
        }
    }

    /// Recursively checks the canonical-form invariants (test support).
    ///
    /// # Panics
    ///
    /// Panics if any structural invariant is violated.
    #[doc(hidden)]
    pub fn assert_invariants(&self) {
        let (keys, tuples) = validate(&self.root, 0);
        assert_eq!(keys, self.keys, "key bookkeeping");
        assert_eq!(tuples, self.tuples, "tuple bookkeeping");
    }
}

/// Rebuilds a root node around a binding that collapsed out of the trie.
fn root_with_single_binding<K, V, B>(key: K, binding: Binding<V, B>) -> Node<K, V, B>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
    B: ValueBag<V>,
{
    let m = mask(hash32(&key), 0);
    let cat = binding.category();
    Node::Bitmap(BitmapNode {
        bitmap: SlotBitmap::EMPTY.with(m, cat),
        slots: Box::new([Node::slot_of(key, binding)]),
    })
}

/// Validates canonical form; returns `(keys, tuples)` below `node`.
fn validate<K, V, B>(node: &Node<K, V, B>, shift: u32) -> (usize, usize)
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
    B: ValueBag<V>,
{
    match node {
        Node::Collision(c) => {
            assert!(hash_exhausted(shift), "collision node above max depth");
            assert!(c.entries.len() >= 2, "collision node with < 2 keys");
            let mut tuples = 0;
            for (i, (k, b)) in c.entries.iter().enumerate() {
                assert_eq!(hash32(k), c.hash, "collision member hash");
                if let Binding::Many(bag) = b {
                    assert!(bag.len() >= 2, "CAT2 bag with < 2 values");
                }
                tuples += b.len();
                for (k2, _) in &c.entries[i + 1..] {
                    assert!(k2 != k, "duplicate key in collision node");
                }
            }
            (c.entries.len(), tuples)
        }
        Node::Bitmap(b) => {
            assert_eq!(b.slots.len(), b.bitmap.arity(), "slot count");
            let mut keys = 0usize;
            let mut tuples = 0usize;
            for (i, m) in b.bitmap.masks_of(Category::Cat1).enumerate() {
                match &b.slots[b.bitmap.offset(Category::Cat1) + i] {
                    Slot::One(k, _) => {
                        assert_eq!(mask(hash32(k), shift), m, "CAT1 key in wrong branch");
                        keys += 1;
                        tuples += 1;
                    }
                    _ => panic!("CAT1 slot holds wrong variant"),
                }
            }
            for (i, m) in b.bitmap.masks_of(Category::Cat2).enumerate() {
                match &b.slots[b.bitmap.offset(Category::Cat2) + i] {
                    Slot::Many(k, bag) => {
                        assert_eq!(mask(hash32(k), shift), m, "CAT2 key in wrong branch");
                        assert!(bag.len() >= 2, "CAT2 bag with < 2 values");
                        keys += 1;
                        tuples += bag.len();
                    }
                    _ => panic!("CAT2 slot holds wrong variant"),
                }
            }
            for (i, _) in b.bitmap.masks_of(Category::Node).enumerate() {
                match &b.slots[b.bitmap.offset(Category::Node) + i] {
                    Slot::Child(child) => {
                        let (k, t) = validate(child, next_shift(shift));
                        assert!(k >= 2, "sub-trie with < 2 keys not inlined");
                        keys += k;
                        tuples += t;
                    }
                    _ => panic!("NODE slot holds payload"),
                }
            }
            if shift > 0 {
                assert!(
                    !(b.bitmap.payload_arity() == 1 && b.bitmap.node_arity() == 0),
                    "non-root singleton payload node must be inlined"
                );
            }
            (keys, tuples)
        }
    }
}

impl<K, V, B> Default for AxiomMultiMap<K, V, B>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
    B: ValueBag<V>,
{
    fn default() -> Self {
        AxiomMultiMap::new()
    }
}

impl<K, V, B> PartialEq for AxiomMultiMap<K, V, B>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
    B: ValueBag<V>,
{
    fn eq(&self, other: &Self) -> bool {
        self.tuples == other.tuples && self.keys == other.keys && node_eq(&self.root, &other.root)
    }
}

impl<K, V, B> Eq for AxiomMultiMap<K, V, B>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
    B: ValueBag<V>,
{
}

fn node_eq<K, V, B>(a: &Node<K, V, B>, b: &Node<K, V, B>) -> bool
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
    B: ValueBag<V>,
{
    match (a, b) {
        (Node::Bitmap(x), Node::Bitmap(y)) => {
            x.bitmap == y.bitmap
                && x.slots
                    .iter()
                    .zip(y.slots.iter())
                    .all(|(s, t)| match (s, t) {
                        (Slot::One(k1, v1), Slot::One(k2, v2)) => k1 == k2 && v1 == v2,
                        (Slot::Many(k1, b1), Slot::Many(k2, b2)) => k1 == k2 && b1 == b2,
                        (Slot::Child(c), Slot::Child(d)) => Arc::ptr_eq(c, d) || node_eq(c, d),
                        _ => false,
                    })
        }
        (Node::Collision(x), Node::Collision(y)) => {
            x.hash == y.hash
                && x.entries.len() == y.entries.len()
                && x.entries.iter().all(|(k, bind)| {
                    y.entries
                        .iter()
                        .any(|(k2, bind2)| k == k2 && bind.eq(bind2))
                })
        }
        _ => false,
    }
}

impl<K, V, B> std::fmt::Debug for AxiomMultiMap<K, V, B>
where
    K: std::fmt::Debug + Clone + Eq + Hash,
    V: std::fmt::Debug + Clone + Eq + Hash,
    B: ValueBag<V>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<K, V, B> FromIterator<(K, V)> for AxiomMultiMap<K, V, B>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
    B: ValueBag<V>,
{
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        trie_common::ops::from_iter_via(iter)
    }
}

impl<K, V, B> Extend<(K, V)> for AxiomMultiMap<K, V, B>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
    B: ValueBag<V>,
{
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        trie_common::ops::extend_via(self, iter);
    }
}

impl<'a, K, V, B> IntoIterator for &'a AxiomMultiMap<K, V, B>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
    B: ValueBag<V>,
{
    type Item = (&'a K, &'a V);
    type IntoIter = Tuples<'a, K, V, B>;
    fn into_iter(self) -> Tuples<'a, K, V, B> {
        self.iter()
    }
}

enum Cursor<'a, K, V, B> {
    Bitmap {
        slots: &'a [Slot<K, V, B>],
        idx: usize,
    },
    Collision {
        entries: &'a [(K, Binding<V, B>)],
        idx: usize,
    },
}

fn cursor_of<K, V, B>(node: &Node<K, V, B>) -> Cursor<'_, K, V, B> {
    match node {
        Node::Bitmap(b) => Cursor::Bitmap {
            slots: &b.slots,
            idx: 0,
        },
        Node::Collision(c) => Cursor::Collision {
            entries: &c.entries,
            idx: 0,
        },
    }
}

/// Iterator over all `(key, value)` tuples. Created by
/// [`AxiomMultiMap::iter`].
pub struct Tuples<'a, K, V: 'a, B: ValueBag<V> + 'a> {
    stack: Vec<Cursor<'a, K, V, B>>,
    current: Option<(&'a K, B::Iter<'a>)>,
    remaining: usize,
}

impl<'a, K, V, B: ValueBag<V>> Tuples<'a, K, V, B> {
    fn new(root: &'a Node<K, V, B>, tuples: usize) -> Self {
        Tuples {
            stack: vec![cursor_of(root)],
            current: None,
            remaining: tuples,
        }
    }
}

impl<'a, K, V, B> Iterator for Tuples<'a, K, V, B>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
    B: ValueBag<V>,
{
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<(&'a K, &'a V)> {
        loop {
            if let Some((k, it)) = &mut self.current {
                if let Some(v) = it.next() {
                    self.remaining -= 1;
                    return Some((k, v));
                }
                self.current = None;
            }
            let top = self.stack.last_mut()?;
            match top {
                Cursor::Collision { entries, idx } => {
                    if *idx >= entries.len() {
                        self.stack.pop();
                        continue;
                    }
                    let (k, binding) = &entries[*idx];
                    *idx += 1;
                    match binding {
                        Binding::One(v) => {
                            self.remaining -= 1;
                            return Some((k, v));
                        }
                        Binding::Many(bag) => self.current = Some((k, bag.iter())),
                    }
                }
                Cursor::Bitmap { slots, idx } => {
                    if *idx >= slots.len() {
                        self.stack.pop();
                        continue;
                    }
                    let slot = &slots[*idx];
                    *idx += 1;
                    match slot {
                        Slot::One(k, v) => {
                            self.remaining -= 1;
                            return Some((k, v));
                        }
                        Slot::Many(k, bag) => self.current = Some((k, bag.iter())),
                        Slot::Child(child) => self.stack.push(cursor_of(child)),
                    }
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<'a, K, V, B> ExactSizeIterator for Tuples<'a, K, V, B>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
    B: ValueBag<V>,
{
}

impl<'a, K, V, B: ValueBag<V>> std::fmt::Debug for Tuples<'a, K, V, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tuples")
            .field("remaining", &self.remaining)
            .finish()
    }
}

/// Iterator over distinct keys. Created by [`AxiomMultiMap::keys`].
pub struct Keys<'a, K, V, B> {
    stack: Vec<Cursor<'a, K, V, B>>,
    remaining: usize,
}

impl<'a, K, V, B> Iterator for Keys<'a, K, V, B> {
    type Item = &'a K;

    fn next(&mut self) -> Option<&'a K> {
        loop {
            let top = self.stack.last_mut()?;
            match top {
                Cursor::Collision { entries, idx } => {
                    if *idx >= entries.len() {
                        self.stack.pop();
                        continue;
                    }
                    let (k, _) = &entries[*idx];
                    *idx += 1;
                    self.remaining -= 1;
                    return Some(k);
                }
                Cursor::Bitmap { slots, idx } => {
                    if *idx >= slots.len() {
                        self.stack.pop();
                        continue;
                    }
                    let slot = &slots[*idx];
                    *idx += 1;
                    match slot {
                        Slot::One(k, _) | Slot::Many(k, _) => {
                            self.remaining -= 1;
                            return Some(k);
                        }
                        Slot::Child(child) => self.stack.push(cursor_of(child)),
                    }
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<'a, K, V, B> ExactSizeIterator for Keys<'a, K, V, B> {}

impl<'a, K, V, B> std::fmt::Debug for Keys<'a, K, V, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Keys")
            .field("remaining", &self.remaining)
            .finish()
    }
}

/// Iterator over `(key, values-view)` groups. Created by
/// [`AxiomMultiMap::entries`].
pub struct Entries<'a, K, V, B> {
    stack: Vec<Cursor<'a, K, V, B>>,
    remaining: usize,
}

impl<'a, K, V, B> Iterator for Entries<'a, K, V, B>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
    B: ValueBag<V>,
{
    type Item = (&'a K, BindingRef<'a, V, B>);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let top = self.stack.last_mut()?;
            match top {
                Cursor::Collision { entries, idx } => {
                    if *idx >= entries.len() {
                        self.stack.pop();
                        continue;
                    }
                    let (k, binding) = &entries[*idx];
                    *idx += 1;
                    self.remaining -= 1;
                    return Some((k, BindingRef::of(binding)));
                }
                Cursor::Bitmap { slots, idx } => {
                    if *idx >= slots.len() {
                        self.stack.pop();
                        continue;
                    }
                    let slot = &slots[*idx];
                    *idx += 1;
                    match slot {
                        Slot::One(k, v) => {
                            self.remaining -= 1;
                            return Some((k, BindingRef::One(v)));
                        }
                        Slot::Many(k, bag) => {
                            self.remaining -= 1;
                            return Some((k, BindingRef::Many(bag)));
                        }
                        Slot::Child(child) => self.stack.push(cursor_of(child)),
                    }
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<'a, K, V, B> ExactSizeIterator for Entries<'a, K, V, B>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
    B: ValueBag<V>,
{
}

impl<'a, K, V, B> std::fmt::Debug for Entries<'a, K, V, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Entries")
            .field("remaining", &self.remaining)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bag::FusedBag;
    use std::collections::{BTreeSet, HashMap};
    use std::hash::Hasher;

    type Mm = AxiomMultiMap<u32, u32>;
    type FusedMm = AxiomMultiMap<u32, u32, FusedBag<u32>>;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Collide {
        bucket: u32,
        id: u32,
    }

    impl Hash for Collide {
        fn hash<H: Hasher>(&self, state: &mut H) {
            state.write_u32(self.bucket);
        }
    }

    #[test]
    fn empty_multimap_basics() {
        let mm = Mm::new();
        assert!(mm.is_empty());
        assert_eq!(mm.tuple_count(), 0);
        assert_eq!(mm.key_count(), 0);
        assert!(!mm.contains_key(&1));
        assert!(!mm.contains_tuple(&1, &2));
        mm.assert_invariants();
    }

    #[test]
    fn paper_figure_3_construction_sequence() {
        // Figure 3: A↦1, B↦2, then C↦3, then D↦4, E↦5, then D↦-4, F↦6.
        // We use the tuple/key counts and promotion behaviour it illustrates.
        let mm = AxiomMultiMap::<&str, i32>::new()
            .inserted("A", 1)
            .inserted("B", 2)
            .inserted("C", 3)
            .inserted("D", 4)
            .inserted("E", 5)
            .inserted("D", -4) // promotes D to a 1:n mapping
            .inserted("F", 6);
        assert_eq!(mm.key_count(), 6);
        assert_eq!(mm.tuple_count(), 7);
        assert_eq!(mm.value_count(&"D"), 2);
        assert!(mm.contains_tuple(&"D", &4));
        assert!(mm.contains_tuple(&"D", &-4));
        assert_eq!(mm.value_count(&"A"), 1);
        mm.assert_invariants();
    }

    #[test]
    fn promotion_and_demotion_roundtrip() {
        let mm = Mm::new().inserted(1, 10).inserted(1, 20);
        assert!(matches!(mm.get(&1), Some(BindingRef::Many(_))));
        let mm2 = mm.tuple_removed(&1, &10);
        assert!(matches!(mm2.get(&1), Some(BindingRef::One(&20))));
        assert_eq!(mm2.tuple_count(), 1);
        assert_eq!(mm2.key_count(), 1);
        let mm3 = mm2.tuple_removed(&1, &20);
        assert!(mm3.is_empty());
        assert_eq!(mm3.key_count(), 0);
        // Original chain is untouched.
        assert_eq!(mm.tuple_count(), 2);
        mm.assert_invariants();
        mm2.assert_invariants();
        mm3.assert_invariants();
    }

    #[test]
    fn duplicate_tuple_insert_is_noop() {
        let mm = Mm::new().inserted(1, 10).inserted(1, 10);
        assert_eq!(mm.tuple_count(), 1);
        let mm2 = mm.inserted(1, 20).inserted(1, 20);
        assert_eq!(mm2.tuple_count(), 2);
    }

    #[test]
    fn skewed_distribution_bulk() {
        // 50% 1:1, 50% 1:2 — the paper's microbenchmark shape.
        let mut mm = Mm::new();
        for k in 0..1000u32 {
            mm.insert_mut(k, k * 10);
            if k % 2 == 0 {
                mm.insert_mut(k, k * 10 + 1);
            }
        }
        assert_eq!(mm.key_count(), 1000);
        assert_eq!(mm.tuple_count(), 1500);
        for k in 0..1000u32 {
            assert!(mm.contains_tuple(&k, &(k * 10)));
            assert_eq!(mm.value_count(&k), if k % 2 == 0 { 2 } else { 1 });
        }
        mm.assert_invariants();
    }

    #[test]
    fn remove_key_drops_all_values() {
        let mut mm = Mm::new();
        for v in 0..10 {
            mm.insert_mut(7, v);
        }
        mm.insert_mut(8, 0);
        assert_eq!(mm.tuple_count(), 11);
        let removed = mm.remove_key_mut(&7);
        assert_eq!(removed, 10);
        assert_eq!(mm.tuple_count(), 1);
        assert_eq!(mm.key_count(), 1);
        assert!(!mm.contains_key(&7));
        mm.assert_invariants();
    }

    #[test]
    fn model_based_random_ops() {
        let mut model: HashMap<u32, BTreeSet<u32>> = HashMap::new();
        let mut mm = Mm::new();
        let mut state = 0xdeadbeefu64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for step in 0..6000 {
            let op = next() % 5;
            let key = next() % 120;
            let value = next() % 8;
            match op {
                0..=2 => {
                    let grew = model.entry(key).or_default().insert(value);
                    assert_eq!(mm.insert_mut(key, value), grew, "step {step}");
                }
                3 => {
                    let had = model.get_mut(&key).is_some_and(|s| s.remove(&value));
                    if let Some(s) = model.get(&key) {
                        if s.is_empty() {
                            model.remove(&key);
                        }
                    }
                    assert_eq!(mm.remove_tuple_mut(&key, &value), had, "step {step}");
                }
                _ => {
                    let removed = model.remove(&key).map_or(0, |s| s.len());
                    assert_eq!(mm.remove_key_mut(&key), removed, "step {step}");
                }
            }
            let tuples: usize = model.values().map(|s| s.len()).sum();
            assert_eq!(mm.tuple_count(), tuples);
            assert_eq!(mm.key_count(), model.len());
        }
        mm.assert_invariants();
        for (k, vs) in &model {
            assert_eq!(mm.value_count(k), vs.len());
            for v in vs {
                assert!(mm.contains_tuple(k, v));
            }
        }
        // Iteration agrees with the model.
        let mut seen: HashMap<u32, BTreeSet<u32>> = HashMap::new();
        for (k, v) in mm.iter() {
            assert!(seen.entry(*k).or_default().insert(*v), "dup tuple in iter");
        }
        assert_eq!(seen, model);
    }

    #[test]
    fn fused_multimap_agrees_with_nested() {
        let mut nested = Mm::new();
        let mut fused = FusedMm::new();
        let mut state = 7u64;
        let mut next = || {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            (state >> 35) as u32
        };
        for _ in 0..3000 {
            let op = next() % 4;
            let key = next() % 60;
            let value = next() % 12;
            match op {
                0 | 1 => {
                    assert_eq!(nested.insert_mut(key, value), fused.insert_mut(key, value));
                }
                2 => {
                    assert_eq!(
                        nested.remove_tuple_mut(&key, &value),
                        fused.remove_tuple_mut(&key, &value)
                    );
                }
                _ => {
                    assert_eq!(nested.remove_key_mut(&key), fused.remove_key_mut(&key));
                }
            }
            assert_eq!(nested.tuple_count(), fused.tuple_count());
            assert_eq!(nested.key_count(), fused.key_count());
        }
        nested.assert_invariants();
        fused.assert_invariants();
        let a: BTreeSet<(u32, u32)> = nested.iter().map(|(k, v)| (*k, *v)).collect();
        let b: BTreeSet<(u32, u32)> = fused.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn collision_keys_with_multivalues() {
        let mut mm: AxiomMultiMap<Collide, u32> = AxiomMultiMap::new();
        for id in 0..6 {
            let k = Collide { bucket: 11, id };
            mm.insert_mut(k.clone(), 0);
            mm.insert_mut(k, 1);
        }
        assert_eq!(mm.key_count(), 6);
        assert_eq!(mm.tuple_count(), 12);
        mm.assert_invariants();
        for id in 0..6 {
            let k = Collide { bucket: 11, id };
            assert_eq!(mm.value_count(&k), 2);
            assert!(mm.remove_tuple_mut(&k, &0));
            mm.assert_invariants();
        }
        assert_eq!(mm.tuple_count(), 6);
        for id in 0..5 {
            assert_eq!(mm.remove_key_mut(&Collide { bucket: 11, id }), 1);
            mm.assert_invariants();
        }
        assert_eq!(mm.key_count(), 1);
    }

    #[test]
    fn iteration_counts() {
        let mut mm = Mm::new();
        for k in 0..200u32 {
            mm.insert_mut(k, 0);
            if k % 2 == 0 {
                mm.insert_mut(k, 1);
            }
        }
        assert_eq!(mm.iter().count(), 300);
        assert_eq!(mm.keys().count(), 200);
        assert_eq!(mm.entries().count(), 200);
        assert_eq!(mm.iter().len(), 300);
        let grouped_tuples: usize = mm.entries().map(|(_, b)| b.len()).sum();
        assert_eq!(grouped_tuples, 300);
    }

    #[test]
    fn equality_and_order_independence() {
        let a: Mm = (0..100u32).flat_map(|k| [(k, 0), (k, 1)]).collect();
        let b: Mm = (0..100u32).rev().flat_map(|k| [(k, 1), (k, 0)]).collect();
        assert_eq!(a, b);
        assert_ne!(a, b.inserted(5, 9));
        assert_ne!(a, b.tuple_removed(&5, &0));
    }

    #[test]
    fn persistence_of_versions() {
        let v0: Mm = (0..500u32).map(|k| (k % 100, k)).collect();
        let v1 = v0.inserted(1000, 1);
        let v2 = v0.key_removed(&50);
        assert_eq!(v0.key_count(), 100);
        assert_eq!(v1.key_count(), 101);
        assert_eq!(v2.key_count(), 99);
        assert!(v0.contains_key(&50));
        assert!(!v2.contains_key(&50));
        v0.assert_invariants();
        v1.assert_invariants();
        v2.assert_invariants();
    }

    #[test]
    fn get_views() {
        let mm = Mm::new().inserted(1, 10).inserted(2, 20).inserted(2, 21);
        match mm.get(&1) {
            Some(BindingRef::One(v)) => assert_eq!(*v, 10),
            _ => panic!("expected inlined singleton"),
        }
        match mm.get(&2) {
            Some(BindingRef::Many(bag)) => {
                let vs: BTreeSet<u32> = crate::bag::ValueBag::iter(bag).copied().collect();
                assert_eq!(vs, BTreeSet::from([20, 21]));
            }
            _ => panic!("expected nested bag"),
        }
        assert!(mm.get(&3).is_none());
        let view = mm.get(&2).unwrap();
        assert_eq!(view.len(), 2);
        assert!(view.contains(&21));
        assert_eq!(view.iter().count(), 2);
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Mm>();
        assert_send_sync::<FusedMm>();
    }
}
