//! Dense slot-array editing helpers shared by all AXIOM node kinds.
//!
//! Persistent updates never mutate an existing node's slot array; they build
//! a fresh `Box<[T]>` with the edit applied (path copying). These helpers
//! centralize the copy loops so every node implementation stays free of
//! index arithmetic bugs.

/// Returns a copy of `slots` with `item` inserted at `idx`.
pub(crate) fn inserted_at<T: Clone>(slots: &[T], idx: usize, item: T) -> Box<[T]> {
    debug_assert!(idx <= slots.len());
    let mut out = Vec::with_capacity(slots.len() + 1);
    out.extend_from_slice(&slots[..idx]);
    out.push(item);
    out.extend_from_slice(&slots[idx..]);
    out.into_boxed_slice()
}

/// Returns a copy of `slots` with the element at `idx` removed.
pub(crate) fn removed_at<T: Clone>(slots: &[T], idx: usize) -> Box<[T]> {
    debug_assert!(idx < slots.len());
    let mut out = Vec::with_capacity(slots.len() - 1);
    out.extend_from_slice(&slots[..idx]);
    out.extend_from_slice(&slots[idx + 1..]);
    out.into_boxed_slice()
}

/// Returns a copy of `slots` with the element at `idx` replaced by `item`.
pub(crate) fn replaced_at<T: Clone>(slots: &[T], idx: usize, item: T) -> Box<[T]> {
    debug_assert!(idx < slots.len());
    let mut out: Vec<T> = slots.to_vec();
    out[idx] = item;
    out.into_boxed_slice()
}

/// Returns a copy of `slots` with the element at `from` removed and `item`
/// inserted so that it lands at index `to` *of the resulting array*.
///
/// This is the slot *migration* primitive behind AXIOM's category changes
/// (paper §3.2): promoting a `1:1` slot to `1:n`, demoting back, or replacing
/// an inlined payload with a sub-node — the entry leaves one category group
/// and joins another, so its physical position moves while all other slots
/// keep their relative order.
pub(crate) fn migrated<T: Clone>(slots: &[T], from: usize, to: usize, item: T) -> Box<[T]> {
    debug_assert!(from < slots.len());
    debug_assert!(to < slots.len());
    let mut out = Vec::with_capacity(slots.len());
    for (i, slot) in slots.iter().enumerate() {
        if i == from {
            continue;
        }
        if out.len() == to {
            out.push(item.clone());
        }
        out.push(slot.clone());
    }
    if out.len() == to {
        out.push(item);
    }
    debug_assert_eq!(out.len(), slots.len());
    out.into_boxed_slice()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserted_at_boundaries_and_middle() {
        let base = [1, 2, 3];
        assert_eq!(&*inserted_at(&base, 0, 0), &[0, 1, 2, 3]);
        assert_eq!(&*inserted_at(&base, 2, 9), &[1, 2, 9, 3]);
        assert_eq!(&*inserted_at(&base, 3, 4), &[1, 2, 3, 4]);
        assert_eq!(&*inserted_at(&[] as &[i32], 0, 7), &[7]);
    }

    #[test]
    fn removed_at_boundaries_and_middle() {
        let base = [1, 2, 3];
        assert_eq!(&*removed_at(&base, 0), &[2, 3]);
        assert_eq!(&*removed_at(&base, 1), &[1, 3]);
        assert_eq!(&*removed_at(&base, 2), &[1, 2]);
    }

    #[test]
    fn replaced_at_keeps_length() {
        let base = [1, 2, 3];
        assert_eq!(&*replaced_at(&base, 1, 9), &[1, 9, 3]);
    }

    #[test]
    fn migrated_moves_forward_and_backward() {
        let base = [10, 20, 30, 40];
        // Move slot 0's entry so the replacement lands at index 2.
        assert_eq!(&*migrated(&base, 0, 2, 99), &[20, 30, 99, 40]);
        // Move slot 3's entry so the replacement lands at index 0.
        assert_eq!(&*migrated(&base, 3, 0, 99), &[99, 10, 20, 30]);
        // Same position.
        assert_eq!(&*migrated(&base, 1, 1, 99), &[10, 99, 30, 40]);
        // Move to the very end.
        assert_eq!(&*migrated(&base, 0, 3, 99), &[20, 30, 40, 99]);
    }

    #[test]
    fn migrated_on_singleton() {
        assert_eq!(&*migrated(&[5], 0, 0, 6), &[6]);
    }
}
