//! Dense slot-array editing helpers shared by all AXIOM node kinds.
//!
//! The implementations live in [`trie_common::slices`] (shared with the
//! CHAMP/HAMT crates); this module re-exports them crate-privately and
//! keeps the AXIOM-flavoured test suite, including the three-category
//! migration boundary cases the multi-map relies on.
//!
//! Two families, one per ownership regime:
//!
//! * **Borrowed** (`inserted_at`, `removed_at`, `replaced_at`, `migrated`):
//!   persistent path copying. The input node is shared, so a fresh
//!   `Box<[T]>` is built with the edit applied and every untouched slot
//!   cloned.
//! * **Owned** (`inserted_at_owned`, `removed_at_owned`, `migrate_map`):
//!   transient in-place editing. The caller holds the node uniquely (via
//!   `Arc::get_mut`), so slots are *moved*, never cloned; arity-preserving
//!   edits reuse the existing allocation and arity-changing edits pay
//!   exactly one new array allocation.

pub(crate) use trie_common::slices::{
    inserted_at, inserted_at_owned, migrate_map, migrated, removed_at, removed_at_owned,
    replaced_at,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserted_at_boundaries_and_middle() {
        let base = [1, 2, 3];
        assert_eq!(&*inserted_at(&base, 0, 0), &[0, 1, 2, 3]);
        assert_eq!(&*inserted_at(&base, 2, 9), &[1, 2, 9, 3]);
        assert_eq!(&*inserted_at(&base, 3, 4), &[1, 2, 3, 4]);
        assert_eq!(&*inserted_at(&[] as &[i32], 0, 7), &[7]);
    }

    #[test]
    fn removed_at_boundaries_and_middle() {
        let base = [1, 2, 3];
        assert_eq!(&*removed_at(&base, 0), &[2, 3]);
        assert_eq!(&*removed_at(&base, 1), &[1, 3]);
        assert_eq!(&*removed_at(&base, 2), &[1, 2]);
    }

    #[test]
    fn replaced_at_keeps_length() {
        let base = [1, 2, 3];
        assert_eq!(&*replaced_at(&base, 0, 9), &[9, 2, 3]);
        assert_eq!(&*replaced_at(&base, 1, 9), &[1, 9, 3]);
        assert_eq!(&*replaced_at(&base, 2, 9), &[1, 2, 9]);
    }

    #[test]
    fn replaced_at_never_clones_the_displaced_slot() {
        // A type whose Clone panics: the replaced slot must not be touched.
        #[derive(Debug, PartialEq)]
        struct NoClone(u32, bool);
        impl Clone for NoClone {
            fn clone(&self) -> Self {
                assert!(self.1, "cloned the displaced slot");
                NoClone(self.0, self.1)
            }
        }
        let base = [NoClone(1, true), NoClone(2, false), NoClone(3, true)];
        let out = replaced_at(&base, 1, NoClone(9, true));
        assert_eq!(out[1], NoClone(9, true));
    }

    #[test]
    fn migrated_moves_forward_and_backward() {
        let base = [10, 20, 30, 40];
        // Move slot 0's entry so the replacement lands at index 2.
        assert_eq!(&*migrated(&base, 0, 2, 99), &[20, 30, 99, 40]);
        // Move slot 3's entry so the replacement lands at index 0.
        assert_eq!(&*migrated(&base, 3, 0, 99), &[99, 10, 20, 30]);
        // Same position.
        assert_eq!(&*migrated(&base, 1, 1, 99), &[10, 99, 30, 40]);
        // Move to the very end.
        assert_eq!(&*migrated(&base, 0, 3, 99), &[20, 30, 40, 99]);
    }

    #[test]
    fn migrated_on_singleton() {
        assert_eq!(&*migrated(&[5], 0, 0, 6), &[6]);
    }

    #[test]
    fn migrated_to_last_index_from_everywhere() {
        // Boundary `to == slots.len() - 1`: the item is appended after the
        // loop body, the branch the `Option` refactor must keep intact.
        let base = [10, 20, 30, 40];
        for from in 0..base.len() {
            let out = migrated(&base, from, base.len() - 1, 99);
            assert_eq!(out.len(), base.len());
            assert_eq!(out[base.len() - 1], 99, "from {from}");
            let survivors: Vec<i32> = base
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != from)
                .map(|(_, v)| *v)
                .collect();
            assert_eq!(&out[..base.len() - 1], &survivors[..], "from {from}");
        }
    }

    #[test]
    fn migrated_moves_item_without_cloning_on_interior_target() {
        #[derive(Debug, PartialEq)]
        struct CountClone(u32, std::rc::Rc<std::cell::Cell<u32>>);
        impl Clone for CountClone {
            fn clone(&self) -> Self {
                self.1.set(self.1.get() + 1);
                CountClone(self.0, self.1.clone())
            }
        }
        let clones = std::rc::Rc::new(std::cell::Cell::new(0));
        let mk = |n| CountClone(n, clones.clone());
        let base = [mk(1), mk(2), mk(3)];
        clones.set(0);
        // Interior target: the item lands inside the loop, and must be moved
        // there, not cloned (only the two surviving slots are cloned).
        let out = migrated(&base, 2, 0, mk(9));
        assert_eq!(out[0].0, 9);
        assert_eq!(clones.get(), 2, "only survivors may be cloned");
    }

    #[test]
    fn owned_insert_and_remove_match_borrowed() {
        let base = vec![1, 2, 3].into_boxed_slice();
        assert_eq!(
            &*inserted_at_owned(base.clone(), 1, 9),
            &*inserted_at(&base, 1, 9)
        );
        assert_eq!(
            &*inserted_at_owned(base.clone(), 3, 9),
            &*inserted_at(&base, 3, 9)
        );
        assert_eq!(&*removed_at_owned(base.clone(), 0), &*removed_at(&base, 0));
        assert_eq!(&*removed_at_owned(base.clone(), 2), &*removed_at(&base, 2));
        assert_eq!(&*inserted_at_owned(Box::new([]), 0, 7), &[7]);
    }

    #[test]
    fn migrate_map_matches_migrated_for_all_pairs() {
        let base = [10, 20, 30, 40, 50];
        for from in 0..base.len() {
            for to in 0..base.len() {
                let expected = migrated(&base, from, to, 99);
                let mut slots: Box<[i32]> = Box::new(base);
                migrate_map(&mut slots, from, to, |old| {
                    assert_eq!(old, base[from], "wrong slot migrated");
                    99
                });
                assert_eq!(slots, expected, "from {from} to {to}");
            }
        }
    }

    #[test]
    fn migrate_map_to_last_index_boundary() {
        let mut slots: Box<[i32]> = Box::new([10, 20, 30, 40]);
        migrate_map(&mut slots, 1, 3, |old| old + 1);
        assert_eq!(&*slots, &[10, 30, 40, 21]);
    }

    #[test]
    fn migrate_map_moves_without_cloning() {
        // Box<T> has no Clone bound here: compiling at all proves the owned
        // family never clones.
        let mut slots: Box<[Box<u32>]> = Box::new([Box::new(1), Box::new(2), Box::new(3)]);
        migrate_map(&mut slots, 0, 2, |old| Box::new(*old + 100));
        assert_eq!(&*slots, &[Box::new(2), Box::new(3), Box::new(101)]);
        let grown = inserted_at_owned(std::mem::take(&mut slots), 0, Box::new(0));
        assert_eq!(grown.len(), 4);
        let shrunk = removed_at_owned(grown, 3);
        assert_eq!(&*shrunk, &[Box::new(0), Box::new(2), Box::new(3)]);
    }
}
