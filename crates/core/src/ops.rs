//! Harness-facing trait implementations ([`trie_common::ops`]).
//!
//! Thin forwarding shims: the associated iterator types are the inherent
//! AXIOM iterators, and the transient builder rides the `Rc`-uniqueness
//! `insert_mut` path via [`EditInPlace`]. The multi-map impl is generic over
//! the [`ValueBag`] strategy, so [`crate::AxiomFusedMultiMap`] gets the same
//! surface for free.

use std::hash::Hash;

use trie_common::ops::{
    EditInPlace, MapDiff, MapMergeOps, MapMutOps, MapOps, MultiMapAlgebraOps, MultiMapDiff,
    MultiMapMutOps, MultiMapOps, SetAlgebraOps, SetDiff, SetMutOps, SetOps,
};

use crate::bag::ValueBag;
use crate::map::{self, AxiomMap};
use crate::multimap::{self, AxiomMultiMap};
use crate::set::{self, AxiomSet};

impl<K, V> MapOps<K, V> for AxiomMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + PartialEq,
{
    const NAME: &'static str = "axiom-map";

    type Entries<'a>
        = map::Iter<'a, K, V>
    where
        Self: 'a,
        K: 'a,
        V: 'a;
    type Keys<'a>
        = map::Keys<'a, K, V>
    where
        Self: 'a,
        K: 'a,
        V: 'a;
    type Values<'a>
        = map::Values<'a, K, V>
    where
        Self: 'a,
        K: 'a,
        V: 'a;

    fn empty() -> Self {
        AxiomMap::new()
    }

    fn len(&self) -> usize {
        AxiomMap::len(self)
    }

    fn get(&self, key: &K) -> Option<&V> {
        AxiomMap::get(self, key)
    }

    fn inserted(&self, key: K, value: V) -> Self {
        AxiomMap::inserted(self, key, value)
    }

    fn removed(&self, key: &K) -> Self {
        AxiomMap::removed(self, key)
    }

    fn entries(&self) -> Self::Entries<'_> {
        AxiomMap::iter(self)
    }

    fn keys(&self) -> Self::Keys<'_> {
        AxiomMap::keys(self)
    }

    fn values(&self) -> Self::Values<'_> {
        AxiomMap::values(self)
    }
}

impl<K, V> MapMergeOps<K, V> for AxiomMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + PartialEq,
{
    fn diff(&self, other: &Self) -> MapDiff<K, V> {
        AxiomMap::diff(self, other)
    }
}

impl<K, V> EditInPlace<(K, V)> for AxiomMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + PartialEq,
{
    fn edit_insert(&mut self, (key, value): (K, V)) -> bool {
        self.insert_mut(key, value)
    }
}

impl<K, V> MapMutOps<K, V> for AxiomMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + PartialEq,
{
    fn insert_mut(&mut self, key: K, value: V) -> bool {
        AxiomMap::insert_mut(self, key, value)
    }

    fn remove_mut(&mut self, key: &K) -> bool {
        AxiomMap::remove_mut(self, key)
    }
}

impl<T> SetOps<T> for AxiomSet<T>
where
    T: Clone + Eq + Hash,
{
    const NAME: &'static str = "axiom-set";

    type Elems<'a>
        = set::Iter<'a, T>
    where
        Self: 'a,
        T: 'a;

    fn empty() -> Self {
        AxiomSet::new()
    }

    fn len(&self) -> usize {
        AxiomSet::len(self)
    }

    fn contains(&self, value: &T) -> bool {
        AxiomSet::contains(self, value)
    }

    fn inserted(&self, value: T) -> Self {
        AxiomSet::inserted(self, value)
    }

    fn removed(&self, value: &T) -> Self {
        AxiomSet::removed(self, value)
    }

    fn iter(&self) -> Self::Elems<'_> {
        AxiomSet::iter(self)
    }
}

impl<T> SetAlgebraOps<T> for AxiomSet<T>
where
    T: Clone + Eq + Hash,
{
    fn diff(&self, other: &Self) -> SetDiff<T> {
        AxiomSet::diff(self, other)
    }

    fn union(&self, other: &Self) -> Self {
        AxiomSet::union(self, other)
    }

    fn intersect(&self, other: &Self) -> Self {
        AxiomSet::intersect(self, other)
    }

    fn difference(&self, other: &Self) -> Self {
        AxiomSet::difference(self, other)
    }
}

impl<T> EditInPlace<T> for AxiomSet<T>
where
    T: Clone + Eq + Hash,
{
    fn edit_insert(&mut self, value: T) -> bool {
        self.insert_mut(value)
    }
}

impl<T> SetMutOps<T> for AxiomSet<T>
where
    T: Clone + Eq + Hash,
{
    fn insert_mut(&mut self, value: T) -> bool {
        AxiomSet::insert_mut(self, value)
    }

    fn remove_mut(&mut self, value: &T) -> bool {
        AxiomSet::remove_mut(self, value)
    }
}

impl<K, V, B> MultiMapOps<K, V> for AxiomMultiMap<K, V, B>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
    B: ValueBag<V>,
{
    const NAME: &'static str = "axiom-multimap";

    type Tuples<'a>
        = multimap::Tuples<'a, K, V, B>
    where
        Self: 'a,
        K: 'a,
        V: 'a;
    type Keys<'a>
        = multimap::Keys<'a, K, V, B>
    where
        Self: 'a,
        K: 'a,
        V: 'a;
    type ValuesOf<'a>
        = multimap::ValuesOf<'a, V, B>
    where
        Self: 'a,
        K: 'a,
        V: 'a;

    fn empty() -> Self {
        AxiomMultiMap::new()
    }

    fn tuple_count(&self) -> usize {
        AxiomMultiMap::tuple_count(self)
    }

    fn key_count(&self) -> usize {
        AxiomMultiMap::key_count(self)
    }

    fn contains_key(&self, key: &K) -> bool {
        AxiomMultiMap::contains_key(self, key)
    }

    fn contains_tuple(&self, key: &K, value: &V) -> bool {
        AxiomMultiMap::contains_tuple(self, key, value)
    }

    fn value_count(&self, key: &K) -> usize {
        AxiomMultiMap::value_count(self, key)
    }

    fn inserted(&self, key: K, value: V) -> Self {
        AxiomMultiMap::inserted(self, key, value)
    }

    fn tuple_removed(&self, key: &K, value: &V) -> Self {
        AxiomMultiMap::tuple_removed(self, key, value)
    }

    fn key_removed(&self, key: &K) -> Self {
        AxiomMultiMap::key_removed(self, key)
    }

    fn tuples(&self) -> Self::Tuples<'_> {
        AxiomMultiMap::iter(self)
    }

    fn keys(&self) -> Self::Keys<'_> {
        AxiomMultiMap::keys(self)
    }

    fn values_of<'a>(&'a self, key: &K) -> Self::ValuesOf<'a> {
        AxiomMultiMap::values_of(self, key)
    }
}

impl<K, V, B> MultiMapAlgebraOps<K, V> for AxiomMultiMap<K, V, B>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
    B: ValueBag<V>,
{
    fn diff(&self, other: &Self) -> MultiMapDiff<K, V> {
        AxiomMultiMap::diff(self, other)
    }

    fn union(&self, other: &Self) -> Self {
        AxiomMultiMap::union(self, other)
    }
}

impl<K, V, B> MultiMapMutOps<K, V> for AxiomMultiMap<K, V, B>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
    B: ValueBag<V>,
{
    fn insert_mut(&mut self, key: K, value: V) -> bool {
        AxiomMultiMap::insert_mut(self, key, value)
    }

    fn remove_tuple_mut(&mut self, key: &K, value: &V) -> bool {
        AxiomMultiMap::remove_tuple_mut(self, key, value)
    }

    fn remove_key_mut(&mut self, key: &K) -> usize {
        AxiomMultiMap::remove_key_mut(self, key)
    }
}

impl<K, V, B> EditInPlace<(K, V)> for AxiomMultiMap<K, V, B>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
    B: ValueBag<V>,
{
    fn edit_insert(&mut self, (key, value): (K, V)) -> bool {
        self.insert_mut(key, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trie_common::ops::{Builder, TransientOps};

    fn exercise_map<M: MapOps<u32, u32>>() {
        let m = M::empty().inserted(1, 2).inserted(3, 4);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&1), Some(&2));
        let m = m.removed(&1);
        assert_eq!(m.len(), 1);
        let mut n = 0;
        m.for_each_entry(&mut |_, _| n += 1);
        assert_eq!(n, 1);
        assert_eq!(m.entries().count(), 1);
    }

    fn exercise_multimap<M: MultiMapOps<u32, u32>>() {
        let m = M::empty().inserted(1, 2).inserted(1, 3).inserted(5, 6);
        assert_eq!(m.tuple_count(), 3);
        assert_eq!(m.key_count(), 2);
        assert!(m.contains_tuple(&1, &3));
        assert_eq!(m.value_count(&1), 2);
        assert_eq!(m.tuples().count(), 3);
        assert_eq!(m.keys().count(), 2);
        assert_eq!(m.values_of(&1).count(), 2);
        assert_eq!(m.values_of(&99).count(), 0);
        let m = m.tuple_removed(&1, &2);
        assert_eq!(m.tuple_count(), 2);
        let m = m.key_removed(&1);
        assert_eq!(m.key_count(), 1);
        let mut vals = Vec::new();
        m.for_each_value_of(&5, &mut |v| vals.push(*v));
        assert_eq!(vals, vec![6]);
    }

    #[test]
    fn traits_are_wired() {
        exercise_map::<AxiomMap<u32, u32>>();
        exercise_multimap::<AxiomMultiMap<u32, u32>>();
        exercise_multimap::<crate::AxiomFusedMultiMap<u32, u32>>();
        let s = <AxiomSet<u32> as SetOps<u32>>::empty().inserted(1);
        assert!(SetOps::contains(&s, &1));
    }

    #[test]
    fn transient_builder_matches_fold() {
        let tuples: Vec<(u32, u32)> = (0..200).map(|i| (i / 2, i)).collect();
        let folded = tuples
            .iter()
            .fold(AxiomMultiMap::<u32, u32>::new(), |mm, &(k, v)| {
                mm.inserted(k, v)
            });
        let built = AxiomMultiMap::<u32, u32>::built_from(tuples.iter().copied());
        assert_eq!(folded, built);

        let mut t = AxiomMultiMap::<u32, u32>::transient_builder();
        assert_eq!(t.insert_all_mut(tuples.iter().copied()), tuples.len());
        assert_eq!(t.insert_all_mut(tuples.iter().copied()), 0); // re-insert: no growth
        assert_eq!(t.build(), folded);
    }
}
