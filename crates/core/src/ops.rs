//! Harness-facing trait implementations ([`trie_common::ops`]).

use std::hash::Hash;

use trie_common::ops::{MapOps, MultiMapOps, SetOps};

use crate::bag::ValueBag;
use crate::map::AxiomMap;
use crate::multimap::AxiomMultiMap;
use crate::set::AxiomSet;

impl<K, V> MapOps<K, V> for AxiomMap<K, V>
where
    K: Clone + Eq + Hash,
    V: Clone + PartialEq,
{
    const NAME: &'static str = "axiom-map";

    fn empty() -> Self {
        AxiomMap::new()
    }

    fn len(&self) -> usize {
        AxiomMap::len(self)
    }

    fn get(&self, key: &K) -> Option<&V> {
        AxiomMap::get(self, key)
    }

    fn inserted(&self, key: K, value: V) -> Self {
        AxiomMap::inserted(self, key, value)
    }

    fn removed(&self, key: &K) -> Self {
        AxiomMap::removed(self, key)
    }

    fn for_each_entry(&self, f: &mut dyn FnMut(&K, &V)) {
        for (k, v) in self.iter() {
            f(k, v);
        }
    }

    fn for_each_key(&self, f: &mut dyn FnMut(&K)) {
        for k in self.keys() {
            f(k);
        }
    }
}

impl<T> SetOps<T> for AxiomSet<T>
where
    T: Clone + Eq + Hash,
{
    const NAME: &'static str = "axiom-set";

    fn empty() -> Self {
        AxiomSet::new()
    }

    fn len(&self) -> usize {
        AxiomSet::len(self)
    }

    fn contains(&self, value: &T) -> bool {
        AxiomSet::contains(self, value)
    }

    fn inserted(&self, value: T) -> Self {
        AxiomSet::inserted(self, value)
    }

    fn removed(&self, value: &T) -> Self {
        AxiomSet::removed(self, value)
    }

    fn for_each(&self, f: &mut dyn FnMut(&T)) {
        for v in self.iter() {
            f(v);
        }
    }
}

impl<K, V, B> MultiMapOps<K, V> for AxiomMultiMap<K, V, B>
where
    K: Clone + Eq + Hash,
    V: Clone + Eq + Hash,
    B: ValueBag<V>,
{
    const NAME: &'static str = "axiom-multimap";

    fn empty() -> Self {
        AxiomMultiMap::new()
    }

    fn tuple_count(&self) -> usize {
        AxiomMultiMap::tuple_count(self)
    }

    fn key_count(&self) -> usize {
        AxiomMultiMap::key_count(self)
    }

    fn contains_key(&self, key: &K) -> bool {
        AxiomMultiMap::contains_key(self, key)
    }

    fn contains_tuple(&self, key: &K, value: &V) -> bool {
        AxiomMultiMap::contains_tuple(self, key, value)
    }

    fn value_count(&self, key: &K) -> usize {
        AxiomMultiMap::value_count(self, key)
    }

    fn inserted(&self, key: K, value: V) -> Self {
        AxiomMultiMap::inserted(self, key, value)
    }

    fn tuple_removed(&self, key: &K, value: &V) -> Self {
        AxiomMultiMap::tuple_removed(self, key, value)
    }

    fn key_removed(&self, key: &K) -> Self {
        AxiomMultiMap::key_removed(self, key)
    }

    fn for_each_tuple(&self, f: &mut dyn FnMut(&K, &V)) {
        for (k, v) in self.iter() {
            f(k, v);
        }
    }

    fn for_each_key(&self, f: &mut dyn FnMut(&K)) {
        for k in self.keys() {
            f(k);
        }
    }

    fn for_each_value_of(&self, key: &K, f: &mut dyn FnMut(&V)) {
        if let Some(binding) = self.get(key) {
            for v in binding.iter() {
                f(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise_map<M: MapOps<u32, u32>>() {
        let m = M::empty().inserted(1, 2).inserted(3, 4);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&1), Some(&2));
        let m = m.removed(&1);
        assert_eq!(m.len(), 1);
        let mut n = 0;
        m.for_each_entry(&mut |_, _| n += 1);
        assert_eq!(n, 1);
    }

    fn exercise_multimap<M: MultiMapOps<u32, u32>>() {
        let m = M::empty().inserted(1, 2).inserted(1, 3).inserted(5, 6);
        assert_eq!(m.tuple_count(), 3);
        assert_eq!(m.key_count(), 2);
        assert!(m.contains_tuple(&1, &3));
        assert_eq!(m.value_count(&1), 2);
        let m = m.tuple_removed(&1, &2);
        assert_eq!(m.tuple_count(), 2);
        let m = m.key_removed(&1);
        assert_eq!(m.key_count(), 1);
        let mut vals = Vec::new();
        m.for_each_value_of(&5, &mut |v| vals.push(*v));
        assert_eq!(vals, vec![6]);
    }

    #[test]
    fn traits_are_wired() {
        exercise_map::<AxiomMap<u32, u32>>();
        exercise_multimap::<AxiomMultiMap<u32, u32>>();
        exercise_multimap::<crate::AxiomFusedMultiMap<u32, u32>>();
        let s = <AxiomSet<u32> as SetOps<u32>>::empty().inserted(1);
        assert!(SetOps::contains(&s, &1));
    }
}
