//! Storage strategies for the values of a `1:n` multi-mapping.
//!
//! The multi-map's `CAT2` slots associate a key with *at least two* values.
//! How those values are stored is a pluggable strategy:
//!
//! * [`AxiomSet<V>`](crate::AxiomSet) — the paper's baseline: a nested
//!   persistent set data structure;
//! * [`FusedBag<V>`] — the paper's §4.4 *fusion* variant: small value
//!   collections are stored inline (one flat allocation, no nested-set
//!   wrapper and no trie indirections), overflowing into a trie set only
//!   past [`FUSE_MAX`] elements. The paper reports fusion strictly improves
//!   runtimes "due to less memory indirections" while further shrinking
//!   footprints (×2.43 over Clojure/Scala on average).
//!
//! The [`ValueBag`] trait is sealed: the two strategies above are the ones
//! the evaluation defines; downstream code selects one via the multi-map's
//! third type parameter.

use std::hash::Hash;

use crate::set::AxiomSet;

mod sealed {
    pub trait Sealed {}
    impl<V> Sealed for crate::set::AxiomSet<V> {}
    impl<V> Sealed for super::FusedBag<V> {}
}

/// Outcome of removing one value from a bag.
#[derive(Debug)]
pub enum BagRemoved<V, B> {
    /// The value was not in the bag.
    NotFound,
    /// The value was removed; at least two values remain.
    Bag(B),
    /// The value was removed and exactly one value survives — the caller
    /// demotes the `1:n` slot back to an inlined `1:1` pair.
    Single(V),
}

/// Outcome of the in-place [`ValueBag::remove_mut`].
#[derive(Debug)]
pub enum BagEdited<V> {
    /// The value was not in the bag; the bag is unchanged.
    NotFound,
    /// The value was removed in place; at least two values remain.
    Shrunk,
    /// The value was removed and exactly one value survives. The bag itself
    /// is left in a degenerate (< 2 values) state and **must be discarded**:
    /// the caller demotes the `1:n` slot to an inlined `1:1` pair holding
    /// the returned survivor.
    Single(V),
}

/// A collection of ≥ 2 values nested under one multi-map key.
///
/// This trait is sealed; see the [module documentation](self) for the two
/// implementations.
pub trait ValueBag<V>: Clone + PartialEq + sealed::Sealed {
    /// Borrowing iterator over the values.
    type Iter<'a>: Iterator<Item = &'a V>
    where
        Self: 'a,
        V: 'a;

    /// Builds a bag from two *distinct* values (promotion of a `1:1` slot).
    fn from_two(a: V, b: V) -> Self;

    /// Number of values (always ≥ 2 while stored in a `CAT2` slot).
    fn len(&self) -> usize;

    /// True if the bag holds no values (never the case inside a multi-map;
    /// provided for API completeness).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test.
    fn contains(&self, value: &V) -> bool;

    /// Returns the bag with `value` added, or `None` if already present.
    fn inserted(&self, value: &V) -> Option<Self>;

    /// Removes `value`, reporting demotion when one value remains.
    fn removed(&self, value: &V) -> BagRemoved<V, Self>;

    /// Adds `value` in place (for uniquely-owned `CAT2` slots under
    /// transient editing). Returns true if the bag grew; a present value is
    /// dropped and the bag left untouched.
    fn insert_mut(&mut self, value: V) -> bool;

    /// Removes `value` in place, reporting demotion through
    /// [`BagEdited::Single`] (after which the bag is degenerate and must be
    /// discarded by the caller).
    fn remove_mut(&mut self, value: &V) -> BagEdited<V>;

    /// Iterates the values in unspecified order.
    fn iter(&self) -> Self::Iter<'_>;
}

impl<V: Clone + Eq + Hash> ValueBag<V> for AxiomSet<V> {
    type Iter<'a>
        = crate::set::Iter<'a, V>
    where
        V: 'a;

    fn from_two(a: V, b: V) -> Self {
        AxiomSet::from_two(a, b)
    }

    fn len(&self) -> usize {
        AxiomSet::len(self)
    }

    fn contains(&self, value: &V) -> bool {
        AxiomSet::contains(self, value)
    }

    fn inserted(&self, value: &V) -> Option<Self> {
        let mut next = self.clone();
        if next.insert_mut(value.clone()) {
            Some(next)
        } else {
            None
        }
    }

    fn removed(&self, value: &V) -> BagRemoved<V, Self> {
        let mut next = self.clone();
        if !next.remove_mut(value) {
            return BagRemoved::NotFound;
        }
        if next.len() == 1 {
            BagRemoved::Single(next.sole().clone())
        } else {
            BagRemoved::Bag(next)
        }
    }

    fn insert_mut(&mut self, value: V) -> bool {
        AxiomSet::insert_mut(self, value)
    }

    fn remove_mut(&mut self, value: &V) -> BagEdited<V> {
        if !AxiomSet::remove_mut(self, value) {
            return BagEdited::NotFound;
        }
        if self.len() == 1 {
            BagEdited::Single(self.sole().clone())
        } else {
            BagEdited::Shrunk
        }
    }

    fn iter(&self) -> Self::Iter<'_> {
        AxiomSet::iter(self)
    }
}

/// Largest value count stored inline by [`FusedBag`] before overflowing into
/// a trie set. Mirrors the small-collection specialization depth of the JVM
/// libraries the paper compares against (Scala's `Set1..Set4`).
pub const FUSE_MAX: usize = 4;

/// Fusion storage: `2..=FUSE_MAX` values live in one flat slice reached
/// directly from the trie slot; larger collections use a nested
/// [`AxiomSet`]. Invariant: `Inline` holds `2..=FUSE_MAX` distinct values,
/// `Trie` holds `> FUSE_MAX`.
#[derive(Debug)]
pub enum FusedBag<V> {
    /// Up to [`FUSE_MAX`] values, stored inline without a nested collection.
    Inline(Box<[V]>),
    /// Overflow representation for larger value sets.
    Trie(AxiomSet<V>),
}

impl<V: Clone> Clone for FusedBag<V> {
    fn clone(&self) -> Self {
        match self {
            FusedBag::Inline(vs) => FusedBag::Inline(vs.clone()),
            FusedBag::Trie(s) => FusedBag::Trie(s.clone()),
        }
    }
}

impl<V: Clone + Eq + Hash> PartialEq for FusedBag<V> {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (FusedBag::Inline(a), FusedBag::Inline(b)) => {
                // Inline slices are unordered: compare as sets.
                a.len() == b.len() && a.iter().all(|v| b.contains(v))
            }
            (FusedBag::Trie(a), FusedBag::Trie(b)) => a == b,
            // Representations are size-segregated, so mixed comparisons are
            // only reachable between bags of different sizes.
            _ => false,
        }
    }
}

impl<V: Clone + Eq + Hash> Eq for FusedBag<V> {}

impl<V: Clone + Eq + Hash> ValueBag<V> for FusedBag<V> {
    type Iter<'a>
        = FusedIter<'a, V>
    where
        V: 'a;

    fn from_two(a: V, b: V) -> Self {
        debug_assert!(a != b);
        FusedBag::Inline(Box::new([a, b]))
    }

    fn len(&self) -> usize {
        match self {
            FusedBag::Inline(vs) => vs.len(),
            FusedBag::Trie(s) => s.len(),
        }
    }

    fn contains(&self, value: &V) -> bool {
        match self {
            FusedBag::Inline(vs) => vs.iter().any(|v| v == value),
            FusedBag::Trie(s) => s.contains(value),
        }
    }

    fn inserted(&self, value: &V) -> Option<Self> {
        match self {
            FusedBag::Inline(vs) => {
                if vs.iter().any(|v| v == value) {
                    return None;
                }
                if vs.len() < FUSE_MAX {
                    let mut out = Vec::with_capacity(vs.len() + 1);
                    out.extend_from_slice(vs);
                    out.push(value.clone());
                    Some(FusedBag::Inline(out.into_boxed_slice()))
                } else {
                    // Overflow: promote to a trie set.
                    let mut set: AxiomSet<V> = vs.iter().cloned().collect();
                    set.insert_mut(value.clone());
                    Some(FusedBag::Trie(set))
                }
            }
            FusedBag::Trie(s) => {
                let mut next = s.clone();
                if next.insert_mut(value.clone()) {
                    Some(FusedBag::Trie(next))
                } else {
                    None
                }
            }
        }
    }

    fn removed(&self, value: &V) -> BagRemoved<V, Self> {
        match self {
            FusedBag::Inline(vs) => {
                let Some(pos) = vs.iter().position(|v| v == value) else {
                    return BagRemoved::NotFound;
                };
                if vs.len() == 2 {
                    return BagRemoved::Single(vs[1 - pos].clone());
                }
                let mut out = Vec::with_capacity(vs.len() - 1);
                out.extend_from_slice(&vs[..pos]);
                out.extend_from_slice(&vs[pos + 1..]);
                BagRemoved::Bag(FusedBag::Inline(out.into_boxed_slice()))
            }
            FusedBag::Trie(s) => {
                let mut next = s.clone();
                if !next.remove_mut(value) {
                    return BagRemoved::NotFound;
                }
                if next.len() <= FUSE_MAX {
                    // Demote back to the inline representation.
                    let out: Vec<V> = next.iter().cloned().collect();
                    BagRemoved::Bag(FusedBag::Inline(out.into_boxed_slice()))
                } else {
                    BagRemoved::Bag(FusedBag::Trie(next))
                }
            }
        }
    }

    fn insert_mut(&mut self, value: V) -> bool {
        match self {
            FusedBag::Inline(vs) => {
                if vs.contains(&value) {
                    return false;
                }
                if vs.len() < FUSE_MAX {
                    let idx = vs.len();
                    *vs = crate::slots::inserted_at_owned(std::mem::take(vs), idx, value);
                } else {
                    // Overflow: move the inline values into a trie set.
                    let mut set = AxiomSet::new();
                    for v in std::mem::take(vs).into_vec() {
                        set.insert_mut(v);
                    }
                    set.insert_mut(value);
                    *self = FusedBag::Trie(set);
                }
                true
            }
            FusedBag::Trie(s) => s.insert_mut(value),
        }
    }

    fn remove_mut(&mut self, value: &V) -> BagEdited<V> {
        match self {
            FusedBag::Inline(vs) => {
                let Some(pos) = vs.iter().position(|v| v == value) else {
                    return BagEdited::NotFound;
                };
                if vs.len() == 2 {
                    let mut v = std::mem::take(vs).into_vec();
                    return BagEdited::Single(v.swap_remove(1 - pos));
                }
                *vs = crate::slots::removed_at_owned(std::mem::take(vs), pos);
                BagEdited::Shrunk
            }
            FusedBag::Trie(s) => {
                if !s.remove_mut(value) {
                    return BagEdited::NotFound;
                }
                if s.len() <= FUSE_MAX {
                    // Demote back to the inline representation.
                    let out: Vec<V> = s.iter().cloned().collect();
                    *self = FusedBag::Inline(out.into_boxed_slice());
                }
                BagEdited::Shrunk
            }
        }
    }

    fn iter(&self) -> Self::Iter<'_> {
        match self {
            FusedBag::Inline(vs) => FusedIter::Slice(vs.iter()),
            FusedBag::Trie(s) => FusedIter::Trie(s.iter()),
        }
    }
}

/// Iterator over a [`FusedBag`]'s values.
#[derive(Debug)]
pub enum FusedIter<'a, V> {
    /// Iterating an inline slice.
    Slice(std::slice::Iter<'a, V>),
    /// Iterating the overflow trie set.
    Trie(crate::set::Iter<'a, V>),
}

impl<'a, V> Iterator for FusedIter<'a, V> {
    type Item = &'a V;

    fn next(&mut self) -> Option<&'a V> {
        match self {
            FusedIter::Slice(it) => it.next(),
            FusedIter::Trie(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            FusedIter::Slice(it) => it.size_hint(),
            FusedIter::Trie(it) => it.size_hint(),
        }
    }
}

impl<'a, V> ExactSizeIterator for FusedIter<'a, V> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn elems<B: ValueBag<u32>>(b: &B) -> BTreeSet<u32> {
        b.iter().copied().collect()
    }

    #[test]
    fn set_bag_promote_insert_remove() {
        let b: AxiomSet<u32> = ValueBag::from_two(1, 2);
        assert_eq!(ValueBag::len(&b), 2);
        assert!(ValueBag::contains(&b, &1));
        assert!(ValueBag::inserted(&b, &1).is_none());
        let b3 = ValueBag::inserted(&b, &3).unwrap();
        assert_eq!(elems(&b3), BTreeSet::from([1, 2, 3]));
        match ValueBag::removed(&b, &1) {
            BagRemoved::Single(v) => assert_eq!(v, 2),
            _ => panic!("expected demotion"),
        }
        match ValueBag::removed(&b3, &9) {
            BagRemoved::NotFound => {}
            _ => panic!("expected NotFound"),
        }
    }

    #[test]
    fn fused_bag_stays_inline_up_to_fuse_max() {
        let mut b: FusedBag<u32> = ValueBag::from_two(0, 1);
        for v in 2..FUSE_MAX as u32 {
            b = b.inserted(&v).unwrap();
        }
        assert!(matches!(b, FusedBag::Inline(_)));
        assert_eq!(b.len(), FUSE_MAX);
        // One more overflows into the trie.
        let big = b.inserted(&(FUSE_MAX as u32)).unwrap();
        assert!(matches!(big, FusedBag::Trie(_)));
        assert_eq!(big.len(), FUSE_MAX + 1);
        assert_eq!(elems(&big), (0..=FUSE_MAX as u32).collect());
    }

    #[test]
    fn fused_bag_demotes_from_trie_to_inline() {
        let mut b: FusedBag<u32> = ValueBag::from_two(0, 1);
        for v in 2..10u32 {
            b = b.inserted(&v).unwrap();
        }
        assert!(matches!(b, FusedBag::Trie(_)));
        // Remove down to FUSE_MAX: must flip back to Inline.
        for v in (FUSE_MAX as u32..10).rev() {
            b = match b.removed(&v) {
                BagRemoved::Bag(b) => b,
                _ => panic!("unexpected"),
            };
        }
        assert!(matches!(b, FusedBag::Inline(_)));
        assert_eq!(elems(&b), (0..FUSE_MAX as u32).collect());
        // And all the way down to a single survivor.
        for v in (2..FUSE_MAX as u32).rev() {
            b = match b.removed(&v) {
                BagRemoved::Bag(b) => b,
                _ => panic!("unexpected"),
            };
        }
        match b.removed(&1) {
            BagRemoved::Single(v) => assert_eq!(v, 0),
            _ => panic!("expected demotion"),
        }
    }

    #[test]
    fn fused_bag_duplicate_and_missing() {
        let b: FusedBag<u32> = ValueBag::from_two(5, 6);
        assert!(b.inserted(&5).is_none());
        assert!(matches!(b.removed(&99), BagRemoved::NotFound));
        assert!(!b.contains(&99));
    }

    #[test]
    fn both_bags_agree_under_random_ops() {
        let mut set_bag: AxiomSet<u32> = ValueBag::from_two(0, 1);
        let mut fused: FusedBag<u32> = ValueBag::from_two(0, 1);
        let mut state = 99u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 40) as u32 % 24
        };
        for _ in 0..500 {
            let v = next();
            if v % 2 == 0 {
                if let Some(s) = ValueBag::inserted(&set_bag, &v) {
                    set_bag = s;
                    fused = fused.inserted(&v).expect("bags diverged on insert");
                } else {
                    assert!(fused.inserted(&v).is_none());
                }
            } else if ValueBag::len(&set_bag) > 2 {
                match (ValueBag::removed(&set_bag, &v), fused.removed(&v)) {
                    (BagRemoved::NotFound, BagRemoved::NotFound) => {}
                    (BagRemoved::Bag(s), BagRemoved::Bag(f)) => {
                        set_bag = s;
                        fused = f;
                    }
                    (BagRemoved::Single(_), BagRemoved::Single(_)) => break,
                    _ => panic!("bags diverged on remove"),
                }
            }
            assert_eq!(ValueBag::len(&set_bag), fused.len());
            assert_eq!(elems(&set_bag), elems(&fused));
        }
    }
}
