//! A persistent hash set built on the AXIOM node encoding.
//!
//! [`AxiomSet`] serves two roles: it is the nested collection behind the
//! multi-map's `1:n` mappings (paper §3: "1:n mappings allocate and nest a
//! set data structure"), and a standalone persistent set used by the static
//! analysis case study's relational algebra.
//!
//! Sets are the homogeneous instance of AXIOM: only categories `EMPTY`,
//! `CAT1` (an element) and `NODE` are populated, which is exactly the CHAMP
//! special case of the encoding (paper §3.1).
//!
//! # Examples
//!
//! ```
//! use axiom::AxiomSet;
//!
//! let a: AxiomSet<u32> = (0..100).collect();
//! let b = a.inserted(200);
//! assert_eq!(a.len(), 100); // persistent: `a` is unchanged
//! assert_eq!(b.len(), 101);
//! assert!(b.contains(&200));
//! let c = b.removed(&200);
//! assert_eq!(a, c);
//! ```

use std::borrow::Borrow;
use std::hash::Hash;
use std::sync::Arc;

use trie_common::bits::{hash_exhausted, mask, next_shift};
use trie_common::hash::hash32;

use crate::bitmap::{Category, SlotBitmap};
use crate::slots::{
    inserted_at, inserted_at_owned, migrate_map, migrated, removed_at, removed_at_owned,
    replaced_at,
};

/// One physical slot of a set node: an inlined element or a sub-trie.
#[derive(Debug, Clone)]
pub(crate) enum Slot<T> {
    /// `CAT1`: an inlined element.
    Elem(T),
    /// `NODE`: a shared sub-trie.
    Child(Arc<Node<T>>),
}

/// A compressed trie node: the 2-bit bitmap plus the dense, permuted slot
/// array (`[elements… | children…]`, each group ascending by mask).
#[derive(Debug, Clone)]
pub(crate) struct BitmapNode<T> {
    pub(crate) bitmap: SlotBitmap,
    pub(crate) slots: Box<[Slot<T>]>,
}

/// A node that resolves full 32-bit hash collisions past the deepest trie
/// level by linear search.
#[derive(Debug, Clone)]
pub(crate) struct CollisionNode<T> {
    pub(crate) hash: u32,
    pub(crate) elems: Vec<T>,
}

/// A trie node.
#[derive(Debug, Clone)]
pub(crate) enum Node<T> {
    Bitmap(BitmapNode<T>),
    Collision(CollisionNode<T>),
}

/// Result of a node-level removal, driving CHAMP-style canonicalization:
/// a sub-tree reduced to a single element is handed to the parent for
/// inlining instead of being kept as a degenerate path.
pub(crate) enum Removed<T> {
    NotFound,
    Node(Node<T>),
    Single(T),
}

/// Result of an in-place node-level removal: edited nodes stay where they
/// are, so only the canonicalization payload travels.
pub(crate) enum EditRemoved<T> {
    NotFound,
    Removed,
    /// The sub-tree collapsed to one element (left in a consumed state; the
    /// parent drops it and inlines the survivor).
    Single(T),
}

impl<T: Clone + Eq + Hash> Node<T> {
    fn empty() -> Node<T> {
        Node::Bitmap(BitmapNode {
            bitmap: SlotBitmap::EMPTY,
            slots: Box::new([]),
        })
    }

    /// Builds the minimal sub-trie holding two *distinct* elements whose
    /// hash prefixes agree up to `shift`.
    fn pair(h1: u32, e1: T, h2: u32, e2: T, shift: u32) -> Node<T> {
        if hash_exhausted(shift) {
            debug_assert_eq!(h1, h2);
            return Node::Collision(CollisionNode {
                hash: h1,
                elems: vec![e1, e2],
            });
        }
        let m1 = mask(h1, shift);
        let m2 = mask(h2, shift);
        if m1 == m2 {
            let child = Node::pair(h1, e1, h2, e2, next_shift(shift));
            Node::Bitmap(BitmapNode {
                bitmap: SlotBitmap::EMPTY.with(m1, Category::Node),
                slots: Box::new([Slot::Child(Arc::new(child))]),
            })
        } else {
            let bitmap = SlotBitmap::EMPTY
                .with(m1, Category::Cat1)
                .with(m2, Category::Cat1);
            let slots: Box<[Slot<T>]> = if m1 < m2 {
                Box::new([Slot::Elem(e1), Slot::Elem(e2)])
            } else {
                Box::new([Slot::Elem(e2), Slot::Elem(e1)])
            };
            Node::Bitmap(BitmapNode { bitmap, slots })
        }
    }

    fn contains<Q>(&self, hash: u32, shift: u32, value: &Q) -> bool
    where
        T: Borrow<Q>,
        Q: Eq + ?Sized,
    {
        match self {
            Node::Collision(c) => c.elems.iter().any(|e| e.borrow() == value),
            Node::Bitmap(b) => {
                // Fused dispatch: category and slot index from one pass.
                match b.bitmap.locate(mask(hash, shift)) {
                    (Category::Empty, _) => false,
                    (Category::Cat1, idx) => match &b.slots[idx] {
                        Slot::Elem(e) => e.borrow() == value,
                        Slot::Child(_) => unreachable!("bitmap says CAT1"),
                    },
                    (Category::Node, idx) => match &b.slots[idx] {
                        Slot::Child(child) => child.contains(hash, next_shift(shift), value),
                        Slot::Elem(_) => unreachable!("bitmap says NODE"),
                    },
                    (Category::Cat2, _) => unreachable!("sets never use CAT2"),
                }
            }
        }
    }

    fn get<Q>(&self, hash: u32, shift: u32, value: &Q) -> Option<&T>
    where
        T: Borrow<Q>,
        Q: Eq + ?Sized,
    {
        match self {
            Node::Collision(c) => c.elems.iter().find(|e| (*e).borrow() == value),
            Node::Bitmap(b) => match b.bitmap.locate(mask(hash, shift)) {
                (Category::Empty, _) => None,
                (Category::Cat1, idx) => match &b.slots[idx] {
                    Slot::Elem(e) if e.borrow() == value => Some(e),
                    _ => None,
                },
                (Category::Node, idx) => match &b.slots[idx] {
                    Slot::Child(child) => child.get(hash, next_shift(shift), value),
                    Slot::Elem(_) => unreachable!("bitmap says NODE"),
                },
                (Category::Cat2, _) => unreachable!("sets never use CAT2"),
            },
        }
    }

    /// Returns the updated node, or `None` when `value` was already present.
    fn inserted(&self, hash: u32, shift: u32, value: &T) -> Option<Node<T>> {
        match self {
            Node::Collision(c) => {
                debug_assert_eq!(c.hash, hash, "collision nodes sit below exhausted hashes");
                if c.elems.iter().any(|e| e == value) {
                    return None;
                }
                let mut elems = c.elems.clone();
                elems.push(value.clone());
                Some(Node::Collision(CollisionNode {
                    hash: c.hash,
                    elems,
                }))
            }
            Node::Bitmap(b) => {
                let m = mask(hash, shift);
                match b.bitmap.get(m) {
                    Category::Empty => {
                        let bitmap = b.bitmap.with(m, Category::Cat1);
                        let idx = bitmap.slot_index(Category::Cat1, m);
                        Some(Node::Bitmap(BitmapNode {
                            bitmap,
                            slots: inserted_at(&b.slots, idx, Slot::Elem(value.clone())),
                        }))
                    }
                    Category::Cat1 => {
                        let idx = b.bitmap.slot_index(Category::Cat1, m);
                        let existing = match &b.slots[idx] {
                            Slot::Elem(e) => e,
                            Slot::Child(_) => unreachable!("bitmap says CAT1"),
                        };
                        if existing == value {
                            return None;
                        }
                        // Prefix clash: both elements descend into a fresh
                        // sub-trie; the slot migrates CAT1 → NODE.
                        let child = Node::pair(
                            hash32(existing),
                            existing.clone(),
                            hash,
                            value.clone(),
                            next_shift(shift),
                        );
                        let bitmap = b.bitmap.with(m, Category::Node);
                        let to = bitmap.slot_index(Category::Node, m);
                        Some(Node::Bitmap(BitmapNode {
                            bitmap,
                            slots: migrated(&b.slots, idx, to, Slot::Child(Arc::new(child))),
                        }))
                    }
                    Category::Node => {
                        let idx = b.bitmap.slot_index(Category::Node, m);
                        let child = match &b.slots[idx] {
                            Slot::Child(c) => c,
                            Slot::Elem(_) => unreachable!("bitmap says NODE"),
                        };
                        let new_child = child.inserted(hash, next_shift(shift), value)?;
                        Some(Node::Bitmap(BitmapNode {
                            bitmap: b.bitmap,
                            slots: replaced_at(&b.slots, idx, Slot::Child(Arc::new(new_child))),
                        }))
                    }
                    Category::Cat2 => unreachable!("sets never use CAT2"),
                }
            }
        }
    }

    /// In-place insert driven by `Arc` uniqueness: a uniquely-owned node is
    /// edited directly (slots moved, never cloned); a shared node falls back
    /// to the persistent path copy for its whole subtree. Takes `value` by
    /// ownership — the common paths move it into its final slot with zero
    /// clones. Returns true if the set grew.
    fn insert_in_place(this: &mut Arc<Node<T>>, hash: u32, shift: u32, value: T) -> bool {
        match Arc::get_mut(this) {
            Some(Node::Collision(c)) => {
                debug_assert_eq!(c.hash, hash, "collision nodes sit below exhausted hashes");
                if c.elems.contains(&value) {
                    return false;
                }
                c.elems.push(value);
                true
            }
            Some(Node::Bitmap(b)) => {
                let m = mask(hash, shift);
                let (cat, idx) = b.bitmap.locate(m);
                match cat {
                    Category::Empty => {
                        b.bitmap = b.bitmap.with(m, Category::Cat1);
                        let idx = b.bitmap.slot_index(Category::Cat1, m);
                        b.slots =
                            inserted_at_owned(std::mem::take(&mut b.slots), idx, Slot::Elem(value));
                        true
                    }
                    Category::Cat1 => {
                        let existing = match &b.slots[idx] {
                            Slot::Elem(e) => e,
                            Slot::Child(_) => unreachable!("bitmap says CAT1"),
                        };
                        if *existing == value {
                            return false;
                        }
                        // Prefix clash: both elements descend into a fresh
                        // sub-trie; the slot migrates CAT1 → NODE in place.
                        let existing_hash = hash32(existing);
                        b.bitmap = b.bitmap.with(m, Category::Node);
                        let to = b.bitmap.slot_index(Category::Node, m);
                        migrate_map(&mut b.slots, idx, to, |slot| {
                            let Slot::Elem(existing) = slot else {
                                unreachable!("bitmap says CAT1")
                            };
                            Slot::Child(Arc::new(Node::pair(
                                existing_hash,
                                existing,
                                hash,
                                value,
                                next_shift(shift),
                            )))
                        });
                        true
                    }
                    Category::Node => {
                        let Slot::Child(child) = &mut b.slots[idx] else {
                            unreachable!("bitmap says NODE")
                        };
                        Node::insert_in_place(child, hash, next_shift(shift), value)
                    }
                    Category::Cat2 => unreachable!("sets never use CAT2"),
                }
            }
            None => match this.inserted(hash, shift, &value) {
                Some(node) => {
                    *this = Arc::new(node);
                    true
                }
                None => false,
            },
        }
    }

    /// In-place removal (same ownership discipline as
    /// [`Node::insert_in_place`]), canonicalizing exactly like
    /// [`Node::removed`].
    fn remove_in_place<Q>(
        this: &mut Arc<Node<T>>,
        hash: u32,
        shift: u32,
        value: &Q,
    ) -> EditRemoved<T>
    where
        T: Borrow<Q>,
        Q: Eq + ?Sized,
    {
        match Arc::get_mut(this) {
            Some(Node::Collision(c)) => {
                let Some(pos) = c.elems.iter().position(|e| e.borrow() == value) else {
                    return EditRemoved::NotFound;
                };
                if c.elems.len() == 2 {
                    return EditRemoved::Single(c.elems.swap_remove(1 - pos));
                }
                c.elems.swap_remove(pos);
                EditRemoved::Removed
            }
            Some(Node::Bitmap(b)) => {
                let m = mask(hash, shift);
                let (cat, idx) = b.bitmap.locate(m);
                match cat {
                    Category::Empty => EditRemoved::NotFound,
                    Category::Cat1 => {
                        let matches = match &b.slots[idx] {
                            Slot::Elem(e) => e.borrow() == value,
                            Slot::Child(_) => unreachable!("bitmap says CAT1"),
                        };
                        if !matches {
                            return EditRemoved::NotFound;
                        }
                        let bitmap = b.bitmap.with(m, Category::Empty);
                        if shift > 0 && bitmap.payload_arity() == 1 && bitmap.node_arity() == 0 {
                            // The node held exactly two elements; hand the
                            // survivor (moved out) to the parent for inlining.
                            debug_assert_eq!(b.slots.len(), 2);
                            let mut slots = std::mem::take(&mut b.slots).into_vec();
                            let Slot::Elem(survivor) = slots.swap_remove(1 - idx) else {
                                unreachable!("both slots are payload")
                            };
                            return EditRemoved::Single(survivor);
                        }
                        b.bitmap = bitmap;
                        b.slots = removed_at_owned(std::mem::take(&mut b.slots), idx);
                        EditRemoved::Removed
                    }
                    Category::Node => {
                        let Slot::Child(child) = &mut b.slots[idx] else {
                            unreachable!("bitmap says NODE")
                        };
                        match Node::remove_in_place(child, hash, next_shift(shift), value) {
                            EditRemoved::NotFound => EditRemoved::NotFound,
                            EditRemoved::Removed => EditRemoved::Removed,
                            EditRemoved::Single(e) => {
                                if shift > 0
                                    && b.bitmap.payload_arity() == 0
                                    && b.bitmap.node_arity() == 1
                                {
                                    // A pure chain node dissolves: keep
                                    // propagating the survivor upward.
                                    return EditRemoved::Single(e);
                                }
                                // Inline the survivor: NODE → CAT1 in place,
                                // dropping the collapsed child.
                                b.bitmap = b.bitmap.with(m, Category::Cat1);
                                let to = b.bitmap.slot_index(Category::Cat1, m);
                                migrate_map(&mut b.slots, idx, to, |_child| Slot::Elem(e));
                                EditRemoved::Removed
                            }
                        }
                    }
                    Category::Cat2 => unreachable!("sets never use CAT2"),
                }
            }
            None => match this.removed(hash, shift, value) {
                Removed::NotFound => EditRemoved::NotFound,
                Removed::Node(n) => {
                    *this = Arc::new(n);
                    EditRemoved::Removed
                }
                Removed::Single(e) => EditRemoved::Single(e),
            },
        }
    }

    fn removed<Q>(&self, hash: u32, shift: u32, value: &Q) -> Removed<T>
    where
        T: Borrow<Q>,
        Q: Eq + ?Sized,
    {
        match self {
            Node::Collision(c) => {
                let Some(pos) = c.elems.iter().position(|e| e.borrow() == value) else {
                    return Removed::NotFound;
                };
                if c.elems.len() == 2 {
                    let survivor = c.elems[1 - pos].clone();
                    return Removed::Single(survivor);
                }
                let mut elems = c.elems.clone();
                elems.remove(pos);
                Removed::Node(Node::Collision(CollisionNode {
                    hash: c.hash,
                    elems,
                }))
            }
            Node::Bitmap(b) => {
                let m = mask(hash, shift);
                match b.bitmap.get(m) {
                    Category::Empty => Removed::NotFound,
                    Category::Cat1 => {
                        let idx = b.bitmap.slot_index(Category::Cat1, m);
                        let matches = match &b.slots[idx] {
                            Slot::Elem(e) => e.borrow() == value,
                            Slot::Child(_) => unreachable!("bitmap says CAT1"),
                        };
                        if !matches {
                            return Removed::NotFound;
                        }
                        let bitmap = b.bitmap.with(m, Category::Empty);
                        if shift > 0 && bitmap.payload_arity() == 1 && bitmap.node_arity() == 0 {
                            // The node held exactly two elements; hand the
                            // survivor to the parent for inlining.
                            debug_assert_eq!(b.slots.len(), 2);
                            let survivor = match &b.slots[1 - idx] {
                                Slot::Elem(e) => e.clone(),
                                Slot::Child(_) => unreachable!("both slots are payload"),
                            };
                            return Removed::Single(survivor);
                        }
                        Removed::Node(Node::Bitmap(BitmapNode {
                            bitmap,
                            slots: removed_at(&b.slots, idx),
                        }))
                    }
                    Category::Node => {
                        let idx = b.bitmap.slot_index(Category::Node, m);
                        let child = match &b.slots[idx] {
                            Slot::Child(c) => c,
                            Slot::Elem(_) => unreachable!("bitmap says NODE"),
                        };
                        match child.removed(hash, next_shift(shift), value) {
                            Removed::NotFound => Removed::NotFound,
                            Removed::Node(n) => Removed::Node(Node::Bitmap(BitmapNode {
                                bitmap: b.bitmap,
                                slots: replaced_at(&b.slots, idx, Slot::Child(Arc::new(n))),
                            })),
                            Removed::Single(e) => {
                                if shift > 0
                                    && b.bitmap.payload_arity() == 0
                                    && b.bitmap.node_arity() == 1
                                {
                                    // A pure chain node dissolves: keep
                                    // propagating the survivor upward.
                                    return Removed::Single(e);
                                }
                                // Inline the survivor: slot migrates NODE → CAT1.
                                let bitmap = b.bitmap.with(m, Category::Cat1);
                                let to = bitmap.slot_index(Category::Cat1, m);
                                Removed::Node(Node::Bitmap(BitmapNode {
                                    bitmap,
                                    slots: migrated(&b.slots, idx, to, Slot::Elem(e)),
                                }))
                            }
                        }
                    }
                    Category::Cat2 => unreachable!("sets never use CAT2"),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Structural set algebra: lockstep node walks.
//
// Both operands are walked in lockstep over the union of their occupied
// masks; pointer-identical subtrees short-circuit (`Arc::ptr_eq` is a sound
// subtree-equivalence test because canonical tries represent equal sets with
// identical structure), and results canonicalize on the way up through
// `Cut`. Element counts travel as deltas so a short-circuited subtree costs
// nothing to account for.
// ---------------------------------------------------------------------------

/// What one lockstep walk found at a mask position.
enum At<'a, T> {
    Nothing,
    Elem(&'a T),
    Sub(&'a Arc<Node<T>>),
}

fn at<'a, T>(b: &'a BitmapNode<T>, m: u32) -> At<'a, T> {
    match b.bitmap.locate(m) {
        (Category::Empty, _) => At::Nothing,
        (Category::Cat1, idx) => match &b.slots[idx] {
            Slot::Elem(e) => At::Elem(e),
            Slot::Child(_) => unreachable!("bitmap says CAT1"),
        },
        (Category::Node, idx) => match &b.slots[idx] {
            Slot::Child(c) => At::Sub(c),
            Slot::Elem(_) => unreachable!("bitmap says NODE"),
        },
        (Category::Cat2, _) => unreachable!("sets never use CAT2"),
    }
}

/// A shrinking walk's result, driving canonicalization on the way up.
enum Cut<T> {
    /// The result equals the left operand's subtree: reuse its `Arc`.
    Unchanged,
    /// Nothing survives below this branch.
    Empty,
    /// Exactly one element survives: the parent inlines it.
    One(T),
    /// A rebuilt (canonical) node.
    Node(Node<T>),
}

/// Elements below `node` (walked, not stored; only non-shared subtrees are
/// ever counted, keeping bulk ops O(changed)).
fn node_len<T>(node: &Node<T>) -> usize {
    match node {
        Node::Collision(c) => c.elems.len(),
        Node::Bitmap(b) => b
            .slots
            .iter()
            .map(|s| match s {
                Slot::Elem(_) => 1,
                Slot::Child(c) => node_len(c),
            })
            .sum(),
    }
}

fn for_each_elem<T>(node: &Node<T>, f: &mut impl FnMut(&T)) {
    match node {
        Node::Collision(c) => c.elems.iter().for_each(&mut *f),
        Node::Bitmap(b) => {
            for s in &b.slots {
                match s {
                    Slot::Elem(e) => f(e),
                    Slot::Child(c) => for_each_elem(c, f),
                }
            }
        }
    }
}

/// Assembles a canonical bitmap node from the walked groups, collapsing
/// degenerate shapes (`Cut::Empty` / `Cut::One`) for the parent to inline.
fn assemble<T>(bitmap: SlotBitmap, mut payload: Vec<Slot<T>>, children: Vec<Slot<T>>) -> Cut<T> {
    match (payload.len(), children.len()) {
        (0, 0) => Cut::Empty,
        (1, 0) => match payload.pop() {
            Some(Slot::Elem(e)) => Cut::One(e),
            _ => unreachable!("payload group holds elements"),
        },
        _ => {
            payload.extend(children);
            Cut::Node(Node::Bitmap(BitmapNode {
                bitmap,
                slots: payload.into_boxed_slice(),
            }))
        }
    }
}

/// Lockstep union. Returns `(None, 0)` when the result equals `a` (the
/// caller reuses the `Arc`), else the new node plus how many elements it
/// gained relative to `a`.
fn union_nodes<T: Clone + Eq + Hash>(
    a: &Node<T>,
    b: &Node<T>,
    shift: u32,
) -> (Option<Node<T>>, usize) {
    match (a, b) {
        (Node::Collision(x), Node::Collision(y)) => {
            debug_assert_eq!(x.hash, y.hash, "lockstep paths fix the full hash");
            let fresh: Vec<&T> = y.elems.iter().filter(|e| !x.elems.contains(e)).collect();
            if fresh.is_empty() {
                return (None, 0);
            }
            let added = fresh.len();
            let mut elems = x.elems.clone();
            elems.extend(fresh.into_iter().cloned());
            (
                Some(Node::Collision(CollisionNode {
                    hash: x.hash,
                    elems,
                })),
                added,
            )
        }
        (Node::Bitmap(x), Node::Bitmap(y)) => {
            let mut bitmap = SlotBitmap::EMPTY;
            let mut payload: Vec<Slot<T>> = Vec::new();
            let mut children: Vec<Slot<T>> = Vec::new();
            let mut added = 0usize;
            let mut changed = false;
            for m in 0..32u32 {
                match (at(x, m), at(y, m)) {
                    (At::Nothing, At::Nothing) => {}
                    (At::Elem(ea), At::Nothing) => {
                        bitmap = bitmap.with(m, Category::Cat1);
                        payload.push(Slot::Elem(ea.clone()));
                    }
                    (At::Nothing, At::Elem(eb)) => {
                        bitmap = bitmap.with(m, Category::Cat1);
                        payload.push(Slot::Elem(eb.clone()));
                        added += 1;
                        changed = true;
                    }
                    (At::Sub(ac), At::Nothing) => {
                        bitmap = bitmap.with(m, Category::Node);
                        children.push(Slot::Child(Arc::clone(ac)));
                    }
                    (At::Nothing, At::Sub(bc)) => {
                        bitmap = bitmap.with(m, Category::Node);
                        added += node_len(bc);
                        children.push(Slot::Child(Arc::clone(bc)));
                        changed = true;
                    }
                    (At::Elem(ea), At::Elem(eb)) => {
                        if ea == eb {
                            bitmap = bitmap.with(m, Category::Cat1);
                            payload.push(Slot::Elem(ea.clone()));
                        } else {
                            bitmap = bitmap.with(m, Category::Node);
                            let child = Node::pair(
                                hash32(ea),
                                ea.clone(),
                                hash32(eb),
                                eb.clone(),
                                next_shift(shift),
                            );
                            children.push(Slot::Child(Arc::new(child)));
                            added += 1;
                            changed = true;
                        }
                    }
                    (At::Elem(ea), At::Sub(bc)) => {
                        // `a`'s lone element joins (or is absorbed by) `b`'s
                        // subtree; either way the slot becomes NODE.
                        bitmap = bitmap.with(m, Category::Node);
                        match bc.inserted(hash32(ea), next_shift(shift), ea) {
                            None => {
                                added += node_len(bc) - 1;
                                children.push(Slot::Child(Arc::clone(bc)));
                            }
                            Some(n) => {
                                added += node_len(bc);
                                children.push(Slot::Child(Arc::new(n)));
                            }
                        }
                        changed = true;
                    }
                    (At::Sub(ac), At::Elem(eb)) => {
                        bitmap = bitmap.with(m, Category::Node);
                        match ac.inserted(hash32(eb), next_shift(shift), eb) {
                            None => children.push(Slot::Child(Arc::clone(ac))),
                            Some(n) => {
                                children.push(Slot::Child(Arc::new(n)));
                                added += 1;
                                changed = true;
                            }
                        }
                    }
                    (At::Sub(ac), At::Sub(bc)) => {
                        bitmap = bitmap.with(m, Category::Node);
                        if Arc::ptr_eq(ac, bc) {
                            children.push(Slot::Child(Arc::clone(ac)));
                        } else {
                            match union_nodes(ac, bc, next_shift(shift)) {
                                (None, _) => children.push(Slot::Child(Arc::clone(ac))),
                                (Some(n), add) => {
                                    children.push(Slot::Child(Arc::new(n)));
                                    added += add;
                                    changed = true;
                                }
                            }
                        }
                    }
                }
            }
            if !changed {
                return (None, 0);
            }
            payload.extend(children);
            (
                Some(Node::Bitmap(BitmapNode {
                    bitmap,
                    slots: payload.into_boxed_slice(),
                })),
                added,
            )
        }
        _ => unreachable!("canonical tries align node kinds at equal depth"),
    }
}

/// Lockstep intersection. Returns the surviving shape plus how many of `a`'s
/// elements were dropped (`Cut::Unchanged` ⇒ 0).
fn intersect_nodes<T: Clone + Eq + Hash>(a: &Node<T>, b: &Node<T>, shift: u32) -> (Cut<T>, usize) {
    match (a, b) {
        (Node::Collision(x), Node::Collision(y)) => {
            debug_assert_eq!(x.hash, y.hash, "lockstep paths fix the full hash");
            let mut kept: Vec<T> = x
                .elems
                .iter()
                .filter(|e| y.elems.contains(e))
                .cloned()
                .collect();
            let removed = x.elems.len() - kept.len();
            match kept.len() {
                n if n == x.elems.len() => (Cut::Unchanged, 0),
                0 => (Cut::Empty, removed),
                1 => (Cut::One(kept.pop().expect("len == 1")), removed),
                _ => (
                    Cut::Node(Node::Collision(CollisionNode {
                        hash: x.hash,
                        elems: kept,
                    })),
                    removed,
                ),
            }
        }
        (Node::Bitmap(x), Node::Bitmap(y)) => {
            let mut bitmap = SlotBitmap::EMPTY;
            let mut payload: Vec<Slot<T>> = Vec::new();
            let mut children: Vec<Slot<T>> = Vec::new();
            let mut removed = 0usize;
            let mut changed = false;
            for m in 0..32u32 {
                let pos_a = at(x, m);
                if matches!(pos_a, At::Nothing) {
                    continue;
                }
                match (pos_a, at(y, m)) {
                    (At::Elem(_), At::Nothing) => {
                        removed += 1;
                        changed = true;
                    }
                    (At::Elem(ea), At::Elem(eb)) => {
                        if ea == eb {
                            bitmap = bitmap.with(m, Category::Cat1);
                            payload.push(Slot::Elem(ea.clone()));
                        } else {
                            removed += 1;
                            changed = true;
                        }
                    }
                    (At::Elem(ea), At::Sub(bc)) => {
                        if bc.contains(hash32(ea), next_shift(shift), ea) {
                            bitmap = bitmap.with(m, Category::Cat1);
                            payload.push(Slot::Elem(ea.clone()));
                        } else {
                            removed += 1;
                            changed = true;
                        }
                    }
                    (At::Sub(ac), At::Nothing) => {
                        removed += node_len(ac);
                        changed = true;
                    }
                    (At::Sub(ac), At::Elem(eb)) => {
                        let total = node_len(ac);
                        if ac.contains(hash32(eb), next_shift(shift), eb) {
                            // The intersection of this subtree with a lone
                            // element is that element, inlined.
                            bitmap = bitmap.with(m, Category::Cat1);
                            payload.push(Slot::Elem(eb.clone()));
                            removed += total - 1;
                        } else {
                            removed += total;
                        }
                        changed = true;
                    }
                    (At::Sub(ac), At::Sub(bc)) => {
                        if Arc::ptr_eq(ac, bc) {
                            bitmap = bitmap.with(m, Category::Node);
                            children.push(Slot::Child(Arc::clone(ac)));
                            continue;
                        }
                        match intersect_nodes(ac, bc, next_shift(shift)) {
                            (Cut::Unchanged, _) => {
                                bitmap = bitmap.with(m, Category::Node);
                                children.push(Slot::Child(Arc::clone(ac)));
                            }
                            (Cut::Empty, r) => {
                                removed += r;
                                changed = true;
                            }
                            (Cut::One(e), r) => {
                                bitmap = bitmap.with(m, Category::Cat1);
                                payload.push(Slot::Elem(e));
                                removed += r;
                                changed = true;
                            }
                            (Cut::Node(n), r) => {
                                bitmap = bitmap.with(m, Category::Node);
                                children.push(Slot::Child(Arc::new(n)));
                                removed += r;
                                changed = true;
                            }
                        }
                    }
                    (At::Nothing, _) => unreachable!("filtered above"),
                }
            }
            if !changed {
                return (Cut::Unchanged, 0);
            }
            (assemble(bitmap, payload, children), removed)
        }
        _ => unreachable!("canonical tries align node kinds at equal depth"),
    }
}

/// Lockstep difference (`a \ b`). Returns the surviving shape plus how many
/// elements survive (`Cut::Unchanged` ⇒ the whole subtree, counted).
fn difference_nodes<T: Clone + Eq + Hash>(a: &Node<T>, b: &Node<T>, shift: u32) -> (Cut<T>, usize) {
    match (a, b) {
        (Node::Collision(x), Node::Collision(y)) => {
            debug_assert_eq!(x.hash, y.hash, "lockstep paths fix the full hash");
            let mut kept: Vec<T> = x
                .elems
                .iter()
                .filter(|e| !y.elems.contains(e))
                .cloned()
                .collect();
            match kept.len() {
                n if n == x.elems.len() => (Cut::Unchanged, n),
                0 => (Cut::Empty, 0),
                1 => (Cut::One(kept.pop().expect("len == 1")), 1),
                n => (
                    Cut::Node(Node::Collision(CollisionNode {
                        hash: x.hash,
                        elems: kept,
                    })),
                    n,
                ),
            }
        }
        (Node::Bitmap(x), Node::Bitmap(y)) => {
            let mut bitmap = SlotBitmap::EMPTY;
            let mut payload: Vec<Slot<T>> = Vec::new();
            let mut children: Vec<Slot<T>> = Vec::new();
            let mut kept = 0usize;
            let mut changed = false;
            for m in 0..32u32 {
                let pos_a = at(x, m);
                if matches!(pos_a, At::Nothing) {
                    continue;
                }
                match (pos_a, at(y, m)) {
                    (At::Elem(ea), At::Nothing) => {
                        bitmap = bitmap.with(m, Category::Cat1);
                        payload.push(Slot::Elem(ea.clone()));
                        kept += 1;
                    }
                    (At::Elem(ea), At::Elem(eb)) => {
                        if ea == eb {
                            changed = true;
                        } else {
                            bitmap = bitmap.with(m, Category::Cat1);
                            payload.push(Slot::Elem(ea.clone()));
                            kept += 1;
                        }
                    }
                    (At::Elem(ea), At::Sub(bc)) => {
                        if bc.contains(hash32(ea), next_shift(shift), ea) {
                            changed = true;
                        } else {
                            bitmap = bitmap.with(m, Category::Cat1);
                            payload.push(Slot::Elem(ea.clone()));
                            kept += 1;
                        }
                    }
                    (At::Sub(ac), At::Nothing) => {
                        bitmap = bitmap.with(m, Category::Node);
                        children.push(Slot::Child(Arc::clone(ac)));
                        kept += node_len(ac);
                    }
                    (At::Sub(ac), At::Elem(eb)) => {
                        match ac.removed(hash32(eb), next_shift(shift), eb) {
                            Removed::NotFound => {
                                bitmap = bitmap.with(m, Category::Node);
                                children.push(Slot::Child(Arc::clone(ac)));
                                kept += node_len(ac);
                            }
                            Removed::Node(n) => {
                                kept += node_len(&n);
                                bitmap = bitmap.with(m, Category::Node);
                                children.push(Slot::Child(Arc::new(n)));
                                changed = true;
                            }
                            Removed::Single(e) => {
                                bitmap = bitmap.with(m, Category::Cat1);
                                payload.push(Slot::Elem(e));
                                kept += 1;
                                changed = true;
                            }
                        }
                    }
                    (At::Sub(ac), At::Sub(bc)) => {
                        if Arc::ptr_eq(ac, bc) {
                            // The entire shared subtree cancels out.
                            changed = true;
                            continue;
                        }
                        match difference_nodes(ac, bc, next_shift(shift)) {
                            (Cut::Unchanged, k) => {
                                bitmap = bitmap.with(m, Category::Node);
                                children.push(Slot::Child(Arc::clone(ac)));
                                kept += k;
                            }
                            (Cut::Empty, _) => changed = true,
                            (Cut::One(e), _) => {
                                bitmap = bitmap.with(m, Category::Cat1);
                                payload.push(Slot::Elem(e));
                                kept += 1;
                                changed = true;
                            }
                            (Cut::Node(n), k) => {
                                bitmap = bitmap.with(m, Category::Node);
                                children.push(Slot::Child(Arc::new(n)));
                                kept += k;
                                changed = true;
                            }
                        }
                    }
                    (At::Nothing, _) => unreachable!("filtered above"),
                }
            }
            if !changed {
                return (Cut::Unchanged, kept);
            }
            (assemble(bitmap, payload, children), kept)
        }
        _ => unreachable!("canonical tries align node kinds at equal depth"),
    }
}

/// Lockstep diff (`a` old, `b` new): pointer-identical subtrees emit
/// nothing, so the output and the walk are both O(changed).
fn diff_nodes<T: Clone + Eq + Hash>(
    a: &Node<T>,
    b: &Node<T>,
    shift: u32,
    out: &mut trie_common::ops::SetDiff<T>,
) {
    match (a, b) {
        (Node::Collision(x), Node::Collision(y)) => {
            debug_assert_eq!(x.hash, y.hash, "lockstep paths fix the full hash");
            for e in &x.elems {
                if !y.elems.contains(e) {
                    out.removed.push(e.clone());
                }
            }
            for e in &y.elems {
                if !x.elems.contains(e) {
                    out.added.push(e.clone());
                }
            }
        }
        (Node::Bitmap(x), Node::Bitmap(y)) => {
            for m in 0..32u32 {
                match (at(x, m), at(y, m)) {
                    (At::Nothing, At::Nothing) => {}
                    (At::Elem(ea), At::Nothing) => out.removed.push(ea.clone()),
                    (At::Nothing, At::Elem(eb)) => out.added.push(eb.clone()),
                    (At::Sub(ac), At::Nothing) => {
                        for_each_elem(ac, &mut |e| out.removed.push(e.clone()));
                    }
                    (At::Nothing, At::Sub(bc)) => {
                        for_each_elem(bc, &mut |e| out.added.push(e.clone()));
                    }
                    (At::Elem(ea), At::Elem(eb)) => {
                        if ea != eb {
                            out.removed.push(ea.clone());
                            out.added.push(eb.clone());
                        }
                    }
                    (At::Elem(ea), At::Sub(bc)) => {
                        if !bc.contains(hash32(ea), next_shift(shift), ea) {
                            out.removed.push(ea.clone());
                        }
                        for_each_elem(bc, &mut |e| {
                            if e != ea {
                                out.added.push(e.clone());
                            }
                        });
                    }
                    (At::Sub(ac), At::Elem(eb)) => {
                        if !ac.contains(hash32(eb), next_shift(shift), eb) {
                            out.added.push(eb.clone());
                        }
                        for_each_elem(ac, &mut |e| {
                            if e != eb {
                                out.removed.push(e.clone());
                            }
                        });
                    }
                    (At::Sub(ac), At::Sub(bc)) => {
                        if !Arc::ptr_eq(ac, bc) {
                            diff_nodes(ac, bc, next_shift(shift), out);
                        }
                    }
                }
            }
        }
        _ => unreachable!("canonical tries align node kinds at equal depth"),
    }
}

/// A persistent (immutable, structurally shared) hash set.
///
/// Cheap to clone (`O(1)`, bumps one reference count); every update returns a
/// new set sharing unchanged sub-tries with its ancestors. See the
/// [module documentation](self) for the encoding.
pub struct AxiomSet<T> {
    pub(crate) root: Arc<Node<T>>,
    pub(crate) len: usize,
}

impl<T> Clone for AxiomSet<T> {
    fn clone(&self) -> Self {
        AxiomSet {
            root: Arc::clone(&self.root),
            len: self.len,
        }
    }
}

impl<T: Clone + Eq + Hash> AxiomSet<T> {
    /// Creates an empty set.
    ///
    /// # Examples
    ///
    /// ```
    /// let s = axiom::AxiomSet::<u32>::new();
    /// assert!(s.is_empty());
    /// ```
    pub fn new() -> Self {
        AxiomSet {
            root: Arc::new(Node::empty()),
            len: 0,
        }
    }

    /// Creates the two-element set used when a `1:1` multi-map slot is
    /// promoted to `1:n`. `a` and `b` must be distinct.
    pub(crate) fn from_two(a: T, b: T) -> Self {
        debug_assert!(a != b);
        let root = Node::pair(hash32(&a), a, hash32(&b), b, 0);
        AxiomSet {
            root: Arc::new(root),
            len: 2,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the set holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test.
    ///
    /// # Examples
    ///
    /// ```
    /// let s: axiom::AxiomSet<String> = ["a".to_string()].into_iter().collect();
    /// assert!(s.contains("a")); // borrowed-form lookup
    /// ```
    pub fn contains<Q>(&self, value: &Q) -> bool
    where
        T: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.root.contains(hash32(value), 0, value)
    }

    /// Returns a reference to the stored element equal to `value`, if any.
    pub fn get<Q>(&self, value: &Q) -> Option<&T>
    where
        T: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.root.get(hash32(value), 0, value)
    }

    /// Returns a set additionally containing `value`; `self` is unchanged.
    pub fn inserted(&self, value: T) -> Self {
        let mut next = self.clone();
        next.insert_mut(value);
        next
    }

    /// Inserts `value` in place. Uniquely-owned trie nodes along the spine
    /// are edited directly; nodes shared with other handles are path-copied,
    /// so other handles to the previous version are unaffected. Returns true
    /// if the set grew.
    pub fn insert_mut(&mut self, value: T) -> bool {
        let hash = hash32(&value);
        if Node::insert_in_place(&mut self.root, hash, 0, value) {
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Returns a set without `value`; `self` is unchanged.
    pub fn removed<Q>(&self, value: &Q) -> Self
    where
        T: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        let mut next = self.clone();
        next.remove_mut(value);
        next
    }

    /// Removes `value` in place (editing uniquely-owned nodes, path-copying
    /// shared ones). Returns true if the set shrank.
    pub fn remove_mut<Q>(&mut self, value: &Q) -> bool
    where
        T: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        match Node::remove_in_place(&mut self.root, hash32(value), 0, value) {
            EditRemoved::NotFound => false,
            EditRemoved::Removed => {
                self.len -= 1;
                true
            }
            EditRemoved::Single(survivor) => {
                // Only reachable when the root collapses to one element.
                let root = Node::empty();
                let root = root
                    .inserted(hash32(&survivor), 0, &survivor)
                    .expect("inserting into empty");
                self.root = Arc::new(root);
                self.len -= 1;
                true
            }
        }
    }

    /// The sole element of a singleton set (multi-map demotion helper).
    ///
    /// # Panics
    ///
    /// Panics if the set does not hold exactly one element.
    pub(crate) fn sole(&self) -> &T {
        assert_eq!(self.len, 1, "sole() requires a singleton set");
        self.iter().next().expect("len == 1")
    }

    /// Iterates the elements in unspecified (trie) order.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter::new(&self.root, self.len)
    }

    /// Rebuilds the one-element set (canonicalization helper).
    fn singleton(value: T) -> Self {
        let root = Node::empty()
            .inserted(hash32(&value), 0, &value)
            .expect("inserting into empty");
        AxiomSet {
            root: Arc::new(root),
            len: 1,
        }
    }

    /// Union of two sets via a lockstep structural walk: subtrees the
    /// operands share by pointer are reused wholesale, so the cost is
    /// O(changed) — and a self-union returns `self` without allocating.
    pub fn union(&self, other: &Self) -> Self {
        if other.is_empty() || Arc::ptr_eq(&self.root, &other.root) {
            return self.clone();
        }
        if self.is_empty() {
            return other.clone();
        }
        match union_nodes(&self.root, &other.root, 0) {
            (None, _) => self.clone(),
            (Some(node), added) => AxiomSet {
                root: Arc::new(node),
                len: self.len + added,
            },
        }
    }

    /// Intersection of two sets via a lockstep structural walk (shared
    /// subtrees survive by pointer, cost O(changed)).
    pub fn intersect(&self, other: &Self) -> Self {
        if self.is_empty() || Arc::ptr_eq(&self.root, &other.root) {
            return self.clone();
        }
        if other.is_empty() {
            return AxiomSet::new();
        }
        match intersect_nodes(&self.root, &other.root, 0) {
            (Cut::Unchanged, _) => self.clone(),
            (Cut::Empty, _) => AxiomSet::new(),
            (Cut::One(e), _) => Self::singleton(e),
            (Cut::Node(n), removed) => AxiomSet {
                root: Arc::new(n),
                len: self.len - removed,
            },
        }
    }

    /// Elements of `self` not in `other`, via a lockstep structural walk
    /// (a shared subtree cancels out in O(1)).
    pub fn difference(&self, other: &Self) -> Self {
        if self.is_empty() || other.is_empty() {
            return self.clone();
        }
        if Arc::ptr_eq(&self.root, &other.root) {
            return AxiomSet::new();
        }
        match difference_nodes(&self.root, &other.root, 0) {
            (Cut::Unchanged, _) => self.clone(),
            (Cut::Empty, _) => AxiomSet::new(),
            (Cut::One(e), _) => Self::singleton(e),
            (Cut::Node(n), kept) => AxiomSet {
                root: Arc::new(n),
                len: kept,
            },
        }
    }

    /// What changed between `self` (old) and `other` (new): pointer-shared
    /// subtrees emit nothing, so output and walk are both O(changed).
    pub fn diff(&self, other: &Self) -> trie_common::ops::SetDiff<T> {
        let mut out = trie_common::ops::SetDiff::new();
        if Arc::ptr_eq(&self.root, &other.root) {
            return out;
        }
        if self.is_empty() {
            out.added.extend(other.iter().cloned());
            return out;
        }
        if other.is_empty() {
            out.removed.extend(self.iter().cloned());
            return out;
        }
        diff_nodes(&self.root, &other.root, 0, &mut out);
        out
    }

    /// Element-wise union: iterates the smaller into the larger. Retained as
    /// the documented fallback path (differential-testing and benchmark
    /// baseline for the structural walk).
    pub fn union_elementwise(&self, other: &Self) -> Self {
        let (big, small) = if self.len >= other.len {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = big.clone();
        for v in small.iter() {
            out.insert_mut(v.clone());
        }
        out
    }

    /// Element-wise intersection: scans the smaller, probes the larger.
    /// Retained as the documented fallback path (differential-testing and
    /// benchmark baseline for the structural walk).
    pub fn intersect_elementwise(&self, other: &Self) -> Self {
        let (probe, scan) = if self.len >= other.len {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = AxiomSet::new();
        for v in scan.iter() {
            if probe.contains(v) {
                out.insert_mut(v.clone());
            }
        }
        out
    }

    /// Element-wise difference: probes `other` per element. Retained as the
    /// documented fallback path (differential-testing and benchmark baseline
    /// for the structural walk).
    pub fn difference_elementwise(&self, other: &Self) -> Self {
        let mut out = AxiomSet::new();
        for v in self.iter() {
            if !other.contains(v) {
                out.insert_mut(v.clone());
            }
        }
        out
    }

    /// True if every element of `self` is in `other`.
    pub fn is_subset(&self, other: &Self) -> bool {
        self.len <= other.len && self.iter().all(|v| other.contains(v))
    }

    /// True if the sets share no element.
    pub fn is_disjoint(&self, other: &Self) -> bool {
        let (probe, scan) = if self.len >= other.len {
            (self, other)
        } else {
            (other, self)
        };
        scan.iter().all(|v| !probe.contains(v))
    }

    pub(crate) fn root_node(&self) -> &Node<T> {
        &self.root
    }

    /// Recursively checks the canonical-form invariants (test support).
    ///
    /// # Panics
    ///
    /// Panics if any structural invariant is violated.
    #[doc(hidden)]
    pub fn assert_invariants(&self) {
        let counted = validate(&self.root, 0, None);
        assert_eq!(counted, self.len, "len bookkeeping");
    }
}

/// Validates canonical form below `node`; returns the element count.
fn validate<T: Clone + Eq + Hash>(node: &Node<T>, shift: u32, prefix: Option<u32>) -> usize {
    match node {
        Node::Collision(c) => {
            assert!(hash_exhausted(shift), "collision node above max depth");
            assert!(c.elems.len() >= 2, "collision node with < 2 elements");
            for (i, e) in c.elems.iter().enumerate() {
                assert_eq!(hash32(e), c.hash, "collision member hash");
                for later in &c.elems[i + 1..] {
                    assert!(later != e, "duplicate in collision node");
                }
            }
            if let Some(p) = prefix {
                assert_eq!(c.hash, p, "collision hash disagrees with path");
            }
            c.elems.len()
        }
        Node::Bitmap(b) => {
            assert!(!hash_exhausted(shift), "bitmap node below max depth");
            assert_eq!(b.bitmap.count(Category::Cat2), 0, "sets never use CAT2");
            assert_eq!(b.slots.len(), b.bitmap.arity(), "slot count");
            let mut total = 0usize;
            for (i, m) in b.bitmap.masks_of(Category::Cat1).enumerate() {
                match &b.slots[b.bitmap.offset(Category::Cat1) + i] {
                    Slot::Elem(e) => {
                        assert_eq!(mask(hash32(e), shift), m, "element in wrong branch");
                        total += 1;
                    }
                    Slot::Child(_) => panic!("payload slot holds a child"),
                }
            }
            for (i, m) in b.bitmap.masks_of(Category::Node).enumerate() {
                match &b.slots[b.bitmap.offset(Category::Node) + i] {
                    Slot::Child(child) => {
                        let sub = validate(child, next_shift(shift), prefix);
                        assert!(sub >= 2, "sub-trie with < 2 elements not inlined");
                        let _ = m;
                        total += sub;
                    }
                    Slot::Elem(_) => panic!("node slot holds payload"),
                }
            }
            if shift > 0 {
                assert!(
                    !(b.bitmap.payload_arity() == 1 && b.bitmap.node_arity() == 0),
                    "non-root singleton payload node must be inlined"
                );
                assert!(b.bitmap.arity() >= 1, "empty non-root node");
            }
            total
        }
    }
}

impl<T: Clone + Eq + Hash> Default for AxiomSet<T> {
    fn default() -> Self {
        AxiomSet::new()
    }
}

impl<T: Clone + Eq + Hash> std::ops::BitOr for &AxiomSet<T> {
    type Output = AxiomSet<T>;

    /// `a | b` is the structural [`union`](AxiomSet::union).
    fn bitor(self, rhs: Self) -> AxiomSet<T> {
        self.union(rhs)
    }
}

impl<T: Clone + Eq + Hash> std::ops::BitAnd for &AxiomSet<T> {
    type Output = AxiomSet<T>;

    /// `a & b` is the structural [`intersect`](AxiomSet::intersect).
    fn bitand(self, rhs: Self) -> AxiomSet<T> {
        self.intersect(rhs)
    }
}

impl<T: Clone + Eq + Hash> std::ops::Sub for &AxiomSet<T> {
    type Output = AxiomSet<T>;

    /// `a - b` is the structural [`difference`](AxiomSet::difference).
    fn sub(self, rhs: Self) -> AxiomSet<T> {
        self.difference(rhs)
    }
}

impl<T: Clone + Eq + Hash> PartialEq for AxiomSet<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && node_eq(&self.root, &other.root)
    }
}

impl<T: Clone + Eq + Hash> Eq for AxiomSet<T> {}

fn node_eq<T: Clone + Eq + Hash>(a: &Node<T>, b: &Node<T>) -> bool {
    match (a, b) {
        (Node::Bitmap(x), Node::Bitmap(y)) => {
            x.bitmap == y.bitmap
                && x.slots
                    .iter()
                    .zip(y.slots.iter())
                    .all(|(s, t)| match (s, t) {
                        (Slot::Elem(e), Slot::Elem(f)) => e == f,
                        (Slot::Child(c), Slot::Child(d)) => {
                            // CHAMP-style short-circuit on shared sub-tries.
                            Arc::ptr_eq(c, d) || node_eq(c, d)
                        }
                        _ => false,
                    })
        }
        (Node::Collision(x), Node::Collision(y)) => {
            x.hash == y.hash
                && x.elems.len() == y.elems.len()
                && x.elems.iter().all(|e| y.elems.contains(e))
        }
        _ => false,
    }
}

impl<T: Clone + Eq + Hash> std::hash::Hash for AxiomSet<T> {
    /// Order-independent hash: the sum of per-element hashes, so equal sets
    /// hash equally regardless of trie-internal ordering.
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        let mut acc = 0u64;
        for v in self.iter() {
            acc = acc.wrapping_add(hash32(v) as u64);
        }
        state.write_u64(acc);
        state.write_usize(self.len);
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for AxiomSet<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set()
            .entries(Iter::new(&self.root, self.len))
            .finish()
    }
}

impl<T: Clone + Eq + Hash> FromIterator<T> for AxiomSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        trie_common::ops::from_iter_via(iter)
    }
}

impl<T: Clone + Eq + Hash> Extend<T> for AxiomSet<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        trie_common::ops::extend_via(self, iter);
    }
}

impl<'a, T: Clone + Eq + Hash> IntoIterator for &'a AxiomSet<T> {
    type Item = &'a T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

/// Depth-first cursor into one node's slots.
enum Cursor<'a, T> {
    Bitmap { slots: &'a [Slot<T>], idx: usize },
    Collision { elems: &'a [T], idx: usize },
}

/// Iterator over the elements of an [`AxiomSet`]. Created by
/// [`AxiomSet::iter`].
///
/// Because slots are permuted by category, all of a node's inlined elements
/// are yielded before any sub-trie is entered — the paper's histogram-driven
/// batch iteration (§3.3) falls out of the grouping for free.
pub struct Iter<'a, T> {
    stack: Vec<Cursor<'a, T>>,
    remaining: usize,
}

impl<'a, T> Iter<'a, T> {
    pub(crate) fn new(root: &'a Node<T>, len: usize) -> Self {
        let mut stack = Vec::with_capacity(8);
        stack.push(cursor_of(root));
        Iter {
            stack,
            remaining: len,
        }
    }
}

fn cursor_of<T>(node: &Node<T>) -> Cursor<'_, T> {
    match node {
        Node::Bitmap(b) => Cursor::Bitmap {
            slots: &b.slots,
            idx: 0,
        },
        Node::Collision(c) => Cursor::Collision {
            elems: &c.elems,
            idx: 0,
        },
    }
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        loop {
            let top = self.stack.last_mut()?;
            match top {
                Cursor::Collision { elems, idx } => {
                    if *idx < elems.len() {
                        let out = &elems[*idx];
                        *idx += 1;
                        self.remaining -= 1;
                        return Some(out);
                    }
                    self.stack.pop();
                }
                Cursor::Bitmap { slots, idx } => {
                    if *idx >= slots.len() {
                        self.stack.pop();
                        continue;
                    }
                    let slot = &slots[*idx];
                    *idx += 1;
                    match slot {
                        Slot::Elem(e) => {
                            self.remaining -= 1;
                            return Some(e);
                        }
                        Slot::Child(child) => self.stack.push(cursor_of(child)),
                    }
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<'a, T> ExactSizeIterator for Iter<'a, T> {}

impl<'a, T> std::fmt::Debug for Iter<'a, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Iter")
            .field("remaining", &self.remaining)
            .finish()
    }
}

/// Owning iterator over an [`AxiomSet`] (materializes the elements).
#[derive(Debug)]
pub struct IntoIter<T> {
    inner: std::vec::IntoIter<T>,
}

impl<T> Iterator for IntoIter<T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.inner.next()
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<T: Clone + Eq + Hash> IntoIterator for AxiomSet<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;
    fn into_iter(self) -> IntoIter<T> {
        IntoIter {
            inner: self.iter().cloned().collect::<Vec<_>>().into_iter(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::hash::Hasher;

    /// Key with a controllable hash: only `bucket` feeds the hasher, so equal
    /// buckets collide on all 32 hash bits while `id` keeps keys distinct.
    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
    struct Collide {
        bucket: u32,
        id: u32,
    }

    impl Hash for Collide {
        fn hash<H: Hasher>(&self, state: &mut H) {
            state.write_u32(self.bucket);
        }
    }

    #[test]
    fn empty_set_basics() {
        let s = AxiomSet::<u32>::new();
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        assert!(!s.contains(&1));
        assert_eq!(s.iter().count(), 0);
        s.assert_invariants();
    }

    #[test]
    fn insert_lookup_thousand() {
        let mut s = AxiomSet::new();
        for i in 0..1000u32 {
            assert!(s.insert_mut(i));
        }
        assert_eq!(s.len(), 1000);
        for i in 0..1000u32 {
            assert!(s.contains(&i), "{i}");
        }
        for i in 1000..1100u32 {
            assert!(!s.contains(&i), "{i}");
        }
        s.assert_invariants();
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let s: AxiomSet<u32> = (0..50).collect();
        let t = s.inserted(7);
        assert_eq!(s, t);
        assert_eq!(t.len(), 50);
    }

    #[test]
    fn remove_roundtrip() {
        let full: AxiomSet<u32> = (0..300).collect();
        let mut s = full.clone();
        for i in (0..300u32).rev() {
            assert!(s.remove_mut(&i));
            assert!(!s.contains(&i));
            s.assert_invariants();
        }
        assert!(s.is_empty());
        // Persistence: the original version is untouched.
        assert_eq!(full.len(), 300);
        full.assert_invariants();
    }

    #[test]
    fn remove_absent_is_noop() {
        let s: AxiomSet<u32> = (0..20).collect();
        let t = s.removed(&999);
        assert_eq!(s, t);
    }

    #[test]
    fn persistence_keeps_old_versions_valid() {
        let v0: AxiomSet<u32> = (0..100).collect();
        let v1 = v0.inserted(100);
        let v2 = v1.removed(&0);
        assert!(v0.contains(&0) && !v0.contains(&100));
        assert!(v1.contains(&0) && v1.contains(&100));
        assert!(!v2.contains(&0) && v2.contains(&100));
        for v in [&v0, &v1, &v2] {
            v.assert_invariants();
        }
    }

    #[test]
    fn full_hash_collisions_resolve() {
        let mut s = AxiomSet::new();
        for id in 0..10 {
            assert!(s.insert_mut(Collide { bucket: 42, id }));
        }
        for id in 0..10 {
            assert!(s.contains(&Collide { bucket: 42, id }));
        }
        assert!(!s.contains(&Collide { bucket: 42, id: 10 }));
        assert_eq!(s.len(), 10);
        s.assert_invariants();

        for id in 0..9 {
            assert!(s.remove_mut(&Collide { bucket: 42, id }));
            s.assert_invariants();
        }
        assert_eq!(s.len(), 1);
        assert!(s.contains(&Collide { bucket: 42, id: 9 }));
    }

    #[test]
    fn mixed_collisions_and_regular_keys() {
        let mut s = AxiomSet::new();
        for id in 0..8 {
            s.insert_mut(Collide { bucket: 1, id });
            s.insert_mut(Collide { bucket: 2, id });
            s.insert_mut(Collide {
                bucket: 1000 + id,
                id,
            });
        }
        assert_eq!(s.len(), 24);
        s.assert_invariants();
        let as_btree: BTreeSet<_> = s.iter().cloned().collect();
        assert_eq!(as_btree.len(), 24);
    }

    #[test]
    fn iteration_yields_every_element_once() {
        let s: AxiomSet<u32> = (0..512).collect();
        let seen: BTreeSet<u32> = s.iter().copied().collect();
        assert_eq!(seen.len(), 512);
        assert_eq!(s.iter().len(), 512);
        assert_eq!(seen, (0..512).collect());
    }

    #[test]
    fn equality_is_order_independent() {
        let a: AxiomSet<u32> = (0..100).collect();
        let b: AxiomSet<u32> = (0..100).rev().collect();
        assert_eq!(a, b);
        let c = b.inserted(200);
        assert_ne!(a, c);
    }

    #[test]
    fn equal_sets_hash_equal() {
        use std::collections::hash_map::DefaultHasher;
        let a: AxiomSet<u32> = (0..64).collect();
        let b: AxiomSet<u32> = (0..64).rev().collect();
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn set_algebra() {
        let a: AxiomSet<u32> = (0..10).collect();
        let b: AxiomSet<u32> = (5..15).collect();
        let union = a.union(&b);
        let inter = a.intersect(&b);
        let diff = a.difference(&b);
        assert_eq!(union.len(), 15);
        assert_eq!(inter.len(), 5);
        assert_eq!(diff.len(), 5);
        assert!(inter.is_subset(&a) && inter.is_subset(&b));
        assert!(diff.is_disjoint(&b));
        assert!(a.is_subset(&union));
        union.assert_invariants();
        inter.assert_invariants();
        // Structural and element-wise paths agree.
        assert_eq!(union, a.union_elementwise(&b));
        assert_eq!(inter, a.intersect_elementwise(&b));
        assert_eq!(diff, a.difference_elementwise(&b));
        // Operator sugar routes through the structural walks.
        assert_eq!(&a | &b, union);
        assert_eq!(&a & &b, inter);
        assert_eq!(&a - &b, diff);
    }

    #[test]
    fn set_algebra_shares_structure() {
        let a: AxiomSet<u32> = (0..1000).collect();
        // A successor differing by one element shares almost everything.
        let b = a.inserted(5000);
        let u = a.union(&b);
        assert_eq!(u, b);
        // Union with self (or an equal-rooted successor) reuses the root Arc.
        let self_union = a.union(&a.clone());
        assert!(Arc::ptr_eq(&self_union.root, &a.root));
        // Union where `other` adds nothing also reuses the root.
        let back = b.union(&a);
        assert!(Arc::ptr_eq(&back.root, &b.root));
        // Intersection with a superset keeps `self` unchanged by pointer.
        let inter = a.intersect(&b);
        assert!(Arc::ptr_eq(&inter.root, &a.root));
        // Difference against self is empty; against the successor drops 0.
        assert!(a.difference(&a.clone()).is_empty());
        assert_eq!(b.difference(&a).len(), 1);
        u.assert_invariants();
    }

    #[test]
    fn set_diff_is_sparse() {
        let a: AxiomSet<u32> = (0..1000).collect();
        let mut b = a.clone();
        b.insert_mut(7777);
        b.remove_mut(&13);
        let d = a.diff(&b);
        assert_eq!(d.added, vec![7777]);
        assert_eq!(d.removed, vec![13]);
        assert!(a.diff(&a.clone()).is_empty());
    }

    #[test]
    fn set_algebra_with_collisions() {
        let a: AxiomSet<Collide> = (0..40).map(|id| Collide { bucket: id % 4, id }).collect();
        let b: AxiomSet<Collide> = (20..60).map(|id| Collide { bucket: id % 4, id }).collect();
        let union = a.union(&b);
        let inter = a.intersect(&b);
        let diff = a.difference(&b);
        assert_eq!(union.len(), 60);
        assert_eq!(inter.len(), 20);
        assert_eq!(diff.len(), 20);
        assert_eq!(union, a.union_elementwise(&b));
        assert_eq!(inter, a.intersect_elementwise(&b));
        assert_eq!(diff, a.difference_elementwise(&b));
        union.assert_invariants();
        inter.assert_invariants();
        diff.assert_invariants();
        let d = a.diff(&b);
        assert_eq!(d.added.len(), 20);
        assert_eq!(d.removed.len(), 20);
    }

    #[test]
    fn from_two_builds_canonical_pair() {
        let s = AxiomSet::from_two(1u32, 2u32);
        assert_eq!(s.len(), 2);
        assert!(s.contains(&1) && s.contains(&2));
        s.assert_invariants();
        // Colliding pair lands in a collision chain.
        let c = AxiomSet::from_two(Collide { bucket: 9, id: 0 }, Collide { bucket: 9, id: 1 });
        assert_eq!(c.len(), 2);
        c.assert_invariants();
    }

    #[test]
    fn sole_returns_singleton_element() {
        let s: AxiomSet<u32> = std::iter::once(7).collect();
        assert_eq!(*s.sole(), 7);
    }

    #[test]
    fn borrowed_lookup_for_strings() {
        let s: AxiomSet<String> = ["alpha", "beta"].iter().map(|s| s.to_string()).collect();
        assert!(s.contains("alpha"));
        assert!(!s.contains("gamma"));
        assert_eq!(s.get("beta").map(String::as_str), Some("beta"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AxiomSet<u32>>();
        assert_send_sync::<Iter<'static, u32>>();
    }
}
